//! Live-upgrade tests: a compatible rolling upgrade under load loses
//! exactly zero packets and carries operator state across the swap; a
//! schema-changing upgrade migrates state through the policy's
//! [`StateMigrator`](rbs_checkpoint::StateMigrator) instead of falling
//! back cold; incompatible upgrades are rejected up front, typed, with
//! no worker touched; chaos kills at the quiesce and restore sites roll
//! the fleet back to a consistent (never mixed) spec; the dispatcher
//! never wedges on a quiescing shard; and a cadence snapshot never
//! collides with the quiesce's final snapshot on the same tick.
//!
//! Everything here needs the `fault-injection` feature (the workspace
//! test run enables it through `rbs-bench`).
#![cfg(feature = "fault-injection")]

use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

use rbs_core::fault::{FaultKind, FaultPlan, FaultSite};
use rbs_netfx::headers::ethernet::MacAddr;
use rbs_netfx::operators::{ChaosPoint, Counter};
use rbs_netfx::pool::PacketPool;
use rbs_netfx::{FlowTracker, Packet, PacketBatch, PipelineSpec, StageStateMap};
use rbs_runtime::{
    BreakerState, RestartPolicy, RuntimeConfig, RuntimeError, RuntimeReport, ShardedRuntime,
    SupervisorEventKind, UpgradeError, UpgradeOutcome, UpgradePolicy,
};

/// Flows per round; every round's flows are distinct, so tracked-flow
/// counts are exactly predictable.
const FLOWS_PER_ROUND: u16 = 24;

fn udp(src_port: u16, dst_port: u16) -> Packet {
    Packet::build_udp(
        MacAddr::ZERO,
        MacAddr::ZERO,
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        src_port,
        dst_port,
        16,
    )
}

fn wave(round: usize) -> PacketBatch {
    (0..FLOWS_PER_ROUND)
        .map(|i| udp(2000 + (round as u16) * FLOWS_PER_ROUND + i, 80))
        .collect()
}

/// The running pipeline: a chaos point in front of a flow tracker whose
/// table is the state that must survive the upgrade.
fn spec_v1() -> PipelineSpec {
    PipelineSpec::new()
        .stage(|| ChaosPoint::new(0))
        .stage(|| FlowTracker::new(100_000))
        .with_state_schema(1)
}

/// The operator-bugfix upgrade: same shape, same schema (a capacity
/// bump), so state restores directly in both directions.
fn spec_v1_fixed() -> PipelineSpec {
    PipelineSpec::new()
        .stage(|| ChaosPoint::new(0))
        .stage(|| FlowTracker::new(200_000))
        .with_state_schema(1)
}

/// The chain-reshape upgrade: a counter stage inserted ahead of the
/// tracker, new schema — restoring needs a migrator.
fn spec_v2_reshaped() -> PipelineSpec {
    PipelineSpec::new()
        .stage(|| ChaosPoint::new(0))
        .stage(Counter::new)
        .stage(|| FlowTracker::new(100_000))
        .with_state_schema(2)
}

fn config(workers: usize, plan: Option<FaultPlan>) -> RuntimeConfig {
    RuntimeConfig {
        workers,
        queue_capacity: 8,
        snapshot_interval_ticks: 2,
        snapshot_full_every: 1,
        restart: RestartPolicy::default(),
        faults: plan.map(Arc::new),
        ..RuntimeConfig::default()
    }
}

fn assert_conserved(report: &RuntimeReport) {
    assert_eq!(
        report.unaccounted_packets(),
        0,
        "offered == packets_in + lost + shed must hold: {report:#?}"
    );
    assert_eq!(report.packets_in, report.packets_out + report.drops);
}

/// Drives dispatch+drain rounds until the upgrade walk finishes,
/// feeding a fresh wave of flows every tick (sustained load).
fn walk_upgrade(rt: &mut ShardedRuntime, mut round: usize) -> usize {
    let mut guard = 0;
    while rt.upgrade_in_progress() {
        rt.dispatch(wave(round)).expect("dispatch during upgrade");
        assert!(rt.drain(Duration::from_secs(30)), "drained during upgrade");
        round += 1;
        guard += 1;
        assert!(guard < 64, "upgrade walk failed to terminate");
    }
    round
}

/// The tentpole acceptance: a compatible rolling upgrade under
/// sustained load commits with exactly zero lost packets, zero shed
/// packets, every worker on the new spec generation, and every worker's
/// flow table carried warm across the swap.
#[test]
fn compatible_rolling_upgrade_is_zero_loss_under_load() {
    let mut rt = ShardedRuntime::new(spec_v1(), config(4, None)).unwrap();
    let mut round = 0;
    for _ in 0..6 {
        rt.dispatch(wave(round)).unwrap();
        assert!(rt.drain(Duration::from_secs(30)));
        round += 1;
    }
    rt.upgrade_pipeline(spec_v1_fixed(), UpgradePolicy::default())
        .expect("same-schema upgrade accepted");
    assert!(rt.upgrade_in_progress());
    round = walk_upgrade(&mut rt, round);
    // Keep the load up after the commit too.
    for _ in 0..4 {
        rt.dispatch(wave(round)).unwrap();
        assert!(rt.drain(Duration::from_secs(30)));
        round += 1;
    }

    assert_eq!(rt.spec_generation(), 1, "fleet committed to generation 1");
    match rt.last_upgrade() {
        Some(UpgradeOutcome::Committed {
            workers,
            drained_packets,
            pause_ticks,
            ..
        }) => {
            assert_eq!(*workers, 4);
            assert!(
                *drained_packets > 0,
                "each worker drains its pause-tick batch"
            );
            assert!(*pause_ticks >= 4, "every worker paused at least one tick");
        }
        other => panic!("expected a committed upgrade, got {other:?}"),
    }

    let upgraded: Vec<_> = rt
        .events()
        .iter()
        .filter(|e| matches!(e.kind, SupervisorEventKind::WorkerUpgraded { .. }))
        .map(|e| e.worker)
        .collect();
    assert_eq!(upgraded, vec![0, 1, 2, 3], "one worker at a time, in order");
    let warm = rt
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            SupervisorEventKind::WarmRestore {
                items_restored,
                items_lost,
                ..
            } => Some((items_restored, items_lost)),
            _ => None,
        })
        .collect::<Vec<_>>();
    assert_eq!(warm.len(), 4, "every swap restored from a snapshot");
    for (restored, lost) in warm {
        assert!(restored > 0, "state carried across the swap");
        assert_eq!(lost, 0, "the quiesce snapshot captured the drained state");
    }

    let report = rt.shutdown();
    assert_conserved(&report);
    assert_eq!(report.lost_packets, 0, "compatible upgrade loses nothing");
    assert_eq!(report.shed_packets, 0, "peers absorbed every paused shard");
    assert!(
        report.redistributed_packets > 0,
        "paused shards redistributed"
    );
    assert_eq!(report.upgrades_committed, 1);
    assert_eq!(report.upgrades_rolled_back, 0);
    assert!(report.upgrade_drained_packets > 0);
    for w in &report.workers {
        assert_eq!(w.spec_generation, 1, "never-mixed: worker {}", w.index);
    }
}

/// Satellite: a schema-changing upgrade with a capable migrator carries
/// the flow table into the reshaped chain instead of starting cold.
#[test]
fn schema_migration_carries_state_across_reshape() {
    let mut rt = ShardedRuntime::new(spec_v1(), config(2, None)).unwrap();
    let mut round = 0;
    for _ in 0..4 {
        rt.dispatch(wave(round)).unwrap();
        assert!(rt.drain(Duration::from_secs(30)));
        round += 1;
    }
    // Old stage 1 (the tracker) becomes new stage 2; the inserted
    // counter (new stage 1) and the chaos point start fresh.
    let migrator = Arc::new(StageStateMap::new(1, 2, vec![None, None, Some(1)]));
    rt.upgrade_pipeline(
        spec_v2_reshaped(),
        UpgradePolicy::default().with_migrator(migrator),
    )
    .expect("migrated upgrade accepted");
    round = walk_upgrade(&mut rt, round);
    for _ in 0..2 {
        rt.dispatch(wave(round)).unwrap();
        assert!(rt.drain(Duration::from_secs(30)));
        round += 1;
    }

    let migrated: Vec<_> = rt
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            SupervisorEventKind::StateMigrated { from, to, items } => Some((from, to, items)),
            _ => None,
        })
        .collect();
    assert_eq!(migrated.len(), 2, "each worker's snapshot was migrated");
    for (from, to, items) in migrated {
        assert_eq!((from, to), (1, 2));
        assert!(items > 0, "the flow table crossed the schema change");
    }

    let report = rt.shutdown();
    assert_conserved(&report);
    assert_eq!(report.lost_packets, 0);
    assert_eq!(report.upgrades_committed, 1);
    assert!(report.state_items_migrated > 0);
    assert_eq!(report.cold_restores, 0, "migration, not a cold fallback");
    // The carried flow tables kept growing under the new spec: every
    // flow ever offered is tracked somewhere.
    let tracked: u64 = report.workers.iter().map(|w| w.state_items).sum();
    assert_eq!(tracked, u64::from(FLOWS_PER_ROUND) * round as u64);
}

/// Satellite: an incompatible upgrade (schema change, no migrator) is
/// rejected before any worker is touched — typed, not a panic, not a
/// half-started walk.
#[test]
fn incompatible_schema_is_rejected_up_front() {
    let mut rt = ShardedRuntime::new(spec_v1(), config(2, None)).unwrap();
    rt.dispatch(wave(0)).unwrap();
    assert!(rt.drain(Duration::from_secs(30)));
    let events_before = rt.events().len();

    let err = rt
        .upgrade_pipeline(spec_v2_reshaped(), UpgradePolicy::default())
        .unwrap_err();
    assert_eq!(err, UpgradeError::IncompatibleSchema { from: 1, to: 2 });
    assert!(!rt.upgrade_in_progress());
    assert_eq!(
        rt.events().len(),
        events_before,
        "rejection journals nothing — no worker was touched"
    );

    // A wrong-direction migrator is just as incompatible.
    let wrong_way = Arc::new(StageStateMap::new(2, 1, vec![None, Some(2)]));
    let err = rt
        .upgrade_pipeline(
            spec_v2_reshaped(),
            UpgradePolicy::default().with_migrator(wrong_way),
        )
        .unwrap_err();
    assert_eq!(err, UpgradeError::IncompatibleSchema { from: 1, to: 2 });

    let report = rt.shutdown();
    assert_conserved(&report);
    assert_eq!(report.upgrades_committed + report.upgrades_rolled_back, 0);
    for w in &report.workers {
        assert_eq!(w.spec_generation, 0);
    }
}

/// Starting a second upgrade while one is walking is refused, and the
/// targeted send path refuses to touch a quiescing slot instead of
/// healing it out from under the walk.
#[test]
fn concurrent_upgrade_and_targeted_send_are_refused() {
    let mut rt = ShardedRuntime::new(spec_v1(), config(2, None)).unwrap();
    rt.dispatch(wave(0)).unwrap();
    assert!(rt.drain(Duration::from_secs(30)));
    rt.upgrade_pipeline(spec_v1_fixed(), UpgradePolicy::default())
        .unwrap();
    assert_eq!(
        rt.upgrade_pipeline(spec_v1_fixed(), UpgradePolicy::default()),
        Err(UpgradeError::InProgress)
    );
    // One dispatch begins worker 0's quiesce (pause at end of tick).
    rt.dispatch(wave(1)).unwrap();
    match rt.send_to(0, wave(2)) {
        Err(RuntimeError::WorkerUpgrading { worker: 0 }) => {}
        other => panic!("expected WorkerUpgrading for the quiescing slot, got {other:?}"),
    }
    walk_upgrade(&mut rt, 3);
    let report = rt.shutdown();
    assert_conserved(&report);
    assert_eq!(report.upgrades_committed, 1);
}

/// Satellite (bounded-wait regression): with zero scratch headroom and
/// with the pooled zero-allocation configuration, dispatch into a
/// pipeline mid-upgrade keeps flowing — the paused shard's packets
/// redistribute within the send deadline, the dispatcher never wedges.
#[test]
fn quiesce_path_never_wedges_dispatcher_scratch_zero_and_pooled() {
    // scratch_capacity = 0: shells grow organically, the configuration
    // most sensitive to a send path that blocks.
    let mut rt = ShardedRuntime::new(
        spec_v1(),
        RuntimeConfig {
            send_deadline: Duration::from_millis(200),
            scratch_capacity: 0,
            ..config(2, None)
        },
    )
    .unwrap();
    rt.upgrade_pipeline(spec_v1_fixed(), UpgradePolicy::default())
        .unwrap();
    let round = walk_upgrade(&mut rt, 0);
    let report = rt.shutdown();
    assert_conserved(&report);
    assert_eq!(report.lost_packets, 0);
    assert_eq!(report.send_timeouts, 0, "no send ever waited out a pause");
    assert!(round > 0);

    // Pooled configuration: recycling on, batches drawn from the pool.
    let mut rt = ShardedRuntime::new(
        spec_v1(),
        RuntimeConfig {
            send_deadline: Duration::from_millis(200),
            recycle_capacity: 32,
            scratch_capacity: FLOWS_PER_ROUND as usize,
            ..config(2, None)
        },
    )
    .unwrap();
    let mut pool = PacketPool::new(256, 64);
    rt.upgrade_pipeline(spec_v1_fixed(), UpgradePolicy::default())
        .unwrap();
    let mut round = 0;
    let mut guard = 0;
    while rt.upgrade_in_progress() {
        rt.reclaim_buffers(&mut pool);
        rt.dispatch(wave(round)).expect("pooled dispatch");
        assert!(rt.drain(Duration::from_secs(30)));
        round += 1;
        guard += 1;
        assert!(guard < 64, "pooled upgrade walk failed to terminate");
    }
    let report = rt.shutdown();
    assert_conserved(&report);
    assert_eq!(report.lost_packets, 0);
    assert_eq!(report.send_timeouts, 0);
    assert_eq!(report.upgrades_committed, 1);
}

/// Satellite (tick-clock collision): with a snapshot every tick, the
/// cadence snapshot is skipped on the quiesce tick — exactly one
/// snapshot (the authoritative final one, containing the drained
/// pause-tick batch) lands on that tick, and the double-buffered store
/// is never torn.
#[test]
fn cadence_snapshot_never_collides_with_quiesce_snapshot() {
    let mut rt = ShardedRuntime::new(
        spec_v1(),
        RuntimeConfig {
            snapshot_interval_ticks: 1,
            ..config(1, None)
        },
    )
    .unwrap();
    // Ticks 1..=3: one cadence snapshot each (3 total).
    for round in 0..3 {
        rt.dispatch(wave(round)).unwrap();
        assert!(rt.drain(Duration::from_secs(30)));
    }
    rt.upgrade_pipeline(spec_v1_fixed(), UpgradePolicy::default())
        .unwrap();
    // Tick 4 is the pause tick: its wave routes to worker 0 *before*
    // the pause lands, so those flows are in the quiesce snapshot.
    rt.dispatch(wave(3)).unwrap();
    assert!(rt.drain(Duration::from_secs(30)));
    // Ticks 5.. walk the swap and the commit; no new flows.
    let mut guard = 0;
    while rt.upgrade_in_progress() {
        rt.dispatch(PacketBatch::new()).unwrap();
        assert!(rt.drain(Duration::from_secs(30)));
        guard += 1;
        assert!(guard < 16, "single-worker walk failed to terminate");
    }

    // The swap restored the final quiesce snapshot: all 4 waves (96
    // flows), zero items lost — proof the drained batch made it into
    // exactly one, untorn, authoritative snapshot.
    let warm: Vec<_> = rt
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            SupervisorEventKind::WarmRestore {
                epoch,
                age_ticks,
                items_restored,
                items_lost,
            } => Some((epoch, age_ticks, items_restored, items_lost)),
            _ => None,
        })
        .collect();
    assert_eq!(
        warm,
        vec![(4, 1, 4 * u64::from(FLOWS_PER_ROUND), 0)],
        "restored the tick-4 quiesce snapshot (epoch 4), one tick old, \
         all 96 flows, nothing lost"
    );

    let report = rt.shutdown();
    assert_conserved(&report);
    assert_eq!(report.lost_packets, 0);
    // Cadence @1,2,3 + quiesce @4 (cadence skipped) + tick 5 skipped
    // (slot still quiescing at supervise time) + cadence @6 + the
    // shutdown snapshot: 6 — a tick-4 collision would make it 7.
    assert_eq!(report.snapshots_taken, 6, "exactly one snapshot per tick");
}

/// Chaos: a worker killed at the quiesce site rolls the whole upgrade
/// back — the already-upgraded worker returns to the old spec from its
/// latest snapshot, the fleet ends uniform on generation 0, and every
/// packet is accounted.
#[test]
fn chaos_kill_at_quiesce_rolls_back_to_uniform_fleet() {
    // Worker 1 dies at its first quiesce (occurrence 0); worker 0 has
    // already upgraded by then.
    let plan =
        FaultPlan::new(21).inject_window(FaultSite::UpgradeQuiesce, FaultKind::Panic, 1, 0, 1);
    let mut rt = ShardedRuntime::new(spec_v1(), config(3, Some(plan))).unwrap();
    let mut round = 0;
    for _ in 0..4 {
        rt.dispatch(wave(round)).unwrap();
        assert!(rt.drain(Duration::from_secs(30)));
        round += 1;
    }
    rt.upgrade_pipeline(spec_v1_fixed(), UpgradePolicy::default())
        .unwrap();
    round = walk_upgrade(&mut rt, round);
    for _ in 0..2 {
        rt.dispatch(wave(round)).unwrap();
        assert!(rt.drain(Duration::from_secs(30)));
        round += 1;
    }

    match rt.last_upgrade() {
        Some(UpgradeOutcome::RolledBack {
            failed_worker,
            workers_rolled_back,
            ..
        }) => {
            assert_eq!(*failed_worker, 1);
            assert_eq!(
                *workers_rolled_back, 2,
                "worker 0 (already upgraded) plus the failed worker 1"
            );
        }
        other => panic!("expected a rollback, got {other:?}"),
    }
    assert!(rt
        .events()
        .iter()
        .any(|e| e.worker == 1 && matches!(e.kind, SupervisorEventKind::UpgradeAborted)));

    let report = rt.shutdown();
    assert_conserved(&report);
    assert_eq!(rt_generation(&report), vec![0, 0, 0], "never mixed");
    assert_eq!(report.upgrades_rolled_back, 1);
    assert_eq!(report.upgrades_committed, 0);
    // The fleet kept running after the rollback.
    for w in &report.workers {
        assert_eq!(w.breaker, BreakerState::Running);
    }
}

/// Chaos: a worker killed at the restore site (after a clean drain)
/// rolls back immediately — its own latest snapshot brings the old spec
/// back warm, and the fleet stays uniform.
#[test]
fn chaos_kill_at_restore_rolls_back_warm() {
    let plan =
        FaultPlan::new(22).inject_window(FaultSite::UpgradeRestore, FaultKind::Panic, 0, 0, 1);
    let mut rt = ShardedRuntime::new(spec_v1(), config(2, Some(plan))).unwrap();
    let mut round = 0;
    for _ in 0..4 {
        rt.dispatch(wave(round)).unwrap();
        assert!(rt.drain(Duration::from_secs(30)));
        round += 1;
    }
    rt.upgrade_pipeline(spec_v1_fixed(), UpgradePolicy::default())
        .unwrap();
    round = walk_upgrade(&mut rt, round);
    for _ in 0..2 {
        rt.dispatch(wave(round)).unwrap();
        assert!(rt.drain(Duration::from_secs(30)));
        round += 1;
    }

    match rt.last_upgrade() {
        Some(UpgradeOutcome::RolledBack {
            failed_worker,
            workers_rolled_back,
            ..
        }) => {
            assert_eq!(*failed_worker, 0);
            assert_eq!(*workers_rolled_back, 1, "no other worker was ever touched");
        }
        other => panic!("expected a rollback, got {other:?}"),
    }

    let report = rt.shutdown();
    assert_conserved(&report);
    assert_eq!(
        report.lost_packets, 0,
        "the drain completed before the kill"
    );
    assert_eq!(rt_generation(&report), vec![0, 0], "never mixed");
    assert!(
        report.warm_restores > 0,
        "rollback restored the quiesce snapshot, not a cold start"
    );
    assert_eq!(report.upgrades_rolled_back, 1);
}

fn rt_generation(report: &RuntimeReport) -> Vec<u64> {
    report.workers.iter().map(|w| w.spec_generation).collect()
}

// ---------------------------------------------------------------------------
// Lane-mode upgrades: the run-to-completion engine's per-lane protocol
// (close steals → drain stolen-in → seal snapshot → commit) under a
// skewed mix with stealing active, so upgrade requests land on lanes
// that are mid-theft.
// ---------------------------------------------------------------------------

use rbs_runtime::{LaneConfig, LaneEvent, LaneRuntime, LaneUpgradeOutcome};

/// Asserts a lane's journal shows the upgrade protocol in order. The
/// drain-before-seal ordering is the steals-closed semantics: once a
/// lane stops advertising its deque, every batch it already stole must
/// go through the *old* pipeline before the state snapshot is taken —
/// otherwise the snapshot would miss flows the old generation handled.
fn assert_lane_protocol_order(events: &[LaneEvent]) {
    let pos = |p: fn(&LaneEvent) -> bool| events.iter().position(p);
    let closed = pos(|e| matches!(e, LaneEvent::StealsClosed));
    let drained = pos(|e| matches!(e, LaneEvent::StolenDrained { .. }));
    let sealed = pos(|e| matches!(e, LaneEvent::SnapshotSealed { .. }));
    let committed = pos(|e| matches!(e, LaneEvent::UpgradeCommitted { .. }));
    match (closed, drained, sealed, committed) {
        (Some(c), Some(d), Some(s), Some(u)) => {
            assert!(
                c < d && d < s && s < u,
                "protocol order violated: {events:?}"
            );
        }
        _ => panic!("upgrade protocol events missing: {events:?}"),
    }
}

#[test]
fn lane_upgrade_mid_steal_drains_stolen_batches_before_snapshot() {
    // Zipf skew concentrates the quota on few lanes; aggressive
    // stealing keeps batches crossing lanes while the upgrade walks.
    let cfg = LaneConfig {
        lanes: 4,
        total_batches: 4000,
        batch_size: 32,
        steal_batch: 4,
        traffic: rbs_netfx::pktgen::TrafficConfig {
            flows: 512,
            distribution: rbs_netfx::pktgen::FlowDistribution::Zipf(1.2),
            ..Default::default()
        },
        ..LaneConfig::default()
    };
    let rt = LaneRuntime::start(spec_v1(), cfg);
    let outcomes = rt.upgrade(spec_v1_fixed()).expect("equal-schema upgrade");
    assert_eq!(outcomes.len(), 4);
    let report = rt.join();

    // Conservation survives upgrades interleaved with steals: every
    // packet still handled exactly once, per origin and in aggregate.
    for (origin, ledger) in report.ledgers.iter().enumerate() {
        assert_eq!(ledger.unaccounted(), 0, "origin lane {origin} leaked");
    }
    assert_eq!(report.unaccounted_packets(), 0);
    assert_eq!(report.lost(), 0, "no faults were injected");
    assert_eq!(report.shed(), 0, "no lane died");

    let mut protocol_runs = 0;
    for lane in &report.lanes {
        if lane
            .events
            .iter()
            .any(|e| matches!(e, LaneEvent::StealsClosed))
        {
            assert_lane_protocol_order(&lane.events);
            protocol_runs += 1;
        }
    }
    let finished = outcomes
        .iter()
        .filter(|o| matches!(o, LaneUpgradeOutcome::Finished { .. }))
        .count();
    assert!(
        protocol_runs + finished == 4 && protocol_runs >= 1,
        "expected live lanes to walk the protocol: {outcomes:?}"
    );

    // The mix was skewed and stealing was on: work crossed lanes, and
    // each theft paid the metered crossing.
    let stolen: u64 = report.lanes.iter().map(|l| l.stolen_in_batches).sum();
    if stolen > 0 {
        let steal_bytes: u64 = report.lanes.iter().map(|l| l.steal_bytes).sum();
        assert!(steal_bytes > 0, "steals must be charged to the thief");
    }
}
