//! Satellite tests for the zero-allocation hot path.
//!
//! Three properties, each load-bearing for the pool design:
//!
//! 1. **Linearity** — a recycled buffer is never observable from two
//!    handles at once, and the pool's books always balance:
//!    `taken == returned + outstanding`, where `outstanding` is exactly
//!    the buffers still live outside the pool plus the ones leaked (as
//!    on a fault). The type system makes aliasing unrepresentable; the
//!    proptest pins the *accounting* to a pointer-level model.
//! 2. **Conservation through the runtime** — with recycling on, a full
//!    generate → dispatch → pipeline → recycle cycle returns every
//!    buffer (fault-free), and under random fault injection the buffers
//!    that do *not* come back are exactly the lost + shed packets.
//! 3. **Hash-cache agreement** — the cached flow hash the dispatcher's
//!    fast path serves is always what [`shard_of_packet`] would
//!    recompute from the bytes, including for arbitrary garbage frames
//!    the 5-tuple extractor rejects.

use std::collections::HashSet;
use std::time::Duration;

use bytes::BytesMut;
use proptest::prelude::*;
use rbs_netfx::flow::packet_flow_hash;
use rbs_netfx::operators::{MacSwap, TtlDecrement};
use rbs_netfx::{Packet, PacketGen, PacketPool, PipelineSpec, TrafficConfig};
use rbs_runtime::{shard_of_packet, shard_of_packet_mut, RuntimeConfig, ShardedRuntime};

/// Pops every banked buffer out of the pool and asserts their slab
/// addresses are pairwise distinct — a double-recycle would have to
/// surface as the same allocation banked twice.
fn assert_free_list_has_no_duplicates(pool: &mut PacketPool) {
    let mut seen = HashSet::new();
    while pool.free_buffers() > 0 {
        let buf = pool.take();
        assert!(
            seen.insert(buf.as_ptr() as usize),
            "slab {:p} was banked twice",
            buf.as_ptr()
        );
        std::mem::forget(buf); // keep the allocation alive so addresses stay unique
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Linearity against a pointer-level model: every handle the pool
    /// gives out is tracked; handing out an address that is already
    /// live would mean two owners for one slab. Some buffers are
    /// "leaked" (parked, never returned) the way a poisoned domain
    /// leaks its in-flight batch — they stay on the books as
    /// outstanding, never as corruption.
    #[test]
    fn pool_linearity_matches_pointer_model(ops in proptest::collection::vec(0u8..4, 1..256)) {
        let mut pool = PacketPool::new(512, 4096);
        pool.prewarm(8);
        let mut live: Vec<BytesMut> = Vec::new();
        let mut live_ptrs: HashSet<usize> = HashSet::new();
        // Leaked buffers are held (not dropped) so the allocator cannot
        // reuse their addresses and fake a collision.
        let mut leaked: Vec<BytesMut> = Vec::new();

        for op in ops {
            match op {
                // take (twice as likely as each return flavor)
                0 | 1 => {
                    let buf = pool.take();
                    prop_assert!(
                        live_ptrs.insert(buf.as_ptr() as usize),
                        "pool handed out a slab that is already live"
                    );
                    live.push(buf);
                }
                // return to the pool
                2 => {
                    if let Some(buf) = live.pop() {
                        prop_assert!(live_ptrs.remove(&(buf.as_ptr() as usize)));
                        pool.put(buf);
                    }
                }
                // leak, as a fault would
                _ => {
                    if let Some(buf) = live.pop() {
                        prop_assert!(live_ptrs.remove(&(buf.as_ptr() as usize)));
                        leaked.push(buf);
                    }
                }
            }
            // The conservation identity holds after every single step.
            prop_assert_eq!(
                pool.outstanding(),
                (live.len() + leaked.len()) as u64,
                "taken == returned + outstanding"
            );
        }

        // Everything still live goes back; only the leaks remain owed.
        for buf in live.drain(..) {
            pool.put(buf);
        }
        prop_assert_eq!(pool.outstanding(), leaked.len() as u64);
        assert_free_list_has_no_duplicates(&mut pool);
    }

    /// The dispatcher fast path's cached hash agrees with the reference
    /// recomputation for *any* frame bytes — parseable or garbage — and
    /// keeps agreeing after the cache is invalidated by mutation.
    #[test]
    fn cached_hash_agrees_with_reference_on_arbitrary_frames(
        bytes in proptest::collection::vec(any::<u8>(), 0..192),
        n_workers in 1usize..9,
    ) {
        let reference = shard_of_packet(&Packet::from_slice(&bytes), n_workers);
        let mut p = Packet::from_slice(&bytes);
        prop_assert_eq!(shard_of_packet_mut(&mut p, n_workers), reference, "first (stamping) access");
        prop_assert_eq!(shard_of_packet_mut(&mut p, n_workers), reference, "cached access");
        prop_assert_eq!(p.cached_flow_hash(), Some(packet_flow_hash(&p)), "tag is the hash of the bytes");
        // A pre-stamped packet read through the immutable reference
        // mapping gives the same answer.
        prop_assert_eq!(shard_of_packet(&p, n_workers), reference);

        // Mutate the frame: the stale tag must not survive, and the
        // recomputed mapping must match a fresh packet with the new bytes.
        if !p.is_empty() {
            p.as_mut_slice()[0] ^= 0xFF;
            prop_assert_eq!(p.cached_flow_hash(), None, "mutation invalidates the tag");
            let fresh = shard_of_packet(&Packet::from_slice(p.as_slice()), n_workers);
            prop_assert_eq!(shard_of_packet_mut(&mut p, n_workers), fresh);
        }
    }
}

/// Every pktgen-stamped hash is exactly what the reference mapping
/// would recompute — the generator's "free" stamp never disagrees with
/// the dispatcher's fallback parse.
#[test]
fn pktgen_stamped_hashes_match_recomputation() {
    let mut gen = PacketGen::new(TrafficConfig {
        flows: 256,
        seed: 0xF00D,
        ..TrafficConfig::default()
    });
    let batch = gen.next_batch(512);
    for p in batch.iter() {
        let cached = p.cached_flow_hash().expect("pktgen stamps every packet");
        assert_eq!(cached, packet_flow_hash(p), "stamp == recomputation");
        for n in [1usize, 2, 3, 4, 8] {
            assert_eq!(shard_of_packet(p, n), (cached % n as u64) as usize);
        }
    }
}

fn hotpath_spec() -> PipelineSpec {
    PipelineSpec::new()
        .stage(TtlDecrement::new)
        .stage(MacSwap::new)
}

/// Fault-free round trip: with recycling enabled, every buffer the
/// generator draws comes back to the pool — `outstanding == 0` at
/// quiescence, nothing dropped from the recycle channel, and the free
/// list holds no duplicate slabs.
#[test]
fn pooled_round_trip_returns_every_buffer() {
    const WORKERS: usize = 4;
    const BATCH: usize = 64;
    const ROUNDS: usize = 32;
    let mut rt = ShardedRuntime::new(
        hotpath_spec(),
        RuntimeConfig {
            workers: WORKERS,
            queue_capacity: 16,
            recycle_capacity: WORKERS * 16 + 8,
            scratch_capacity: BATCH,
            ..RuntimeConfig::default()
        },
    )
    .expect("runtime construction");
    let mut pool = PacketPool::new(512, BATCH * 8);
    pool.prewarm(BATCH * 8);
    pool.prewarm_shells(WORKERS * 6, BATCH);
    let mut gen = PacketGen::new(TrafficConfig {
        flows: 1024,
        seed: 0xB0B0,
        ..TrafficConfig::default()
    });

    for round in 0..ROUNDS {
        rt.reclaim_buffers(&mut pool);
        let batch = gen.next_batch_from_pool(BATCH, &mut pool);
        rt.dispatch(batch).expect("dispatch");
        assert!(rt.drain(Duration::from_secs(30)), "round {round} drained");
    }
    rt.reclaim_buffers(&mut pool);
    let report = rt.shutdown();

    assert_eq!(report.offered_packets, (ROUNDS * BATCH) as u64);
    assert_eq!(
        report.offered_packets,
        report.packets_in + report.lost_packets + report.shed_packets,
        "packet conservation"
    );
    assert_eq!(report.lost_packets, 0);
    assert_eq!(report.shed_packets, 0);
    assert_eq!(report.recycle_drops, 0, "nothing fell off the recycle path");
    assert!(report.recycled_batches > 0, "the recycle path actually ran");
    let stats = pool.stats();
    assert_eq!(pool.outstanding(), 0, "every buffer came home");
    assert_eq!(stats.taken, stats.returned);
    assert_eq!(stats.misses, 0, "a prewarmed pool never allocates");
    assert_free_list_has_no_duplicates(&mut pool);
}

#[cfg(feature = "fault-injection")]
mod chaos {
    use super::*;
    use rbs_core::fault::{FaultKind, FaultPlan, FaultSite};
    use rbs_netfx::operators::ChaosPoint;
    use rbs_runtime::RestartPolicy;
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Pool linearity under chaos: whatever mix of operator panics,
        /// torn channels, and spawn-time crashes is injected, the
        /// buffers that fail to return are *exactly* the lost + shed
        /// packets (when the recycle channel itself dropped nothing) —
        /// a poisoned domain leaks its in-flight buffers to the books,
        /// never corrupts the pool.
        #[test]
        fn faulted_runs_leak_exactly_the_lost_and_shed_buffers(
            seed in any::<u64>(),
            panic_ppm in 0u32..80_000,
            close_ppm in 0u32..30_000,
            attach_ppm in 0u32..20_000,
            rounds in 2usize..6,
        ) {
            const WORKERS: usize = 3;
            const BATCH: usize = 24;
            let plan = FaultPlan::new(seed)
                .inject(FaultSite::Operator(0), FaultKind::Panic, panic_ppm)
                .inject(FaultSite::ChannelSend, FaultKind::CloseChannel, close_ppm)
                .inject(FaultSite::DomainAttach, FaultKind::Panic, attach_ppm);
            let mut rt = ShardedRuntime::new(
                PipelineSpec::new().stage(|| ChaosPoint::new(0)),
                RuntimeConfig {
                    workers: WORKERS,
                    queue_capacity: 8,
                    recycle_capacity: WORKERS * 8 + 8,
                    scratch_capacity: BATCH,
                    restart: RestartPolicy {
                        max_consecutive_faults: 2,
                        backoff_base_ticks: 1,
                        backoff_cap_ticks: 4,
                        breaker_cooldown_ticks: 3,
                        backoff_jitter_ticks: 2,
                    },
                    faults: Some(Arc::new(plan)),
                    ..RuntimeConfig::default()
                },
            )
            .expect("runtime construction");
            let mut pool = PacketPool::new(512, BATCH * 8);
            pool.prewarm(BATCH * 8);
            pool.prewarm_shells(WORKERS * 6, BATCH);
            let mut gen = PacketGen::new(TrafficConfig {
                flows: 256,
                seed,
                ..TrafficConfig::default()
            });

            for round in 0..rounds {
                rt.reclaim_buffers(&mut pool);
                let batch = gen.next_batch_from_pool(BATCH, &mut pool);
                rt.dispatch(batch).expect("dispatch");
                prop_assert!(rt.drain(Duration::from_secs(30)), "round {} drained", round);
            }
            rt.reclaim_buffers(&mut pool);
            let report = rt.shutdown();

            prop_assert_eq!(report.offered_packets, (rounds * BATCH) as u64);
            prop_assert_eq!(
                report.offered_packets,
                report.packets_in + report.lost_packets + report.shed_packets,
                "packet conservation under chaos"
            );
            let owed = report.lost_packets + report.shed_packets;
            if report.recycle_drops == 0 {
                prop_assert_eq!(
                    pool.outstanding(),
                    owed,
                    "outstanding buffers are exactly the faulted packets"
                );
            } else {
                // Batches dropped from a torn recycle channel leak their
                // buffers too, on top of the lost/shed ones.
                prop_assert!(pool.outstanding() >= owed);
                prop_assert!(pool.outstanding() <= report.offered_packets);
            }
            assert_free_list_has_no_duplicates(&mut pool);
        }
    }
}
