//! Property test: threaded tenant lanes never invert priority and never
//! lose a packet, whatever the interleaving of steals, kills, and churn
//! — on every isolation backend.
//!
//! Two invariants under test, both promised by
//! [`rbs_runtime::TenantLaneRuntime`]:
//!
//! 1. **No priority inversion.** A work item is only ever stolen from a
//!    priority band when no higher band anywhere still holds queued
//!    work. The engine's band-major steal sweep makes this structural;
//!    every lane audits each theft and the report sums the violations —
//!    which must be zero across every random schedule.
//! 2. **Exact conservation.** Per tenant,
//!    `offered == processed + lost + shed_*` to the packet, with stolen
//!    batches credited to the *origin* tenant's ledger (`stolen` is a
//!    subset of `processed`, never additional packets).
//!
//! Proptest drives everything that changes the interleaving: tenant
//! count, lane count, the priority layout, stealing on/off, the fault
//! rate (kills → breaker opens → respawns), mid-run churn of a random
//! tenant, and the isolation backend.
//!
//! Needs the `fault-injection` feature (the workspace test run enables
//! it through `rbs-bench`):
//!
//! ```text
//! cargo test -p rbs-runtime --features fault-injection
//! ```
#![cfg(feature = "fault-injection")]

use std::sync::Arc;

use proptest::prelude::*;
use rbs_core::fault::{FaultKind, FaultPlan, FaultSite};
use rbs_netfx::flow::packet_flow_hash;
use rbs_netfx::headers::ethernet::MacAddr;
use rbs_netfx::{Packet, PacketBatch};
use rbs_runtime::{BackendKind, TenantLaneConfig, TenantLaneRuntime, TenantSpec};
use std::net::Ipv4Addr;

fn packet(n: u32) -> Packet {
    let mut p = Packet::build_udp(
        MacAddr::ZERO,
        MacAddr::ZERO,
        Ipv4Addr::new(10, 0, (n >> 8) as u8, n as u8),
        Ipv4Addr::new(192, 0, 2, 1),
        (n % 52_000) as u16 + 1_024,
        80,
        16,
    );
    let hash = packet_flow_hash(&p);
    p.set_cached_flow_hash(hash);
    p
}

fn wave(round: u32, count: u32) -> PacketBatch {
    (0..count).map(|i| packet(round * count + i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    #[test]
    fn tenant_lanes_never_invert_priority_and_conserve(
        tenants in 3usize..=12,
        lanes in 1usize..=4,
        steal in any::<bool>(),
        backend_idx in 0usize..3,
        fault_seed in any::<u64>(),
        rate_idx in 0usize..3,
        churn in any::<bool>(),
        prio_seed in any::<u64>(),
    ) {
        let rate_ppm = [0u32, 20_000, 200_000][rate_idx];
        let backend = [
            BackendKind::TypedSfi,
            BackendKind::MpkSim,
            BackendKind::CopyBoundary,
        ][backend_idx];
        // A mixed priority layout derived from the seed: up to three
        // distinct bands, so banded stealing actually has bands.
        let specs: Vec<TenantSpec> = (0..tenants)
            .map(|i| {
                let prio = 1 + ((prio_seed >> (2 * (i % 16))) % 3) as u8;
                TenantSpec::new(format!("pt-{i}"))
                    .priority(prio)
                    .rate(400, 800)
            })
            .collect();
        let plan = FaultPlan::new(fault_seed).inject(
            FaultSite::Operator(0),
            FaultKind::Panic,
            rate_ppm,
        );
        let mut rt = TenantLaneRuntime::new(TenantLaneConfig {
            tenants: specs,
            lanes,
            steal,
            backend,
            snapshot_every_ticks: 4,
            faults: Some(Arc::new(plan)),
            ..TenantLaneConfig::default()
        })
        .expect("valid config");

        let victim = tenants - 1;
        for round in 0..16u32 {
            if churn && round == 5 {
                rt.remove_tenant(victim).expect("remove");
            }
            if churn && round == 11 {
                rt.add_tenant(victim).expect("add");
            }
            rt.offer(wave(round, 192));
            rt.step();
        }
        let report = rt.finish();

        // Invariant 1: no schedule may steal past a higher band.
        prop_assert_eq!(report.priority_inversions(), 0);

        // Invariant 2: every ledger balances to the packet, and steal
        // credits never exceed what was actually processed.
        for t in &report.tenants {
            prop_assert_eq!(t.ledger.unaccounted(), 0, "{} leaked: {:?}", t.name, t.ledger);
            prop_assert!(t.ledger.stolen <= t.ledger.processed);
        }
        prop_assert_eq!(report.unaccounted_packets(), 0);

        // Executor and origin views must describe the same thefts.
        let steals_in: u64 = report.occupancy.iter().map(|l| l.steals_in).sum();
        let by_origin: u64 = report
            .occupancy
            .iter()
            .flat_map(|l| l.stolen_from.iter().map(|&(_, n)| n))
            .sum();
        prop_assert_eq!(steals_in, by_origin);
        if !steal {
            prop_assert_eq!(steals_in, 0);
            let credited: u64 = report.tenants.iter().map(|t| t.ledger.stolen).sum();
            prop_assert_eq!(credited, 0);
        }
    }
}
