//! Chaos tests: randomized fault interleavings never lose packet
//! accounting, scripted crash loops trip the circuit breaker within its
//! budget, the watchdog reclaims hung shards, and a fixed seed replays
//! the whole supervision history deterministically.
//!
//! Everything here needs the `fault-injection` feature (the workspace
//! test run enables it through `rbs-bench`):
//!
//! ```text
//! cargo test -p rbs-runtime --features fault-injection
//! ```
#![cfg(feature = "fault-injection")]

use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use rbs_core::fault::{FaultKind, FaultPlan, FaultSite};
use rbs_netfx::headers::ethernet::MacAddr;
use rbs_netfx::operators::ChaosPoint;
use rbs_netfx::{FlowTracker, Packet, PacketBatch, PipelineSpec};
use rbs_runtime::{
    shard_of_packet, BackendKind, BreakerState, RestartPolicy, RuntimeConfig, RuntimeReport,
    ShardedRuntime, SupervisorEvent, SupervisorEventKind,
};

fn udp(src_port: u16, dst_port: u16) -> Packet {
    Packet::build_udp(
        MacAddr::ZERO,
        MacAddr::ZERO,
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        src_port,
        dst_port,
        16,
    )
}

/// One round's traffic: 24 one-packet flows, distinct across rounds so
/// every round exercises a deterministic (but varied) shard spread.
fn wave(round: usize) -> PacketBatch {
    (0..24u16)
        .map(|i| udp(2000 + (round as u16) * 24 + i, 80))
        .collect()
}

/// `count` one-packet flows all hashing to shard `target` of `n`.
fn batch_for_shard(target: usize, n: usize, count: usize) -> PacketBatch {
    (1..u16::MAX)
        .map(|sp| udp(sp, 80))
        .filter(|p| shard_of_packet(p, n) == target)
        .take(count)
        .collect()
}

/// A pipeline whose only stage is a chaos point: transparent until the
/// plan says otherwise.
fn chaos_spec() -> PipelineSpec {
    PipelineSpec::new().stage(|| ChaosPoint::new(0))
}

/// The stateful variant: the chaos point feeding a flow tracker, so
/// crashes destroy real per-flow state and warm restores carry it back.
fn stateful_chaos_spec() -> PipelineSpec {
    PipelineSpec::new()
        .stage(|| ChaosPoint::new(0))
        .stage(|| FlowTracker::new(100_000))
}

/// Runs `rounds` lockstep dispatch+drain rounds under `plan` and returns
/// the shutdown report. Lockstep keeps the supervision clock decoupled
/// from thread timing: every fault from round `r` is observed during
/// round `r`'s drain. `snapshot_interval` > 0 turns on checkpoint-backed
/// warm recovery (the pipeline is stateful either way). The whole
/// machine runs on `backend` — conservation must hold whichever cost
/// model the boundary charges.
fn run_chaos(
    plan: FaultPlan,
    workers: usize,
    rounds: usize,
    restart: RestartPolicy,
    snapshot_interval: u64,
    backend: BackendKind,
) -> RuntimeReport {
    let mut rt = ShardedRuntime::new(
        stateful_chaos_spec(),
        RuntimeConfig {
            workers,
            queue_capacity: 8,
            restart,
            snapshot_interval_ticks: snapshot_interval,
            snapshot_full_every: 2,
            backend,
            #[cfg(feature = "fault-injection")]
            faults: Some(Arc::new(plan)),
            ..RuntimeConfig::default()
        },
    )
    .expect("runtime construction");
    for round in 0..rounds {
        rt.dispatch(wave(round)).expect("dispatch");
        assert!(rt.drain(Duration::from_secs(30)), "round {round} drained");
    }
    rt.shutdown()
}

/// Sort key making event-log comparison independent of which worker's
/// concurrent fault was *observed* first within one drain pass (ticks and
/// per-worker sequences are deterministic; cross-worker observation order
/// within a tick is not).
fn event_key(e: &SupervisorEvent) -> (u64, usize, &'static str, u64) {
    let payload = match e.kind {
        SupervisorEventKind::BackoffScheduled { until_tick }
        | SupervisorEventKind::BreakerOpened { until_tick } => until_tick,
        SupervisorEventKind::Redistributed { packets } | SupervisorEventKind::Shed { packets } => {
            packets
        }
        _ => 0,
    };
    (e.tick, e.worker, e.kind.name(), payload)
}

/// The journal filtered down to its replayable core, sorted. `Shed`
/// events are excluded: whether a batch bound for a dying worker is
/// written off as `lost` (queued, then killed) or `shed` (send already
/// failed) depends on when the panic lands — only their *sum* is
/// deterministic, and the ledger comparison covers that.
fn replayable_events(report: &RuntimeReport) -> Vec<SupervisorEvent> {
    let mut events: Vec<SupervisorEvent> = report
        .events
        .iter()
        .filter(|e| !matches!(e.kind, SupervisorEventKind::Shed { .. }))
        .cloned()
        .collect();
    events.sort_by_key(event_key);
    events
}

/// The conservation identities every chaos run must satisfy, whatever
/// was injected: nothing vanishes and nothing is double counted.
fn assert_conserved(report: &RuntimeReport) {
    assert_eq!(
        report.unaccounted_packets(),
        0,
        "offered == packets_in + lost + shed must hold: {report:#?}"
    );
    assert_eq!(
        report.packets_in,
        report.packets_out + report.drops,
        "pipeline conservation"
    );
    for w in &report.workers {
        assert_eq!(
            w.processed + w.lost,
            w.dispatched,
            "batch conservation for worker {}",
            w.index
        );
        assert_eq!(
            w.dispatched_packets,
            w.packets_in + w.lost_packets,
            "packet conservation for worker {}",
            w.index
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite 3: random fault interleavings never lose stats
    /// accounting. Panics, short hangs, torn channels, send stalls,
    /// spawn-time crashes, and delays are mixed at random rates; after
    /// every round drains, `offered == packets_in + lost + shed` and the
    /// per-worker ledgers must balance exactly.
    #[test]
    fn random_fault_interleavings_conserve_packets(
        seed in any::<u64>(),
        panic_ppm in 0u32..80_000,
        stall_ppm in 0u32..40_000,
        delay_ppm in 0u32..60_000,
        close_ppm in 0u32..30_000,
        send_stall_ppm in 0u32..30_000,
        attach_ppm in 0u32..20_000,
        encode_ppm in 0u32..40_000,
        snapshot_interval in 0u64..4,
        rounds in 3usize..8,
        copy_backend in any::<bool>(),
    ) {
        let plan = FaultPlan::new(seed)
            .inject(FaultSite::Operator(0), FaultKind::Panic, panic_ppm)
            .inject(FaultSite::Operator(0), FaultKind::Stall { millis: 5 }, stall_ppm)
            .inject(FaultSite::Operator(0), FaultKind::Delay { micros: 50 }, delay_ppm)
            .inject(FaultSite::ChannelSend, FaultKind::CloseChannel, close_ppm)
            .inject(FaultSite::ChannelSend, FaultKind::Stall { millis: 1 }, send_stall_ppm)
            .inject(FaultSite::DomainAttach, FaultKind::Panic, attach_ppm)
            .inject(FaultSite::CheckpointEncode, FaultKind::Panic, encode_ppm);
        let restart = RestartPolicy {
            max_consecutive_faults: 2,
            backoff_base_ticks: 1,
            backoff_cap_ticks: 4,
            breaker_cooldown_ticks: 3,
            backoff_jitter_ticks: 2,
        };
        // Conservation is proven backend-independent: half the cases run
        // on the copy-in/copy-out strawman instead of zero-cost SFI.
        let backend = if copy_backend {
            BackendKind::CopyBoundary
        } else {
            BackendKind::TypedSfi
        };
        let report = run_chaos(plan, 3, rounds, restart, snapshot_interval, backend);
        assert_conserved(&report);
        prop_assert_eq!(
            report.offered_packets,
            (rounds as u64) * 24,
            "every offered packet was counted"
        );
        // The store seals before committing, so even encode faults never
        // leave anything unverifiable behind.
        prop_assert_eq!(report.snapshot_rejects, 0);
        if snapshot_interval == 0 {
            prop_assert_eq!(report.snapshots_taken, 0);
            prop_assert_eq!(report.warm_restores, 0);
        }
    }
}

/// Satellite 3's second half: a scripted crash loop (the worker dies at
/// every (re)spawn, before taking any work) must open the breaker within
/// `max_consecutive_faults` observed faults, probe after the cooldown,
/// and reopen when the probe dies too — all on schedule.
#[test]
fn crash_loop_opens_breaker_within_budget() {
    const VICTIM: usize = 0;
    let policy = RestartPolicy {
        max_consecutive_faults: 3,
        backoff_base_ticks: 1,
        backoff_cap_ticks: 4,
        breaker_cooldown_ticks: 8,
        backoff_jitter_ticks: 0,
    };
    // Every spawn of worker 0 — occurrence = spawn_seq — dies at attach.
    let plan = FaultPlan::new(11).inject_window(
        FaultSite::DomainAttach,
        FaultKind::Panic,
        VICTIM as u64,
        0,
        1_000,
    );
    let mut rt = ShardedRuntime::new(
        chaos_spec(),
        RuntimeConfig {
            workers: 2,
            queue_capacity: 8,
            restart: policy.clone(),
            faults: Some(Arc::new(plan)),
            ..RuntimeConfig::default()
        },
    )
    .unwrap();

    let opened = |rt: &ShardedRuntime| {
        rt.events()
            .iter()
            .filter(|e| {
                e.worker == VICTIM && matches!(e.kind, SupervisorEventKind::BreakerOpened { .. })
            })
            .count()
    };

    // Supervision-only rounds (empty dispatches) until the breaker opens.
    while opened(&rt) == 0 {
        assert!(
            rt.tick() < 32,
            "breaker must open within the restart budget; events: {:#?}",
            rt.events()
        );
        rt.dispatch(PacketBatch::new()).unwrap();
    }
    let opened_at = rt.tick();
    // Budget check: 3 observed faults with backoffs of 1 and 2 ticks in
    // between — the breaker must be open by tick 6.
    assert!(
        opened_at <= 6,
        "opened at tick {opened_at}, budget allows 6"
    );
    assert_eq!(rt.snapshots()[VICTIM].breaker, BreakerState::Open);
    assert_eq!(rt.snapshots()[VICTIM].consecutive_faults, 3);

    // While the breaker is open, the victim's flows are redistributed to
    // the healthy peer: nothing is lost, goodput stays at 1.0.
    rt.dispatch(wave(0)).unwrap();
    assert!(rt.drain(Duration::from_secs(10)), "degraded drain");

    // Keep ticking: the cooldown elapses, a half-open probe respawns,
    // dies at attach like its predecessors, and the breaker reopens.
    while opened(&rt) < 2 {
        assert!(
            rt.tick() < 64,
            "probe fault must reopen the breaker; events: {:#?}",
            rt.events()
        );
        rt.dispatch(PacketBatch::new()).unwrap();
    }
    assert!(
        rt.events()
            .iter()
            .any(|e| e.worker == VICTIM && e.kind == SupervisorEventKind::BreakerHalfOpened),
        "the reopen went through a half-open probe"
    );

    let report = rt.shutdown();
    assert_conserved(&report);
    assert_eq!(report.offered_packets, 24);
    assert_eq!(report.packets_out, 24, "peer absorbed the victim's flows");
    assert!(report.goodput() > 0.999);
    let victim = &report.workers[VICTIM];
    assert!(victim.redistributed_packets > 0, "flows were rerouted");
    assert_eq!(victim.dispatched, 0, "an open breaker is never fed");
    assert_eq!(report.breaker_opens, 2);
    assert_eq!(report.breaker_half_opens, 1);
    assert_eq!(report.breaker_closes, 0);
}

/// The heartbeat watchdog: a worker that *hangs* (no panic to catch) is
/// force-failed, its thread abandoned, and the shard respawned — while
/// the stalled batch still lands in the ledger once the zombie finishes.
#[test]
fn watchdog_reclaims_hung_worker() {
    const WORKERS: usize = 2;
    // The first batch the victim's chaos point sees stalls far longer
    // than the hang timeout.
    let plan = FaultPlan::new(5).inject_window(
        FaultSite::Operator(0),
        FaultKind::Stall { millis: 1_500 },
        0,
        0,
        1,
    );
    let mut rt = ShardedRuntime::new(
        chaos_spec(),
        RuntimeConfig {
            workers: WORKERS,
            queue_capacity: 8,
            hang_timeout: Duration::from_millis(40),
            faults: Some(Arc::new(plan)),
            ..RuntimeConfig::default()
        },
    )
    .unwrap();

    // Feed both shards; worker 0's batch hangs mid-pipeline.
    rt.dispatch(wave(0)).unwrap();

    // Supervision-only rounds until the watchdog fires. The victim's
    // heartbeat ages past 40ms well before its 1.5s stall ends.
    let mut kills = 0;
    for _ in 0..400 {
        rt.dispatch(PacketBatch::new()).unwrap();
        kills = rt
            .events()
            .iter()
            .filter(|e| e.kind == SupervisorEventKind::WatchdogKill)
            .count();
        if kills > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(kills, 1, "watchdog killed the hung worker exactly once");

    // The runtime stays live while the zombie's stall pends: the healthy
    // shard keeps taking and finishing work. (Shard 0 is left unfed —
    // the fault window is per-generation, so a fresh batch would stall
    // the replacement too; that repeat-kill case is the crash-loop
    // test's territory.)
    for _ in 0..3 {
        rt.dispatch(batch_for_shard(1, WORKERS, 8)).unwrap();
        assert!(rt.drain(Duration::from_secs(10)), "post-kill drain");
    }
    assert!(rt.snapshots()[1].processed >= 3, "healthy shard kept going");

    // Shutdown joins the zombie once its stall ends, so its batch is
    // counted as processed and the provisional loss self-corrects.
    let report = rt.shutdown();
    assert_conserved(&report);
    assert_eq!(report.watchdog_kills, 1);
    assert!(report.respawns >= 1);
    assert_eq!(
        report.lost_packets, 0,
        "the stalled batch completed in the zombie and was counted"
    );
    assert!(report.goodput() > 0.999);
}

/// The reproducibility contract behind the chaos experiment: one seed,
/// one history. Two runs with identical seeds must produce identical
/// supervision journals (up to within-tick observation order) and
/// identical ledgers.
#[test]
fn fixed_seed_replays_identically() {
    let run = || {
        let plan = FaultPlan::new(0xC0FFEE)
            .inject(FaultSite::Operator(0), FaultKind::Panic, 60_000)
            .inject(FaultSite::ChannelSend, FaultKind::CloseChannel, 20_000)
            .inject(FaultSite::DomainAttach, FaultKind::Panic, 30_000);
        let restart = RestartPolicy {
            max_consecutive_faults: 2,
            backoff_base_ticks: 1,
            backoff_cap_ticks: 4,
            breaker_cooldown_ticks: 3,
            backoff_jitter_ticks: 3,
        };
        // Snapshot cadence on: the replayed history includes snapshot
        // work items, warm restores, and state-loss accounting.
        run_chaos(plan, 3, 12, restart, 2, BackendKind::TypedSfi)
    };
    let (a, b) = (run(), run());
    assert_conserved(&a);
    assert_conserved(&b);
    assert_eq!(
        replayable_events(&a),
        replayable_events(&b),
        "journals diverged"
    );
    assert!(a.faults > 0, "the plan injected something");
    assert_eq!(a.offered_packets, b.offered_packets);
    assert_eq!(a.packets_in, b.packets_in);
    assert_eq!(a.packets_out, b.packets_out);
    assert_eq!(
        a.lost_packets + a.shed_packets,
        b.lost_packets + b.shed_packets,
        "unserved packets"
    );
    assert_eq!(a.redistributed_packets, b.redistributed_packets);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.respawns, b.respawns);
    assert_eq!(a.warm_restores, b.warm_restores);
    assert_eq!(a.cold_restores, b.cold_restores);
    assert_eq!(a.state_items_lost, b.state_items_lost);
    assert_eq!(a.snapshots_taken, b.snapshots_taken);
    assert_eq!(a.breaker_opens, b.breaker_opens);
    assert_eq!(a.breaker_half_opens, b.breaker_half_opens);
    assert_eq!(a.breaker_closes, b.breaker_closes);
    for (wa, wb) in a.workers.iter().zip(&b.workers) {
        assert_eq!(wa.processed, wb.processed, "worker {}", wa.index);
        assert_eq!(wa.packets_in, wb.packets_in, "worker {}", wa.index);
        assert_eq!(wa.packets_out, wb.packets_out, "worker {}", wa.index);
        assert_eq!(wa.breaker, wb.breaker, "worker {}", wa.index);
        assert_eq!(wa.faults, wb.faults, "worker {}", wa.index);
        assert_eq!(wa.respawns, wb.respawns, "worker {}", wa.index);
    }
}

/// The backend seam's contract applied to chaos: an isolation backend is
/// a *cost model*, not a mechanism — so the same seeded fault schedule
/// must produce the same supervision journal and the same conserved
/// ledger whether boundaries are free (TypedSfi) or pay copy-in/copy-out
/// (CopyBoundary). Faults fire by occurrence, not wall clock, so the
/// copies slow the run without steering it.
#[test]
fn chaos_history_is_backend_independent() {
    let run = |backend: BackendKind| {
        let plan = FaultPlan::new(0xBEEF)
            .inject(FaultSite::Operator(0), FaultKind::Panic, 60_000)
            .inject(FaultSite::DomainAttach, FaultKind::Panic, 30_000)
            .inject(FaultSite::CheckpointEncode, FaultKind::Panic, 30_000);
        let restart = RestartPolicy {
            max_consecutive_faults: 2,
            backoff_base_ticks: 1,
            backoff_cap_ticks: 4,
            breaker_cooldown_ticks: 3,
            backoff_jitter_ticks: 2,
        };
        run_chaos(plan, 3, 10, restart, 2, backend)
    };
    let typed = run(BackendKind::TypedSfi);
    let copy = run(BackendKind::CopyBoundary);
    assert_conserved(&typed);
    assert_conserved(&copy);
    assert!(typed.faults > 0, "the plan injected something");
    assert_eq!(
        replayable_events(&typed),
        replayable_events(&copy),
        "supervision history diverged across backends"
    );
    assert_eq!(typed.offered_packets, copy.offered_packets);
    assert_eq!(typed.packets_in, copy.packets_in);
    assert_eq!(typed.packets_out, copy.packets_out);
    assert_eq!(typed.faults, copy.faults);
    assert_eq!(typed.respawns, copy.respawns);
    assert_eq!(typed.warm_restores, copy.warm_restores);
    assert_eq!(typed.cold_restores, copy.cold_restores);
    assert_eq!(typed.snapshots_taken, copy.snapshots_taken);
}
