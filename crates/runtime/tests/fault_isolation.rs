//! End-to-end fault isolation: a panicking operator kills exactly one
//! worker, the supervisor heals it, and the other workers never notice.

use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

use rbs_netfx::flow::FiveTuple;
use rbs_netfx::headers::ethernet::MacAddr;
use rbs_netfx::{Operator, Packet, PacketBatch, PipelineSpec};
use rbs_runtime::{shard_of_packet, RuntimeConfig, ShardedRuntime, WorkerSnapshot};
use rbs_sfi::DomainState;

/// The port that makes [`Poison`] panic.
const POISON_PORT: u16 = 6666;

/// Passes packets through untouched.
struct Pass;

impl Operator for Pass {
    fn process(&mut self, batch: PacketBatch) -> PacketBatch {
        batch
    }

    fn name(&self) -> &str {
        "pass"
    }
}

/// Panics on any packet addressed to [`POISON_PORT`]; a stand-in for a
/// buggy network function tripping over a crafted input.
struct Poison;

impl Operator for Poison {
    fn process(&mut self, batch: PacketBatch) -> PacketBatch {
        for packet in batch.iter() {
            if let Ok(t) = FiveTuple::of(packet) {
                assert_ne!(t.dst_port, POISON_PORT, "poison packet hit operator");
            }
        }
        batch
    }

    fn name(&self) -> &str {
        "poison"
    }
}

fn spec() -> PipelineSpec {
    PipelineSpec::new().stage(|| Pass).stage(|| Poison)
}

fn udp(src_port: u16, dst_port: u16) -> Packet {
    Packet::build_udp(
        MacAddr::ZERO,
        MacAddr::ZERO,
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        src_port,
        dst_port,
        16,
    )
}

/// 64 one-packet flows; covers every shard of a 4-worker runtime.
fn healthy_traffic() -> PacketBatch {
    (0..64u16).map(|i| udp(1000 + i, 80)).collect()
}

/// A poison packet whose flow hash lands on shard `target` (out of `n`).
fn poison_for_shard(target: usize, n: usize) -> Packet {
    for sp in 1..u16::MAX {
        let p = udp(sp, POISON_PORT);
        if shard_of_packet(&p, n) == target {
            return p;
        }
    }
    unreachable!("some source port maps to every shard");
}

fn wait_for<F: Fn(&[WorkerSnapshot]) -> bool>(rt: &ShardedRuntime, cond: F) -> Vec<WorkerSnapshot> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snaps = rt.snapshots();
        if cond(&snaps) {
            return snaps;
        }
        assert!(Instant::now() < deadline, "condition not met: {snaps:#?}");
        std::thread::yield_now();
    }
}

#[test]
fn fault_is_contained_healed_and_accounted() {
    const TARGET: usize = 2;
    let mut rt = ShardedRuntime::new(
        spec(),
        RuntimeConfig {
            workers: 4,
            queue_capacity: 16,
            ..RuntimeConfig::default()
        },
    )
    .unwrap();

    rt.dispatch(healthy_traffic()).unwrap();
    assert!(rt.drain(Duration::from_secs(10)), "healthy drain");
    let before = rt.snapshots();
    assert!(before.iter().all(|w| w.state == DomainState::Active));
    assert!(before.iter().all(|w| w.faults == 0));
    let processed_before: Vec<u64> = before.iter().map(|w| w.processed).collect();
    assert!(
        processed_before.iter().all(|&p| p > 0),
        "64 flows reach all 4 workers"
    );

    let mut poison = PacketBatch::new();
    poison.push(poison_for_shard(TARGET, 4));
    rt.dispatch(poison).unwrap();
    wait_for(&rt, |s| s[TARGET].faults == 1);

    // A second wave heals the target inside dispatch() and feeds every
    // worker again.
    rt.dispatch(healthy_traffic()).unwrap();
    assert!(rt.drain(Duration::from_secs(10)), "drain after fault");

    let after = rt.snapshots();
    for w in &after {
        // Conservation: every batch routed to a shard is eventually
        // processed or written off.
        assert_eq!(w.processed + w.lost, w.dispatched, "worker {}", w.index);
        if w.index == TARGET {
            assert_eq!(w.faults, 1);
            assert_eq!(w.respawns, 1, "healed exactly once");
            assert!(w.generation >= 1, "recovery bumps the generation");
            assert_eq!(w.lost, 1, "only the poison batch was lost");
            assert!(
                w.processed > processed_before[w.index],
                "worker rejoined and processed the second wave"
            );
        } else {
            assert_eq!(w.faults, 0, "fault leaked to worker {}", w.index);
            assert_eq!(w.lost, 0);
            assert_eq!(w.respawns, 0);
            assert_eq!(w.state, DomainState::Active);
        }
    }

    let report = rt.shutdown();
    assert_eq!(report.faults, 1);
    assert_eq!(report.respawns, 1);
    assert_eq!(report.lost_batches, 1);
    // The pass/poison pipeline drops nothing it survives.
    assert_eq!(report.packets_in, report.packets_out);
    assert_eq!(report.packets_in, 128, "two healthy waves of 64");
    assert!(report.cycles.is_some());
}

#[test]
fn other_workers_process_while_one_is_down() {
    const VICTIM: usize = 1;
    let mut rt = ShardedRuntime::new(
        spec(),
        RuntimeConfig {
            workers: 4,
            queue_capacity: 16,
            ..RuntimeConfig::default()
        },
    )
    .unwrap();

    // Kill the victim without touching anyone else: send_to() bypasses
    // flow hashing.
    let mut poison = PacketBatch::new();
    poison.push(udp(1, POISON_PORT));
    rt.send_to(VICTIM, poison).unwrap();
    let snaps = wait_for(&rt, |s| s[VICTIM].faults == 1);
    assert_eq!(snaps[VICTIM].state, DomainState::Failed);

    // While the victim's domain sits failed, the survivors keep taking
    // and finishing work.
    for index in [0usize, 2, 3] {
        for wave in 0..3u16 {
            let batch: PacketBatch = (0..8u16).map(|i| udp(100 + wave * 8 + i, 80)).collect();
            rt.send_to(index, batch).unwrap();
        }
    }
    let snaps = wait_for(&rt, |s| [0usize, 2, 3].iter().all(|&i| s[i].processed == 3));
    assert_eq!(
        snaps[VICTIM].state,
        DomainState::Failed,
        "survivors finished without the victim being healed"
    );
    for i in [0usize, 2, 3] {
        assert_eq!(snaps[i].state, DomainState::Active);
        assert_eq!(snaps[i].packets_in, 24);
        assert_eq!(snaps[i].faults, 0);
    }

    // Explicit supervision pass: exactly the victim is repaired.
    assert_eq!(rt.heal().unwrap(), 1);
    let snaps = rt.snapshots();
    assert_eq!(snaps[VICTIM].state, DomainState::Active);
    assert_eq!(snaps[VICTIM].respawns, 1);

    // And it takes work again.
    let batch: PacketBatch = (0..8u16).map(|i| udp(500 + i, 80)).collect();
    rt.send_to(VICTIM, batch).unwrap();
    wait_for(&rt, |s| s[VICTIM].processed == 1);

    let report = rt.shutdown();
    assert_eq!(report.faults, 1);
    assert_eq!(report.lost_batches, 1);
    assert_eq!(report.packets_in, 3 * 24 + 8);
}

#[test]
fn repeated_faults_keep_healing() {
    const VICTIM: usize = 0;
    let mut rt = ShardedRuntime::new(
        spec(),
        RuntimeConfig {
            workers: 2,
            queue_capacity: 8,
            ..RuntimeConfig::default()
        },
    )
    .unwrap();

    for round in 1..=3u64 {
        let mut poison = PacketBatch::new();
        poison.push(udp(round as u16, POISON_PORT));
        rt.send_to(VICTIM, poison).unwrap();
        wait_for(&rt, |s| s[VICTIM].faults == round);
        assert_eq!(rt.heal().unwrap(), 1);
        let snaps = rt.snapshots();
        assert_eq!(snaps[VICTIM].state, DomainState::Active);
        assert_eq!(snaps[VICTIM].respawns, round);
    }

    let report = rt.shutdown();
    assert_eq!(report.faults, 3);
    assert_eq!(report.respawns, 3);
    assert_eq!(report.lost_batches, 3);
}
