//! Property test: work stealing conserves packets exactly, whatever the
//! interleaving of steals, faults, respawns, and lane deaths — on every
//! isolation backend.
//!
//! The invariant under test is the lane engine's per-origin ledger:
//! every packet a lane generates is credited to its origin by whoever
//! handles it, so for each origin lane
//!
//! ```text
//! offered == processed + lost + shed
//! ```
//!
//! with `processed` counting batches run *anywhere* (stolen batches are
//! the point), `lost` counting packets destroyed by a domain fault
//! mid-batch, and `shed` counting backlog drained unprocessed by a dead
//! lane. Proptest drives the knobs that change the interleaving: lane
//! count, steal batch (including stealing off), victim order, flow-mix
//! skew, fault rate, respawn budget, and the isolation backend.
//!
//! Needs the `fault-injection` feature (the workspace test run enables
//! it through `rbs-bench`):
//!
//! ```text
//! cargo test -p rbs-runtime --features fault-injection
//! ```
#![cfg(feature = "fault-injection")]

use std::sync::Arc;

use proptest::prelude::*;
use rbs_core::fault::{FaultKind, FaultPlan, FaultSite};
use rbs_netfx::operators::ChaosPoint;
use rbs_netfx::pktgen::{FlowDistribution, TrafficConfig};
use rbs_netfx::PipelineSpec;
use rbs_runtime::{BackendKind, LaneConfig, LaneRuntime, VictimOrder};

/// A pipeline whose only stage is a chaos point: transparent until the
/// plan says otherwise.
fn chaos_spec() -> PipelineSpec {
    PipelineSpec::new().stage(|| ChaosPoint::new(0))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn stealing_conserves_packets_under_chaos(
        lanes in 2usize..=4,
        steal_batch in 0usize..=4,
        fixed_sweep in any::<bool>(),
        zipf in any::<bool>(),
        backend_idx in 0usize..3,
        fault_seed in any::<u64>(),
        rate_idx in 0usize..4,
    ) {
        // 0 = fault-free; the top rate kills lanes outright (respawn
        // budget 1), so shed accounting gets exercised too.
        let rate_ppm = [0u32, 30_000, 150_000, 500_000][rate_idx];
        let backend = [
            BackendKind::TypedSfi,
            BackendKind::MpkSim,
            BackendKind::CopyBoundary,
        ][backend_idx];
        let plan = FaultPlan::new(fault_seed).inject(
            FaultSite::Operator(0),
            FaultKind::Panic,
            rate_ppm,
        );
        let report = LaneRuntime::run(
            chaos_spec(),
            LaneConfig {
                lanes,
                traffic: TrafficConfig {
                    flows: 256,
                    distribution: if zipf {
                        FlowDistribution::Zipf(1.2)
                    } else {
                        FlowDistribution::Uniform
                    },
                    seed: 0x0005_7EA1 ^ fault_seed,
                    ..Default::default()
                },
                total_batches: 64,
                batch_size: 32,
                steal_batch,
                victim_order: if fixed_sweep {
                    VictimOrder::FixedSweep
                } else {
                    VictimOrder::RingNearest
                },
                backend,
                max_respawns: 1,
                faults: Some(Arc::new(plan)),
                ..LaneConfig::default()
            },
        );

        // The one invariant that must survive any interleaving: per
        // origin and in aggregate, nothing vanishes, nothing doubles.
        for (origin, ledger) in report.ledgers.iter().enumerate() {
            prop_assert_eq!(
                ledger.unaccounted(),
                0,
                "origin lane {} leaked: {:?}",
                origin,
                ledger
            );
        }
        prop_assert_eq!(report.unaccounted_packets(), 0);

        // Stealing off means no batch may cross lanes.
        if steal_batch == 0 {
            prop_assert_eq!(report.stolen(), 0);
            for lane in &report.lanes {
                prop_assert_eq!(lane.stolen_in_batches, 0);
            }
        }

        // Executor and origin views must describe the same thefts.
        let stolen_exec: u64 = report.lanes.iter().map(|l| l.stolen_in_packets).sum();
        prop_assert_eq!(report.stolen(), stolen_exec);

        // Fault-free runs additionally return every buffer to a pool;
        // a faulted batch dies with its buffers (allocator-freed), so
        // the pool ledger only balances when nothing was lost or shed.
        if report.lost() == 0 && report.shed() == 0 {
            prop_assert_eq!(report.outstanding_buffers(), 0);
        }
    }
}
