//! Threaded tenant lanes: blast-radius containment at wall-clock scale.
//!
//! [`TenantRuntime`](crate::tenant::TenantRuntime) proves the containment
//! *semantics* — breakers, admission, churn, exact ledgers — on a
//! single-threaded logical tick clock. This module re-proves them on
//! real CPUs: a [`TenantLaneRuntime`] places tenant domains onto N lane
//! **threads** with a weighted placement policy, each lane tick-processes
//! only its resident tenants with no cross-thread hand-off on the steady
//! path, and idle lanes steal *whole tenant work items* through the same
//! Chase–Lev deques the lane engine trades batches on — under a
//! priority-aware policy that never steals ahead of a higher-priority
//! tenant's queued work.
//!
//! The design walks a narrow line: wall-clock parallel execution whose
//! *accounting* is still byte-deterministic.
//!
//! - **Tick barrier.** The control thread steers, admits, and stages a
//!   tick's work while the lanes are parked; the lanes then run the
//!   tick's entire work set to completion and park again. Nothing is
//!   pushed mid-tick, so every deque only shrinks while thieves scan —
//!   the lemma behind the no-inversion guarantee.
//! - **Per-tenant serialization.** Each tenant's admitted batches sit in
//!   a FIFO behind the tenant's own mutex; the deques carry *claim
//!   tokens*, not batches. Whichever lane claims a token executes the
//!   tenant's *next* batch, so a tenant's execution stream (and hence
//!   its fault-plan occurrence stream, breaker transitions, and ledger)
//!   is identical no matter which CPUs ran it. Only wall-clock-side
//!   counters (Mpps, who-stole-what) vary between runs.
//! - **Priority bands.** Every lane owns one deque per distinct
//!   priority. Owners drain their highest band first; a thief sweeps
//!   band-major (all victims' top bands before anyone's second band) and
//!   audits each theft, counting a `priority_inversion` if a higher band
//!   anywhere still held work — structurally impossible, and asserted
//!   zero in the tests.
//! - **O(resident) ticks.** Per tick the control thread touches only the
//!   tenants that received traffic (a dirty list), open breakers (a
//!   watch list), and one staggered snapshot bucket — never the whole
//!   tenant table. Scale to hundreds of tenants costs the lanes nothing.
//!
//! Thefts are metered as [`Crossing::Steal`] against the *origin
//! tenant's* domain and credited to its ledger (`TenantLedger::stolen`,
//! a subset of `processed`), so the steal tax shows up in the isolation
//! accounting exactly like the lane engine's.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;

use parking_lot::Mutex;
use rbs_checkpoint::SnapshotStore;
#[cfg(feature = "fault-injection")]
use rbs_core::fault::FaultPlan;
use rbs_core::fault::{self, FaultKind, FaultSite};
use rbs_maglev::{Backend, MaglevTable};
use rbs_netfx::flow::packet_flow_hash;
use rbs_netfx::{Packet, PacketBatch, Pipeline, PipelineSpec, TickBucket};
use rbs_sfi::backend::Crossing;
use rbs_sfi::{BackendKind, Domain, DomainManager};

use crate::deque::{LaneDeque, Steal, Stealer};
use crate::tenant::{
    default_tenant_chain, BreakerPhase, BreakerPolicy, LaneOccupancy, RebuildRecord,
    TenantChainFactory, TenantError, TenantEvent, TenantEventKind, TenantOutcome, TenantReport,
    TenantSpec,
};

/// Configuration for a [`TenantLaneRuntime`].
#[derive(Clone)]
pub struct TenantLaneConfig {
    /// The tenant population. Index order is identity for the whole run.
    pub tenants: Vec<TenantSpec>,
    /// Lane *threads* tenants are placed onto.
    pub lanes: usize,
    /// Maglev table size; must be prime.
    pub table_size: usize,
    /// Queued batches per lane above which the lowest-priority queued
    /// work is shed (`shed_backpressure`).
    pub queue_hwm: usize,
    /// Breaker thresholds and timers.
    pub breaker: BreakerPolicy,
    /// Work units one tenant may consume per tick before the overrun
    /// counts as a strike. `0` disables the budget.
    pub work_budget_per_tick: u64,
    /// Snapshot cadence in ticks (`0` disables warm recovery). Tenants
    /// are staggered across the cadence window so a tick never snapshots
    /// more than ~`tenants / cadence` chains.
    pub snapshot_every_ticks: u64,
    /// Full-snapshot cadence handed to each tenant's [`SnapshotStore`].
    pub snapshot_full_every: u32,
    /// Isolation backend for the per-tenant domains.
    pub backend: BackendKind,
    /// Chain builder; `None` uses [`default_tenant_chain`].
    pub chain: Option<TenantChainFactory>,
    /// Whether idle lanes steal resident work from busy lanes.
    pub steal: bool,
    /// Deterministic fault plan; stream = tenant index, occurrence = the
    /// tenant's executed batch count (identical semantics to the
    /// single-threaded runtime, *including* under stealing — the
    /// per-tenant FIFO serializes the occurrence stream).
    #[cfg(feature = "fault-injection")]
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for TenantLaneConfig {
    fn default() -> Self {
        Self {
            tenants: Vec::new(),
            lanes: 4,
            table_size: 251,
            queue_hwm: 64,
            breaker: BreakerPolicy::default(),
            work_budget_per_tick: 0,
            snapshot_every_ticks: 0,
            snapshot_full_every: 4,
            backend: BackendKind::TypedSfi,
            chain: None,
            steal: true,
            #[cfg(feature = "fault-injection")]
            faults: None,
        }
    }
}

/// One admitted wave for one tenant, queued on its FIFO.
struct TenantWork {
    epoch: u64,
    batch: PacketBatch,
    enqueue_tick: u64,
    cost: u64,
}

/// A tenant's live chain: its protection domain and the pipeline inside.
struct LaneChain {
    domain: Domain,
    pipeline: Pipeline,
}

/// Everything about one tenant, serialized behind one mutex. The control
/// thread holds it at ingress and supervision points; exactly one lane
/// holds it while executing — which is what makes per-tenant streams
/// executor-invariant.
struct TenantInner {
    spec: TenantSpec,
    present: bool,
    phase: BreakerPhase,
    epoch: u64,
    strikes: u32,
    open_until: u64,
    probes_left: u64,
    bucket: TickBucket,
    ledger: crate::tenant::TenantLedger,
    occurrence: u64,
    faults: u64,
    respawns: u64,
    opens: u64,
    throttles: u64,
    warm_restores: u64,
    cold_restores: u64,
    state_items_restored: u64,
    snapshots_taken: u64,
    delays: Vec<u64>,
    batches_executed: u64,
    work_this_tick: u64,
    home_lane: usize,
    queue: VecDeque<TenantWork>,
    chain: Option<LaneChain>,
    pipeline_spec: PipelineSpec,
    store: SnapshotStore,
    events: Vec<TenantEvent>,
    dirty_since_snapshot: bool,
}

impl TenantInner {
    fn push_event(&mut self, tick: u64, idx: usize, kind: TenantEventKind) {
        self.events.push(TenantEvent {
            tick,
            tenant: idx,
            kind,
        });
    }

    /// One strike: throttle or open per the policy thresholds. A strike
    /// in half-open reopens immediately — the probe failed.
    fn strike(&mut self, idx: usize, now: u64, policy: &BreakerPolicy, manager: &DomainManager) {
        self.strikes += 1;
        match self.phase {
            BreakerPhase::HalfOpen => self.open(idx, now, policy, manager, true),
            BreakerPhase::Running | BreakerPhase::Throttled => {
                if self.strikes >= policy.open_after_strikes {
                    self.open(idx, now, policy, manager, false);
                } else if self.phase == BreakerPhase::Running
                    && self.strikes >= policy.throttle_after_strikes
                {
                    self.phase = BreakerPhase::Throttled;
                    self.throttles += 1;
                    let throttled = (self.spec.rate_per_tick / policy.throttle_divisor).max(1);
                    self.bucket.set_rate(throttled);
                    let strikes = self.strikes;
                    self.push_event(now, idx, TenantEventKind::Throttled { strikes });
                }
            }
            BreakerPhase::Open => {}
        }
    }

    /// Opens the breaker: destroy the domain and refuse ingress until
    /// the timer expires. Batches still queued this tick are shed lazily
    /// by the tokens that claim them (each token accounts exactly one
    /// batch, open or not — conservation holds per token).
    fn open(
        &mut self,
        idx: usize,
        now: u64,
        policy: &BreakerPolicy,
        manager: &DomainManager,
        reopen: bool,
    ) {
        self.phase = BreakerPhase::Open;
        self.open_until = now + policy.open_ticks;
        self.opens += 1;
        if let Some(chain) = self.chain.take() {
            manager.destroy_domain(&chain.domain);
        }
        let strikes = self.strikes;
        self.push_event(
            now,
            idx,
            if reopen {
                TenantEventKind::Reopened
            } else {
                TenantEventKind::Opened { strikes }
            },
        );
    }

    /// Open timer expired: rebuild the chain (warm if a snapshot
    /// verifies) and probe at the throttled admission rate.
    fn half_open(&mut self, idx: usize, now: u64, policy: &BreakerPolicy, manager: &DomainManager) {
        self.phase = BreakerPhase::HalfOpen;
        self.probes_left = policy.half_open_probes.max(1);
        let throttled = (self.spec.rate_per_tick / policy.throttle_divisor).max(1);
        self.bucket.set_rate(throttled);
        self.push_event(now, idx, TenantEventKind::HalfOpened);
        self.respawn(idx, now, manager);
    }

    /// Probes passed: full admission restored, strikes forgiven.
    fn close(&mut self, idx: usize, now: u64) {
        self.phase = BreakerPhase::Running;
        self.strikes = 0;
        let rate = self.spec.rate_per_tick;
        self.bucket.set_rate(rate);
        self.push_event(now, idx, TenantEventKind::Closed);
    }

    /// Rebuilds the tenant's chain in a fresh domain, restoring from the
    /// latest verified snapshot (then the previous; then cold).
    fn respawn(&mut self, idx: usize, now: u64, manager: &DomainManager) {
        if let Some(chain) = self.chain.take() {
            manager.destroy_domain(&chain.domain);
        }
        self.respawns += 1;
        let name = format!(
            "tlane-{}-e{}-g{}",
            self.spec.name, self.epoch, self.respawns
        );
        let domain = manager.create_domain(name).expect("tenant domain");
        let mut pipeline: Option<Pipeline> = None;
        for sealed in [self.store.latest(), self.store.previous()]
            .into_iter()
            .flatten()
        {
            if let Ok(cp) = sealed.open() {
                if let Ok(p) = self.pipeline_spec.build_with_state(&cp) {
                    pipeline = Some(p);
                    break;
                }
            }
        }
        let (pipeline, warm) = match pipeline {
            Some(p) => (p, true),
            None => (self.pipeline_spec.build(), false),
        };
        let items = pipeline.state_items();
        if warm {
            self.warm_restores += 1;
            self.state_items_restored += items;
        } else {
            self.cold_restores += 1;
        }
        self.chain = Some(LaneChain { domain, pipeline });
        self.push_event(now, idx, TenantEventKind::Respawned { warm, items });
    }
}

/// Per-lane state shared with thieves and the control thread.
struct LaneShared {
    /// Tokens the control thread staged for this lane's coming tick,
    /// band-indexed. The lane (deque owner) adopts them at tick start.
    staged: Mutex<Vec<Vec<u32>>>,
    /// Steal handles onto this lane's band deques.
    stealers: Vec<Stealer<u32>>,
}

/// State shared by the control thread and every lane thread.
struct Shared {
    slots: Vec<Mutex<TenantInner>>,
    lanes: Vec<LaneShared>,
    /// Tokens staged for the current tick and not yet consumed. Lanes
    /// run until this hits zero, then park at the tick barrier.
    outstanding: AtomicU64,
    /// The tick the lanes are currently executing.
    tick: AtomicU64,
    shutdown: AtomicBool,
    /// Control + lanes: releases a staged tick (or the shutdown flag).
    start: Barrier,
    /// Lanes only: every owner has adopted its staged tokens. After this
    /// point no deque grows for the rest of the tick.
    pushed: Barrier,
    /// Control + lanes: the tick's work set is fully consumed.
    done: Barrier,
    manager: DomainManager,
    policy: BreakerPolicy,
    /// Tenant index → priority band (0 = highest priority).
    band_of: Vec<usize>,
    steal: bool,
    #[cfg(feature = "fault-injection")]
    faults: Option<Arc<FaultPlan>>,
}

/// What one lane thread hands back at shutdown.
struct LaneSideOutcome {
    executed_batches: u64,
    executed_packets: u64,
    steals_in: u64,
    steal_bytes: u64,
    stolen_from: Vec<u64>,
    priority_inversions: u64,
}

/// Everything one lane thread owns.
struct LaneCtx {
    index: usize,
    shared: Arc<Shared>,
    /// Owner handles of this lane's band deques (band 0 = highest).
    bands: Vec<LaneDeque<u32>>,
    executed_batches: u64,
    executed_packets: u64,
    steals_in: u64,
    steal_bytes: u64,
    stolen_from: Vec<u64>,
    priority_inversions: u64,
}

impl LaneCtx {
    fn run(mut self) -> LaneSideOutcome {
        loop {
            self.shared.start.wait();
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            // Adopt the staged tokens: only the deque owner may push,
            // so the control thread stages and the lane publishes.
            {
                let mut staged = self.shared.lanes[self.index].staged.lock();
                for (band, list) in staged.iter_mut().enumerate() {
                    for &t in list.iter() {
                        self.bands[band].push(t);
                    }
                    list.clear();
                }
            }
            self.shared.pushed.wait();
            let now = self.shared.tick.load(Ordering::Acquire);
            self.process_tick(now);
            self.shared.done.wait();
        }
        LaneSideOutcome {
            executed_batches: self.executed_batches,
            executed_packets: self.executed_packets,
            steals_in: self.steals_in,
            steal_bytes: self.steal_bytes,
            stolen_from: self.stolen_from,
            priority_inversions: self.priority_inversions,
        }
    }

    /// Consumes tokens until the tick's work set is exhausted: own bands
    /// highest-priority first, then a band-major steal sweep, then spin
    /// (some token is in flight on another lane).
    fn process_tick(&mut self, now: u64) {
        while self.shared.outstanding.load(Ordering::Acquire) > 0 {
            if let Some(t) = self.pop_own() {
                self.run_token(t, now, false);
                continue;
            }
            if self.shared.steal {
                if let Some((t, band)) = self.steal_token() {
                    self.audit_no_inversion(band);
                    self.run_token(t, now, true);
                    continue;
                }
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }

    /// Pops this lane's own work, highest band first.
    fn pop_own(&mut self) -> Option<u32> {
        for band in &self.bands {
            if let Some(t) = band.pop() {
                return Some(t);
            }
        }
        None
    }

    /// Band-major steal sweep: every victim's band 0 is scanned before
    /// anyone's band 1, so a theft can never jump ahead of queued
    /// higher-priority work.
    fn steal_token(&mut self) -> Option<(u32, usize)> {
        let lanes = self.shared.lanes.len();
        for band in 0..self.bands.len() {
            for step in 1..lanes {
                let victim = (self.index + step) % lanes;
                let stealer = &self.shared.lanes[victim].stealers[band];
                loop {
                    match stealer.steal() {
                        Steal::Taken(t) => return Some((t, band)),
                        Steal::Retry => continue,
                        Steal::Empty | Steal::Closed => break,
                    }
                }
            }
        }
        None
    }

    /// Audits a theft from `band`: within a tick deques only shrink, so
    /// any non-empty higher band here would be a genuine inversion.
    fn audit_no_inversion(&mut self, band: usize) {
        for b in 0..band {
            if !self.bands[b].is_empty() {
                self.priority_inversions += 1;
                return;
            }
            for lane in &self.shared.lanes {
                if !lane.stealers[b].is_empty() {
                    self.priority_inversions += 1;
                    return;
                }
            }
        }
    }

    /// Redeems one token: locks the tenant, executes (or accounts) its
    /// next queued batch, releases the tick's outstanding count.
    fn run_token(&mut self, t: u32, now: u64, stolen: bool) {
        let idx = t as usize;
        let shared = Arc::clone(&self.shared);
        {
            let mut g = shared.slots[idx].lock();
            self.execute_one(idx, &mut g, now, stolen);
        }
        shared.outstanding.fetch_sub(1, Ordering::AcqRel);
    }

    fn execute_one(&mut self, idx: usize, g: &mut TenantInner, now: u64, stolen: bool) {
        let Some(work) = g.queue.pop_front() else {
            // The batch this token claimed was already accounted (HWM
            // shed after staging); the token still pays its count.
            return;
        };
        let n_in = work.batch.len() as u64;
        if !g.present || work.epoch != g.epoch {
            g.ledger.shed_removed += n_in;
            return;
        }
        if g.phase == BreakerPhase::Open {
            g.ledger.shed_open += n_in;
            return;
        }
        g.delays.push(now - work.enqueue_tick);
        g.batches_executed += 1;
        g.work_this_tick += work.cost;
        let occurrence = g.occurrence;
        g.occurrence += 1;
        #[cfg(feature = "fault-injection")]
        let fire = self
            .shared
            .faults
            .as_ref()
            .and_then(|plan| plan.decide(FaultSite::Operator(0), idx as u64, occurrence));
        #[cfg(not(feature = "fault-injection"))]
        let fire: Option<FaultKind> = {
            let _ = occurrence;
            None
        };
        let chain = g.chain.as_mut().expect("live tenant has a chain");
        if stolen {
            // The batch is executing off its home lane: bill the steal
            // tax to the tenant's own isolation account.
            let bytes = work.batch.total_bytes();
            chain.domain.meter_crossing(Crossing::Steal, bytes);
            self.steal_bytes += bytes as u64;
        }
        let pipeline = &mut chain.pipeline;
        let batch = work.batch;
        let result = chain.domain.execute(move || {
            if let Some(kind) = fire {
                match kind {
                    FaultKind::Panic | FaultKind::PoisonTable | FaultKind::CloseChannel => {
                        fault::fire_panic(FaultSite::Operator(0))
                    }
                    sleepy => fault::fire_sleep(sleepy),
                }
            }
            pipeline.run_batch(batch)
        });
        self.executed_batches += 1;
        self.executed_packets += n_in;
        if stolen {
            self.steals_in += 1;
            self.stolen_from[idx] += 1;
        }
        match result {
            Ok(out) => {
                g.ledger.processed += n_in;
                g.ledger.out += out.len() as u64;
                g.ledger.drops += n_in - out.len() as u64;
                g.dirty_since_snapshot = true;
                if stolen {
                    g.ledger.stolen += n_in;
                }
                if g.phase == BreakerPhase::HalfOpen {
                    g.probes_left = g.probes_left.saturating_sub(1);
                    if g.probes_left == 0 {
                        g.close(idx, now);
                    }
                }
            }
            Err(_) => {
                // The batch moved into the domain and died with it.
                g.ledger.lost += n_in;
                g.faults += 1;
                g.strike(idx, now, &self.shared.policy, &self.shared.manager);
                if g.phase != BreakerPhase::Open {
                    g.respawn(idx, now, &self.shared.manager);
                }
            }
        }
    }
}

/// Multi-tenant containment on real lane threads with priority-aware
/// work stealing. Same call shape as the single-threaded reference:
/// alternate [`offer`](TenantLaneRuntime::offer) and
/// [`step`](TenantLaneRuntime::step), churn between ticks, then
/// [`finish`](TenantLaneRuntime::finish).
pub struct TenantLaneRuntime {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<LaneSideOutcome>>,
    factory: TenantChainFactory,
    specs: Vec<TenantSpec>,
    present: Vec<bool>,
    table: MaglevTable,
    table_map: Vec<usize>,
    /// Permanent per-tenant staging buffers (drained, never replaced —
    /// the warmed-up offer path allocates per queued batch, not per
    /// packet).
    staged: Vec<Vec<Packet>>,
    /// Tenants with queued work since the last step (the dirty list).
    active: Vec<usize>,
    is_active: Vec<bool>,
    /// Queued batches per lane awaiting the next tick.
    lane_depth: Vec<usize>,
    lane_depth_hwm: Vec<usize>,
    hwm_sheds: u64,
    /// Present tenants resident on each lane (home placement).
    residents: Vec<Vec<usize>>,
    /// Placement load (total weight) per lane.
    lane_weight: Vec<u64>,
    /// Tenants with an open breaker, watched for timer expiry.
    open_watch: Vec<usize>,
    /// `snap_buckets[(now + 1) % cadence]` = tenants snapshotting then.
    snap_buckets: Vec<Vec<usize>>,
    rebuilds: Vec<RebuildRecord>,
    now: u64,
    lanes: usize,
    table_size: usize,
    queue_hwm: usize,
    work_budget: u64,
    snapshot_every: u64,
    snapshot_full_every: u32,
    steering_lookups: u64,
}

impl TenantLaneRuntime {
    /// Builds the runtime: weighted placement of every tenant onto a
    /// lane, one domain + cold chain per tenant, per-priority band
    /// deques on every lane, and the lane threads (parked until the
    /// first [`step`](TenantLaneRuntime::step)).
    pub fn new(config: TenantLaneConfig) -> Result<Self, TenantError> {
        if config.tenants.is_empty() {
            return Err(TenantError::BadConfig("no tenants"));
        }
        if config.lanes == 0 {
            return Err(TenantError::BadConfig("zero lanes"));
        }
        if config.tenants.iter().any(|t| t.burst == 0) {
            return Err(TenantError::BadConfig("zero admission burst"));
        }
        let tcount = config.tenants.len();
        let factory: TenantChainFactory = config
            .chain
            .clone()
            .unwrap_or_else(|| Arc::new(default_tenant_chain));
        let manager = DomainManager::with_backend_kind(config.backend);

        // Priority bands: distinct priorities, highest first.
        let mut prios: Vec<u8> = config.tenants.iter().map(|t| t.priority).collect();
        prios.sort_unstable_by(|a, b| b.cmp(a));
        prios.dedup();
        let band_of: Vec<usize> = config
            .tenants
            .iter()
            .map(|t| prios.iter().position(|&p| p == t.priority).expect("band"))
            .collect();
        let bands = prios.len();

        // Weighted placement: heaviest tenants first, each onto the
        // least-loaded lane (ties to the lowest lane index).
        let mut order: Vec<usize> = (0..tcount).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(config.tenants[i].weight), i));
        let mut lane_weight = vec![0u64; config.lanes];
        let mut residents: Vec<Vec<usize>> = vec![Vec::new(); config.lanes];
        let mut home_lane = vec![0usize; tcount];
        for &i in &order {
            let lane = (0..config.lanes)
                .min_by_key(|&l| (lane_weight[l], l))
                .expect("at least one lane");
            home_lane[i] = lane;
            residents[lane].push(i);
            lane_weight[lane] += u64::from(config.tenants[i].weight.max(1));
        }
        for lane in &mut residents {
            lane.sort_unstable();
        }

        let mut slots = Vec::with_capacity(tcount);
        for (idx, spec) in config.tenants.iter().enumerate() {
            let pipeline_spec = factory(idx, spec);
            let domain = manager
                .create_domain(format!("tlane-{}-e0-g0", spec.name))
                .expect("tenant domain");
            let pipeline = pipeline_spec.build();
            slots.push(Mutex::new(TenantInner {
                bucket: TickBucket::new(spec.rate_per_tick, spec.burst),
                spec: spec.clone(),
                present: true,
                phase: BreakerPhase::Running,
                epoch: 0,
                strikes: 0,
                open_until: 0,
                probes_left: 0,
                ledger: crate::tenant::TenantLedger::default(),
                occurrence: 0,
                faults: 0,
                respawns: 0,
                opens: 0,
                throttles: 0,
                warm_restores: 0,
                cold_restores: 0,
                state_items_restored: 0,
                snapshots_taken: 0,
                delays: Vec::new(),
                batches_executed: 0,
                work_this_tick: 0,
                home_lane: home_lane[idx],
                queue: VecDeque::new(),
                chain: Some(LaneChain { domain, pipeline }),
                pipeline_spec,
                store: SnapshotStore::new(config.snapshot_full_every),
                events: Vec::new(),
                dirty_since_snapshot: false,
            }));
        }

        // Band deques: owners move into the lane threads, stealers are
        // published to everyone.
        let mut owners: Vec<Vec<LaneDeque<u32>>> = Vec::with_capacity(config.lanes);
        let mut lane_shared = Vec::with_capacity(config.lanes);
        for _ in 0..config.lanes {
            let mut lane_owners = Vec::with_capacity(bands);
            let mut stealers = Vec::with_capacity(bands);
            for _ in 0..bands {
                let (deque, stealer) = LaneDeque::with_capacity(64);
                lane_owners.push(deque);
                stealers.push(stealer);
            }
            owners.push(lane_owners);
            lane_shared.push(LaneShared {
                staged: Mutex::new(vec![Vec::new(); bands]),
                stealers,
            });
        }

        let backends: Vec<Backend> = config
            .tenants
            .iter()
            .map(|t| Backend::weighted(t.name.clone(), t.weight))
            .collect();
        let table = MaglevTable::new(backends, config.table_size)?;
        let table_map: Vec<usize> = (0..tcount).collect();

        let snap_buckets = if config.snapshot_every_ticks > 0 {
            let se = config.snapshot_every_ticks as usize;
            let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); se];
            for idx in 0..tcount {
                buckets[(se - idx % se) % se].push(idx);
            }
            buckets
        } else {
            Vec::new()
        };

        let shared = Arc::new(Shared {
            slots,
            lanes: lane_shared,
            outstanding: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            start: Barrier::new(config.lanes + 1),
            pushed: Barrier::new(config.lanes),
            done: Barrier::new(config.lanes + 1),
            manager,
            policy: config.breaker,
            band_of,
            steal: config.steal,
            #[cfg(feature = "fault-injection")]
            faults: config.faults.clone(),
        });

        let handles = owners
            .into_iter()
            .enumerate()
            .map(|(index, bands)| {
                let ctx = LaneCtx {
                    index,
                    shared: Arc::clone(&shared),
                    bands,
                    executed_batches: 0,
                    executed_packets: 0,
                    steals_in: 0,
                    steal_bytes: 0,
                    stolen_from: vec![0; tcount],
                    priority_inversions: 0,
                };
                std::thread::Builder::new()
                    .name(format!("tenant-lane-{index}"))
                    .spawn(move || ctx.run())
                    .expect("spawning tenant lane")
            })
            .collect();

        Ok(Self {
            shared,
            handles,
            factory,
            specs: config.tenants.clone(),
            present: vec![true; tcount],
            table,
            table_map,
            staged: (0..tcount).map(|_| Vec::new()).collect(),
            active: Vec::new(),
            is_active: vec![false; tcount],
            lane_depth: vec![0; config.lanes],
            lane_depth_hwm: vec![0; config.lanes],
            hwm_sheds: 0,
            residents,
            lane_weight,
            open_watch: Vec::new(),
            snap_buckets,
            rebuilds: Vec::new(),
            now: 0,
            lanes: config.lanes,
            table_size: config.table_size,
            queue_hwm: config.queue_hwm,
            work_budget: config.work_budget_per_tick,
            snapshot_every: config.snapshot_every_ticks,
            snapshot_full_every: config.snapshot_full_every,
            steering_lookups: 0,
        })
    }

    /// The current logical tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The live steering table.
    pub fn table(&self) -> &MaglevTable {
        &self.table
    }

    /// A tenant's breaker phase.
    pub fn phase(&self, idx: usize) -> BreakerPhase {
        self.shared.slots[idx].lock().phase
    }

    /// A tenant's conservation ledger so far.
    pub fn ledger(&self, idx: usize) -> crate::tenant::TenantLedger {
        self.shared.slots[idx].lock().ledger
    }

    /// A tenant's epoch (times re-added).
    pub fn epoch(&self, idx: usize) -> u64 {
        self.shared.slots[idx].lock().epoch
    }

    /// The lane a tenant is placed on.
    pub fn home_lane(&self, idx: usize) -> usize {
        self.shared.slots[idx].lock().home_lane
    }

    /// Snapshots sealed in the tenant's current epoch.
    pub fn snapshots_taken(&self, idx: usize) -> u64 {
        self.shared.slots[idx].lock().snapshots_taken
    }

    /// Maglev lookups performed; with run-batched steering this counts
    /// flow runs, not packets.
    pub fn steering_lookups(&self) -> u64 {
        self.steering_lookups
    }

    /// Live state items in the tenant's chain, measured inside its
    /// domain (0 if the chain is down).
    pub fn state_items(&self, idx: usize) -> u64 {
        let g = self.shared.slots[idx].lock();
        match &g.chain {
            Some(chain) => chain
                .domain
                .execute(|| chain.pipeline.state_items())
                .unwrap_or(0),
            None => 0,
        }
    }

    /// Steers one wave: run-batched Maglev lookup → ledger attribution →
    /// breaker gate → admission → the tenant's FIFO on its home lane,
    /// then the per-lane high-water mark. Runs on the control thread
    /// while the lanes are parked, so it is exactly as deterministic as
    /// the single-threaded runtime's offer.
    pub fn offer(&mut self, batch: PacketBatch) {
        let now = self.now;
        let mut last_hash = 0u64;
        let mut last_idx = usize::MAX;
        let mut touched_lanes = 0u64;

        for p in batch.into_packets() {
            let hash = p.cached_flow_hash().unwrap_or_else(|| packet_flow_hash(&p));
            let idx = if last_idx != usize::MAX && hash == last_hash {
                last_idx
            } else {
                self.steering_lookups += 1;
                last_hash = hash;
                last_idx = self.table_map[self.table.lookup(hash)];
                last_idx
            };
            let mut g = self.shared.slots[idx].lock();
            g.ledger.offered += 1;
            if g.phase == BreakerPhase::Open {
                g.ledger.shed_open += 1;
                continue;
            }
            if g.bucket.take(now, 1) == 0 {
                g.ledger.shed_admission += 1;
                continue;
            }
            drop(g);
            self.staged[idx].push(p);
            if !self.is_active[idx] {
                self.is_active[idx] = true;
                self.active.push(idx);
            }
        }

        // Queue one batch per touched tenant, canonical (index) order.
        self.active.sort_unstable();
        for pos in 0..self.active.len() {
            let idx = self.active[pos];
            if self.staged[idx].is_empty() {
                continue;
            }
            let mut pkts = Vec::with_capacity(self.staged[idx].len());
            pkts.append(&mut self.staged[idx]);
            let cost = (pkts.len() as u64) * self.specs[idx].cost_per_packet.max(1);
            let mut g = self.shared.slots[idx].lock();
            let lane = g.home_lane;
            let epoch = g.epoch;
            g.queue.push_back(TenantWork {
                epoch,
                batch: PacketBatch::from_packets(pkts),
                enqueue_tick: now,
                cost,
            });
            drop(g);
            self.lane_depth[lane] += 1;
            touched_lanes |= 1 << (lane % 64);
        }

        for lane in 0..self.lanes {
            if touched_lanes & (1 << (lane % 64)) == 0 && self.lane_depth[lane] <= self.queue_hwm {
                continue;
            }
            self.lane_depth_hwm[lane] = self.lane_depth_hwm[lane].max(self.lane_depth[lane]);
            self.apply_hwm(lane);
        }
    }

    /// Sheds the newest batch of the lowest-priority resident (ties to
    /// the higher tenant index) until the lane is back under its
    /// high-water mark.
    fn apply_hwm(&mut self, lane: usize) {
        while self.lane_depth[lane] > self.queue_hwm {
            let mut victim = usize::MAX;
            let mut victim_prio = u8::MAX;
            for &idx in &self.residents[lane] {
                if self.shared.slots[idx].lock().queue.is_empty() {
                    continue;
                }
                let prio = self.specs[idx].priority;
                if prio <= victim_prio {
                    victim_prio = prio;
                    victim = idx;
                }
            }
            if victim == usize::MAX {
                break;
            }
            let mut g = self.shared.slots[victim].lock();
            let work = g.queue.pop_back().expect("victim has queued work");
            g.ledger.shed_backpressure += work.batch.len() as u64;
            drop(g);
            self.lane_depth[lane] -= 1;
            self.hwm_sheds += 1;
        }
    }

    /// Executes one tick on the lane threads: stage claim tokens for
    /// every queued batch, release the lanes through the tick barrier,
    /// wait for run-to-completion, then apply the deterministic
    /// supervision pass (work-budget strikes, open-timer expiry, the
    /// staggered snapshot cadence). Advances the clock.
    pub fn step(&mut self) {
        let now = self.now;
        self.active.sort_unstable();
        let mut total = 0u64;
        for &idx in &self.active {
            let g = self.shared.slots[idx].lock();
            let n = g.queue.len();
            let lane = g.home_lane;
            drop(g);
            if n == 0 {
                continue;
            }
            let band = self.shared.band_of[idx];
            let mut staged = self.shared.lanes[lane].staged.lock();
            for _ in 0..n {
                staged[band].push(idx as u32);
            }
            total += n as u64;
        }
        self.shared.outstanding.store(total, Ordering::Release);
        self.shared.tick.store(now, Ordering::Release);
        self.shared.start.wait();
        self.shared.done.wait();

        // Supervision pass, tenant-index order (active is sorted).
        for pos in 0..self.active.len() {
            let idx = self.active[pos];
            self.is_active[idx] = false;
            let mut g = self.shared.slots[idx].lock();
            let spent = g.work_this_tick;
            g.work_this_tick = 0;
            if self.work_budget > 0
                && g.present
                && g.phase != BreakerPhase::Open
                && spent > self.work_budget
            {
                g.strike(idx, now, &self.shared.policy, &self.shared.manager);
            }
            if g.phase == BreakerPhase::Open {
                drop(g);
                self.open_watch.push(idx);
            }
        }
        self.active.clear();
        self.lane_depth.iter_mut().for_each(|d| *d = 0);

        // Open-timer expiry over the watch list only.
        self.open_watch.sort_unstable();
        self.open_watch.dedup();
        let mut still_open = Vec::new();
        for pos in 0..self.open_watch.len() {
            let idx = self.open_watch[pos];
            let mut g = self.shared.slots[idx].lock();
            if !g.present || g.phase != BreakerPhase::Open {
                continue;
            }
            if now >= g.open_until {
                g.half_open(idx, now, &self.shared.policy, &self.shared.manager);
            } else {
                still_open.push(idx);
            }
        }
        self.open_watch = still_open;

        // Staggered snapshots: one bucket of tenants per tick.
        if self.snapshot_every > 0 {
            let bucket = ((now + 1) % self.snapshot_every) as usize;
            for pos in 0..self.snap_buckets[bucket].len() {
                let idx = self.snap_buckets[bucket][pos];
                let mut g = self.shared.slots[idx].lock();
                if !g.present || g.phase == BreakerPhase::Open || !g.dirty_since_snapshot {
                    continue;
                }
                let Some(chain) = &g.chain else { continue };
                let Ok((cp, items)) = chain
                    .domain
                    .execute(|| (chain.pipeline.export_state(), chain.pipeline.state_items()))
                else {
                    continue;
                };
                let schema = g.pipeline_spec.state_schema();
                g.store.record(&cp, now, items, schema);
                g.snapshots_taken += 1;
                g.dirty_since_snapshot = false;
            }
        }

        self.now = now + 1;
    }

    /// Removes a tenant between ticks: sheds anything still queued,
    /// destroys its chain and snapshot store, vacates its lane, and
    /// rebuilds the steering table around it. Returns the remapped
    /// entry count.
    pub fn remove_tenant(&mut self, idx: usize) -> Result<usize, TenantError> {
        if idx >= self.specs.len() {
            return Err(TenantError::UnknownTenant(idx));
        }
        if !self.present[idx] {
            return Err(TenantError::NotPresent(idx));
        }
        if self.present.iter().filter(|p| **p).count() < 2 {
            return Err(TenantError::LastTenant);
        }
        let now = self.now;
        let home = {
            let mut g = self.shared.slots[idx].lock();
            while let Some(work) = g.queue.pop_front() {
                g.ledger.shed_removed += work.batch.len() as u64;
                self.lane_depth[g.home_lane] = self.lane_depth[g.home_lane].saturating_sub(1);
            }
            if let Some(chain) = g.chain.take() {
                self.shared.manager.destroy_domain(&chain.domain);
            }
            g.present = false;
            g.phase = BreakerPhase::Running;
            g.strikes = 0;
            g.snapshots_taken = 0;
            // Epoch keying: the departed epoch's snapshots can never
            // serve a future incarnation of this tenant.
            g.store = SnapshotStore::new(self.snapshot_full_every);
            g.home_lane
        };
        self.present[idx] = false;
        self.residents[home].retain(|&t| t != idx);
        self.lane_weight[home] -= u64::from(self.specs[idx].weight.max(1));
        let remapped = self.rebuild_table()?;
        self.rebuilds.push(RebuildRecord {
            tick: now,
            action: "remove",
            tenant: idx,
            remapped_entries: remapped,
        });
        self.shared.slots[idx].lock().push_event(
            now,
            idx,
            TenantEventKind::Removed {
                remapped_entries: remapped,
            },
        );
        Ok(remapped)
    }

    /// Re-adds a removed tenant under a fresh epoch: cold chain, empty
    /// snapshot store, full-rate admission, placement onto the
    /// least-loaded lane, and a table rebuild that hands back its old
    /// entries. Returns the remapped entry count.
    pub fn add_tenant(&mut self, idx: usize) -> Result<usize, TenantError> {
        if idx >= self.specs.len() {
            return Err(TenantError::UnknownTenant(idx));
        }
        if self.present[idx] {
            return Err(TenantError::AlreadyPresent(idx));
        }
        let now = self.now;
        let lane = (0..self.lanes)
            .min_by_key(|&l| (self.lane_weight[l], l))
            .expect("at least one lane");
        let epoch = {
            let mut g = self.shared.slots[idx].lock();
            g.epoch += 1;
            g.present = true;
            g.phase = BreakerPhase::Running;
            g.strikes = 0;
            g.probes_left = 0;
            g.bucket = TickBucket::new(g.spec.rate_per_tick, g.spec.burst);
            g.home_lane = lane;
            g.pipeline_spec = (self.factory)(idx, &g.spec);
            let domain = self
                .shared
                .manager
                .create_domain(format!("tlane-{}-e{}-g0", g.spec.name, g.epoch))
                .expect("tenant domain");
            let pipeline = g.pipeline_spec.build();
            g.chain = Some(LaneChain { domain, pipeline });
            g.store = SnapshotStore::new(self.snapshot_full_every);
            g.dirty_since_snapshot = false;
            g.epoch
        };
        self.present[idx] = true;
        self.residents[lane].push(idx);
        self.residents[lane].sort_unstable();
        self.lane_weight[lane] += u64::from(self.specs[idx].weight.max(1));
        let remapped = self.rebuild_table()?;
        self.rebuilds.push(RebuildRecord {
            tick: now,
            action: "add",
            tenant: idx,
            remapped_entries: remapped,
        });
        self.shared.slots[idx].lock().push_event(
            now,
            idx,
            TenantEventKind::Added {
                epoch,
                remapped_entries: remapped,
            },
        );
        Ok(remapped)
    }

    /// Rebuilds the Maglev table over the present tenants and counts the
    /// entries that changed owner.
    fn rebuild_table(&mut self) -> Result<usize, TenantError> {
        let mut backends = Vec::new();
        let mut map = Vec::new();
        for (i, spec) in self.specs.iter().enumerate() {
            if self.present[i] {
                backends.push(Backend::weighted(spec.name.clone(), spec.weight));
                map.push(i);
            }
        }
        let table = MaglevTable::new(backends, self.table_size)?;
        let remapped = self.table.disrupted_entries(&table);
        self.table = table;
        self.table_map = map;
        Ok(remapped)
    }

    /// Runs any still-queued work to completion, retires the lane
    /// threads, destroys all domains, and returns the final report.
    pub fn finish(mut self) -> TenantReport {
        while !self.active.is_empty() {
            self.step();
        }
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.start.wait();
        let sides: Vec<LaneSideOutcome> = self
            .handles
            .drain(..)
            .map(|h| h.join().expect("lane thread panicked"))
            .collect();

        let tcount = self.specs.len();
        let mut outcomes = Vec::with_capacity(tcount);
        let mut events: Vec<TenantEvent> = Vec::new();
        for idx in 0..tcount {
            let final_state_items = self.state_items(idx);
            let mut g = self.shared.slots[idx].lock();
            g.delays.sort_unstable();
            let p99 = if g.delays.is_empty() {
                0
            } else {
                g.delays[(g.delays.len() - 1) * 99 / 100]
            };
            let max = g.delays.last().copied().unwrap_or(0);
            events.append(&mut g.events);
            outcomes.push(TenantOutcome {
                name: g.spec.name.clone(),
                priority: g.spec.priority,
                ledger: g.ledger,
                final_phase: g.phase,
                epoch: g.epoch,
                faults: g.faults,
                respawns: g.respawns,
                opens: g.opens,
                throttles: g.throttles,
                warm_restores: g.warm_restores,
                cold_restores: g.cold_restores,
                state_items_restored: g.state_items_restored,
                final_state_items,
                snapshots_taken: g.snapshots_taken,
                p99_delay_ticks: p99,
                max_delay_ticks: max,
                batches_executed: g.batches_executed,
            });
            if let Some(chain) = g.chain.take() {
                self.shared.manager.destroy_domain(&chain.domain);
            }
        }
        // Canonical journal order: per-tenant streams are already
        // tick-ordered; a stable sort on tick yields (tick, tenant, seq).
        events.sort_by_key(|e| e.tick);

        let occupancy = sides
            .into_iter()
            .enumerate()
            .map(|(lane, s)| LaneOccupancy {
                lane,
                residents: self.residents[lane].clone(),
                executed_batches: s.executed_batches,
                executed_packets: s.executed_packets,
                steals_in: s.steals_in,
                steal_bytes: s.steal_bytes,
                stolen_from: s
                    .stolen_from
                    .iter()
                    .enumerate()
                    .filter(|(_, &n)| n > 0)
                    .map(|(t, &n)| (t, n))
                    .collect(),
                priority_inversions: s.priority_inversions,
            })
            .collect();

        TenantReport {
            tenants: outcomes,
            lane_depth_hwm: self.lane_depth_hwm.clone(),
            hwm_sheds: self.hwm_sheds,
            rebuilds: self.rebuilds.clone(),
            events,
            ticks: self.now,
            occupancy,
        }
    }
}

impl Drop for TenantLaneRuntime {
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.start.wait();
            for h in self.handles.drain(..) {
                let _ = h.join();
            }
        }
        for slot in &self.shared.slots {
            let mut g = slot.lock();
            if let Some(chain) = g.chain.take() {
                self.shared.manager.destroy_domain(&chain.domain);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbs_netfx::headers::ethernet::MacAddr;
    use std::net::Ipv4Addr;

    fn http_packet(src_host: u8, sport: u16) -> Packet {
        let mut p = Packet::build_udp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(10, 0, 0, src_host),
            Ipv4Addr::new(192, 0, 2, 1),
            sport,
            80,
            16,
        );
        let hash = packet_flow_hash(&p);
        p.set_cached_flow_hash(hash);
        p
    }

    fn wave(round: u32, count: u32) -> PacketBatch {
        (0..count)
            .map(|i| {
                let n = round * count + i;
                http_packet((n % 23) as u8 + 1, (n % 52_000) as u16 + 1_024)
            })
            .collect()
    }

    fn population(n: usize) -> Vec<TenantSpec> {
        (0..n)
            .map(|i| {
                TenantSpec::new(format!("tenant-{i}"))
                    .rate(400, 800)
                    .priority(if i % 3 == 0 { 2 } else { 1 })
            })
            .collect()
    }

    #[test]
    fn threaded_run_conserves_and_places_every_tenant() {
        let mut rt = TenantLaneRuntime::new(TenantLaneConfig {
            tenants: population(12),
            lanes: 3,
            ..TenantLaneConfig::default()
        })
        .unwrap();
        for round in 0..12 {
            rt.offer(wave(round, 192));
            rt.step();
        }
        let report = rt.finish();
        assert_eq!(report.unaccounted_packets(), 0);
        assert_eq!(report.priority_inversions(), 0);
        for t in &report.tenants {
            assert_eq!(t.ledger.unaccounted(), 0, "{} leaks packets", t.name);
            assert!(t.ledger.stolen <= t.ledger.processed);
        }
        // Placement partitions the population across the lanes.
        let mut seen: Vec<usize> = report
            .occupancy
            .iter()
            .flat_map(|l| l.residents.iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..12).collect::<Vec<_>>());
        // Executor-side counts cover exactly the executed batches.
        let executed: u64 = report.occupancy.iter().map(|l| l.executed_batches).sum();
        let batches: u64 = report.tenants.iter().map(|t| t.batches_executed).sum();
        assert_eq!(executed, batches);
    }

    #[test]
    fn steal_accounting_is_consistent() {
        // One fat tenant on each of two lanes plus an empty third lane:
        // any thefts that do occur must balance across all three views
        // (lane counters, per-origin counters, tenant ledgers).
        let mut rt = TenantLaneRuntime::new(TenantLaneConfig {
            tenants: population(2),
            lanes: 3,
            ..TenantLaneConfig::default()
        })
        .unwrap();
        for round in 0..20 {
            for _ in 0..4 {
                rt.offer(wave(round, 96));
            }
            rt.step();
        }
        let report = rt.finish();
        assert_eq!(report.unaccounted_packets(), 0);
        assert_eq!(report.priority_inversions(), 0);
        let steals: u64 = report.occupancy.iter().map(|l| l.steals_in).sum();
        let by_origin: u64 = report
            .occupancy
            .iter()
            .flat_map(|l| l.stolen_from.iter().map(|&(_, n)| n))
            .sum();
        assert_eq!(steals, by_origin);
        if steals > 0 {
            let stolen_packets: u64 = report.tenants.iter().map(|t| t.ledger.stolen).sum();
            assert!(stolen_packets > 0, "ledger steal credits missing");
            let steal_bytes: u64 = report.occupancy.iter().map(|l| l.steal_bytes).sum();
            assert!(steal_bytes > 0, "steal tax was not metered");
        }
    }

    #[test]
    fn hwm_sheds_lowest_priority_resident() {
        let mut tenants = population(4);
        for t in &mut tenants {
            t.priority = 2;
        }
        tenants[3].priority = 1;
        // Four tenants each queue one batch per tick; HWM 3 sheds
        // exactly one — which must always be the low-priority tenant.
        let mut rt = TenantLaneRuntime::new(TenantLaneConfig {
            tenants,
            lanes: 1,
            queue_hwm: 3,
            ..TenantLaneConfig::default()
        })
        .unwrap();
        for round in 0..8 {
            rt.offer(wave(round, 256));
            rt.step();
        }
        let report = rt.finish();
        assert_eq!(report.unaccounted_packets(), 0);
        assert!(report.hwm_sheds > 0, "hwm never triggered");
        assert!(
            report.tenants[3].ledger.shed_backpressure > 0,
            "low-priority tenant was not the shed victim"
        );
        for idx in [0usize, 1, 2] {
            assert_eq!(
                report.tenants[idx].ledger.shed_backpressure, 0,
                "high-priority tenant {idx} was shed"
            );
        }
    }

    #[test]
    fn churn_round_trip_reverses_the_remap() {
        let mut rt = TenantLaneRuntime::new(TenantLaneConfig {
            tenants: population(6),
            lanes: 2,
            ..TenantLaneConfig::default()
        })
        .unwrap();
        for round in 0..4 {
            rt.offer(wave(round, 96));
            rt.step();
        }
        let out = rt.remove_tenant(5).unwrap();
        for round in 4..8 {
            rt.offer(wave(round, 96));
            rt.step();
        }
        let back = rt.add_tenant(5).unwrap();
        assert_eq!(out, back, "same-name re-add must reverse the remap");
        assert_eq!(rt.epoch(5), 1);
        for round in 8..12 {
            rt.offer(wave(round, 96));
            rt.step();
        }
        let report = rt.finish();
        assert_eq!(report.unaccounted_packets(), 0);
        assert_eq!(report.rebuilds.len(), 2);
    }

    /// The stable half of the report replays byte-identically; only the
    /// executor-side occupancy (who stole what) may differ between runs.
    #[test]
    fn threaded_run_is_deterministic_modulo_scheduling() {
        let run = || {
            let mut rt = TenantLaneRuntime::new(TenantLaneConfig {
                tenants: population(8),
                lanes: 4,
                queue_hwm: 4,
                work_budget_per_tick: 4_000,
                snapshot_every_ticks: 4,
                ..TenantLaneConfig::default()
            })
            .unwrap();
            for round in 0..16 {
                if round == 6 {
                    rt.remove_tenant(7).unwrap();
                }
                if round == 12 {
                    rt.add_tenant(7).unwrap();
                }
                rt.offer(wave(round, 384));
                rt.step();
            }
            let report = rt.finish();
            assert_eq!(report.priority_inversions(), 0);
            (
                report
                    .tenants
                    .iter()
                    .map(|t| {
                        let mut ledger = t.ledger;
                        ledger.stolen = 0; // scheduling-dependent
                        (ledger, t.faults, t.opens, t.throttles, t.batches_executed)
                    })
                    .collect::<Vec<_>>(),
                report.events,
                report.rebuilds,
                report.hwm_sheds,
                report.lane_depth_hwm.clone(),
                report
                    .occupancy
                    .iter()
                    .map(|l| l.residents.clone())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }
}
