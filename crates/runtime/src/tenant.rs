//! Tenant blast-radius containment: per-tenant breakers, admission
//! control, and churn-safe flow steering.
//!
//! The paper's pitch is that Rust gives systems *fine-grained* fault
//! boundaries at near-zero cost (§2, §4). The lane runtime exploits that
//! per **shard**; this module exploits it per **customer**. A
//! [`TenantRuntime`] multiplexes N tenants onto L run-to-completion
//! lanes and guarantees that one misbehaving tenant — a flood, a
//! fault-looping operator chain, or a CPU hog — cannot take the others'
//! SLA down with it. Three mechanisms compose:
//!
//! - **Steering** — a Maglev table over the present tenants (weighted by
//!   [`TenantSpec::weight`]) maps every packet's flow hash to exactly one
//!   tenant, so attribution is decided at ingress and every packet lands
//!   in exactly one tenant's conservation ledger. Consistent hashing
//!   bounds the collateral of tenant churn (see the `disruption_bound`
//!   tests in `rbs-maglev`): removing one tenant remaps its own entries
//!   plus at most ~`table_size / N` innocent ones.
//! - **Admission** — a [`TickBucket`] per tenant clocked by the runtime's
//!   logical tick sheds a flood *before* it queues (`shed_admission`),
//!   and a per-lane high-water mark sheds the lowest-priority queued
//!   work when backlog builds anyway (`shed_backpressure`). Both are
//!   integer-deterministic: the same offered trace sheds the same
//!   packets on every run.
//! - **Breakers** — each tenant's chain runs in its own protection
//!   domain. Faults and per-tick work-budget overruns accumulate
//!   *strikes*: enough strikes throttle the tenant's admission rate
//!   ([`BreakerPhase::Throttled`]), more open the breaker outright
//!   ([`BreakerPhase::Open`]: domain destroyed, queued work shed, ingress
//!   shed at zero cost). After `open_ticks` the breaker half-opens and
//!   probes with a warm-restored chain; clean probes close it, a faulty
//!   probe reopens it. The victim tenants never see any of this except
//!   as a few remapped Maglev entries.
//!
//! Conservation is exact and per-tenant: `offered == processed + lost +
//! shed` where `shed` itemizes admission, open-breaker, backpressure and
//! removal sheds. E15 sweeps this machinery against flood, fault-loop
//! and slow-operator aggressors and asserts victims keep ≥ 99% goodput.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use rbs_checkpoint::SnapshotStore;
#[cfg(feature = "fault-injection")]
use rbs_core::fault::FaultPlan;
use rbs_core::fault::{self, FaultKind, FaultSite};
use rbs_maglev::{Backend, MaglevTable, TableError};
use rbs_netfx::flow::packet_flow_hash;
use rbs_netfx::operators::DstPortFilter;
use rbs_netfx::{FlowTracker, PacketBatch, Pipeline, PipelineSpec, SourceNat, TickBucket};
use rbs_sfi::{BackendKind, Domain, DomainManager};

/// Builds one tenant's operator chain. Called once per epoch (cold
/// build) and reused for every warm respawn within that epoch.
pub type TenantChainFactory = Arc<dyn Fn(usize, &TenantSpec) -> PipelineSpec + Send + Sync>;

/// One tenant's contract with the runtime.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Steering identity: the Maglev permutation seed, so a tenant that
    /// leaves and returns under the same name reclaims its old entries.
    pub name: String,
    /// Shedding order under backpressure: lower priority sheds first.
    pub priority: u8,
    /// Maglev weight — share of the steering table.
    pub weight: u32,
    /// Admission tokens accrued per tick.
    pub rate_per_tick: u64,
    /// Admission burst depth (bucket capacity).
    pub burst: u64,
    /// Work units one packet costs a lane. A slow operator is modeled as
    /// an elevated per-packet cost; the work budget converts sustained
    /// overuse into strikes.
    pub cost_per_packet: u64,
}

impl TenantSpec {
    /// A default tenant: priority 1, weight 1, generous admission.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            priority: 1,
            weight: 1,
            rate_per_tick: 1_000,
            burst: 2_000,
            cost_per_packet: 1,
        }
    }

    /// Sets the shedding priority (higher is kept longer).
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the Maglev weight.
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Sets the admission rate and burst.
    pub fn rate(mut self, rate_per_tick: u64, burst: u64) -> Self {
        self.rate_per_tick = rate_per_tick;
        self.burst = burst;
        self
    }

    /// Sets the per-packet work cost.
    pub fn cost_per_packet(mut self, cost: u64) -> Self {
        self.cost_per_packet = cost;
        self
    }
}

/// Strike thresholds and timers for the per-tenant circuit breaker.
#[derive(Debug, Clone, Copy)]
pub struct BreakerPolicy {
    /// Strikes before the tenant's admission rate is divided down.
    pub throttle_after_strikes: u32,
    /// Strikes before the breaker opens (domain destroyed, all shed).
    pub open_after_strikes: u32,
    /// Ticks an open breaker stays open before probing.
    pub open_ticks: u64,
    /// Clean batches required in half-open before closing.
    pub half_open_probes: u64,
    /// Throttled admission rate = `rate_per_tick / throttle_divisor`.
    pub throttle_divisor: u64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self {
            throttle_after_strikes: 2,
            open_after_strikes: 4,
            open_ticks: 16,
            half_open_probes: 2,
            throttle_divisor: 4,
        }
    }
}

/// Configuration for a [`TenantRuntime`].
#[derive(Clone)]
pub struct TenantConfig {
    /// The tenant population. Index order is identity for the whole run:
    /// churn removes and re-adds by index, never renumbers.
    pub tenants: Vec<TenantSpec>,
    /// Run-to-completion lanes work is spread over (by flow hash).
    pub lanes: usize,
    /// Maglev table size; must be prime.
    pub table_size: usize,
    /// Work units one lane executes per tick. Oversized batches carry
    /// their excess cost forward as debt against later ticks.
    pub lane_capacity: u64,
    /// Queued batches per lane above which the lowest-priority queued
    /// work is shed (`shed_backpressure`).
    pub queue_hwm: usize,
    /// Breaker thresholds and timers.
    pub breaker: BreakerPolicy,
    /// Work units one tenant may consume per tick across all lanes
    /// before the overrun counts as a strike. `0` disables the budget.
    pub work_budget_per_tick: u64,
    /// Snapshot cadence in ticks (`0` disables warm recovery).
    pub snapshot_every_ticks: u64,
    /// Full-snapshot cadence handed to each tenant's [`SnapshotStore`].
    pub snapshot_full_every: u32,
    /// Isolation backend for the per-tenant domains.
    pub backend: BackendKind,
    /// Chain builder; `None` uses [`default_tenant_chain`].
    pub chain: Option<TenantChainFactory>,
    /// Deterministic fault plan. Decisions are streamed per tenant: the
    /// plan's `stream` is the tenant index, the occurrence its executed
    /// batch count — so a scripted crash loop targets one tenant while
    /// background chaos salts all of them, reproducibly.
    #[cfg(feature = "fault-injection")]
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for TenantConfig {
    fn default() -> Self {
        Self {
            tenants: Vec::new(),
            lanes: 2,
            table_size: 251,
            lane_capacity: 512,
            queue_hwm: 8,
            breaker: BreakerPolicy::default(),
            work_budget_per_tick: 0,
            snapshot_every_ticks: 0,
            snapshot_full_every: 4,
            backend: BackendKind::TypedSfi,
            chain: None,
            #[cfg(feature = "fault-injection")]
            faults: None,
        }
    }
}

/// The stock tenant chain: a port-80/53 filter, a per-tenant source NAT
/// (distinct NAT IP per tenant index, so cross-tenant translation state
/// is structurally impossible to confuse), and a flow tracker — the
/// stateful trio whose reclamation the churn tests audit.
pub fn default_tenant_chain(idx: usize, _spec: &TenantSpec) -> PipelineSpec {
    let nat_ip = std::net::Ipv4Addr::new(203, 0, 113, 10 + (idx as u8));
    PipelineSpec::new()
        .stage(|| DstPortFilter::new(vec![80, 53]))
        .stage(move || {
            SourceNat::new(
                nat_ip,
                std::net::Ipv4Addr::new(10, 0, 0, 0),
                8,
                40_000..=50_000,
            )
        })
        .stage(|| FlowTracker::new(4_096))
        .with_state_schema(1)
}

/// Errors from [`TenantRuntime`] construction or churn.
#[derive(Debug)]
pub enum TenantError {
    /// Invalid configuration.
    BadConfig(&'static str),
    /// Tenant index out of range.
    UnknownTenant(usize),
    /// `add_tenant` on a tenant that is already present.
    AlreadyPresent(usize),
    /// `remove_tenant` on a tenant that is not present.
    NotPresent(usize),
    /// Removing the last present tenant would leave nothing to steer to.
    LastTenant,
    /// Maglev rebuild failed.
    Table(TableError),
}

impl fmt::Display for TenantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenantError::BadConfig(why) => write!(f, "bad tenant config: {why}"),
            TenantError::UnknownTenant(i) => write!(f, "unknown tenant index {i}"),
            TenantError::AlreadyPresent(i) => write!(f, "tenant {i} already present"),
            TenantError::NotPresent(i) => write!(f, "tenant {i} not present"),
            TenantError::LastTenant => write!(f, "cannot remove the last present tenant"),
            TenantError::Table(e) => write!(f, "maglev rebuild: {e}"),
        }
    }
}

impl std::error::Error for TenantError {}

impl From<TableError> for TenantError {
    fn from(e: TableError) -> Self {
        TenantError::Table(e)
    }
}

/// Where a tenant's circuit breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerPhase {
    /// Healthy: full admission rate.
    Running,
    /// Strikes accumulated: admission rate divided down.
    Throttled,
    /// Blast contained: domain destroyed, everything shed at ingress.
    Open,
    /// Probing with a warm-restored chain at throttled admission.
    HalfOpen,
}

impl BreakerPhase {
    /// Stable lowercase label for reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            BreakerPhase::Running => "running",
            BreakerPhase::Throttled => "throttled",
            BreakerPhase::Open => "open",
            BreakerPhase::HalfOpen => "half-open",
        }
    }
}

/// Exact per-tenant packet conservation. Every offered packet ends in
/// exactly one bucket; [`TenantLedger::unaccounted`] is the audit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantLedger {
    /// Packets steered to this tenant at ingress.
    pub offered: u64,
    /// Packets that entered the tenant's chain.
    pub processed: u64,
    /// Packets that left the chain (goodput numerator).
    pub out: u64,
    /// Packets the chain dropped by policy (filter, NAT exhaustion).
    pub drops: u64,
    /// Packets destroyed by a domain fault mid-batch.
    pub lost: u64,
    /// Packets refused by the tenant's admission bucket.
    pub shed_admission: u64,
    /// Packets refused (or queue-shed) while the breaker was open.
    pub shed_open: u64,
    /// Queued packets shed by the lane high-water mark.
    pub shed_backpressure: u64,
    /// Queued packets stranded by removal with a dead chain.
    pub shed_removed: u64,
    /// Of `processed`, packets executed by a lane other than the
    /// tenant's home lane (work stealing). Informational — a subset of
    /// `processed`, not a term of the conservation identity. Always zero
    /// on the single-threaded [`TenantRuntime`].
    pub stolen: u64,
}

impl TenantLedger {
    /// Total shed packets across all shed reasons.
    pub fn shed(&self) -> u64 {
        self.shed_admission + self.shed_open + self.shed_backpressure + self.shed_removed
    }

    /// `offered - processed - lost - shed`; zero iff conservation holds.
    pub fn unaccounted(&self) -> i128 {
        self.offered as i128 - self.processed as i128 - self.lost as i128 - self.shed() as i128
    }

    /// Delivered fraction of offered load, in parts per million.
    pub fn goodput_ppm(&self) -> u64 {
        (self.out * 1_000_000)
            .checked_div(self.offered)
            .unwrap_or(1_000_000)
    }
}

/// One breaker/churn/recovery event, journaled for audits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantEvent {
    /// Tick the event fired on.
    pub tick: u64,
    /// Tenant index it concerns.
    pub tenant: usize,
    /// What happened.
    pub kind: TenantEventKind,
}

/// The event alphabet of the tenant supervision journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantEventKind {
    /// Strikes crossed the throttle threshold.
    Throttled {
        /// Strike count at the transition.
        strikes: u32,
    },
    /// Strikes crossed the open threshold; blast contained.
    Opened {
        /// Strike count at the transition.
        strikes: u32,
    },
    /// Open timer expired; probing with a restored chain.
    HalfOpened,
    /// Probes passed; back to full admission.
    Closed,
    /// A half-open probe faulted; straight back to open.
    Reopened,
    /// The chain was rebuilt after a fault.
    Respawned {
        /// Whether a snapshot restore succeeded.
        warm: bool,
        /// State items the restored chain came back with.
        items: u64,
    },
    /// The tenant was removed (drained, then steered around).
    Removed {
        /// Maglev entries the rebuild remapped.
        remapped_entries: usize,
    },
    /// The tenant was re-added under a fresh epoch.
    Added {
        /// The new epoch.
        epoch: u64,
        /// Maglev entries the rebuild remapped.
        remapped_entries: usize,
    },
}

/// One Maglev rebuild triggered by churn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebuildRecord {
    /// Tick the rebuild ran on.
    pub tick: u64,
    /// `"remove"` or `"add"`.
    pub action: &'static str,
    /// Tenant index that churned.
    pub tenant: usize,
    /// Table entries that changed owner.
    pub remapped_entries: usize,
}

/// Final per-tenant outcome in a [`TenantReport`].
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// Tenant name.
    pub name: String,
    /// Shedding priority.
    pub priority: u8,
    /// The exact conservation ledger.
    pub ledger: TenantLedger,
    /// Breaker phase at shutdown.
    pub final_phase: BreakerPhase,
    /// Epoch at shutdown (number of times re-added).
    pub epoch: u64,
    /// Domain faults absorbed.
    pub faults: u64,
    /// Chain rebuilds after faults or half-open probes.
    pub respawns: u64,
    /// Times the breaker opened.
    pub opens: u64,
    /// Times the breaker throttled.
    pub throttles: u64,
    /// Respawns that restored from a verified snapshot.
    pub warm_restores: u64,
    /// Respawns that fell back to a cold build.
    pub cold_restores: u64,
    /// Total state items recovered across warm restores.
    pub state_items_restored: u64,
    /// Live state items in the chain at shutdown (0 if no chain).
    pub final_state_items: u64,
    /// Snapshots sealed in the current epoch.
    pub snapshots_taken: u64,
    /// p99 queue delay over executed batches, in ticks.
    pub p99_delay_ticks: u64,
    /// Worst queue delay, in ticks.
    pub max_delay_ticks: u64,
    /// Batches the tenant's chain executed.
    pub batches_executed: u64,
}

/// What one lane of a threaded tenant runtime hosted and executed —
/// placement made observable. Residency is decided by the deterministic
/// weighted placement policy; the executed/steal counters describe what
/// the lane's CPU actually did and are scheduling-dependent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneOccupancy {
    /// Lane index.
    pub lane: usize,
    /// Tenant indices resident on this lane at shutdown (home placement,
    /// deterministic).
    pub residents: Vec<usize>,
    /// Batches this lane's thread executed (resident + stolen).
    pub executed_batches: u64,
    /// Packets this lane's thread executed.
    pub executed_packets: u64,
    /// Work items this lane stole from other lanes' deques.
    pub steals_in: u64,
    /// Wire bytes charged as `Crossing::Steal` for those thefts.
    pub steal_bytes: u64,
    /// Per origin tenant: work items this lane stole from it
    /// (`(tenant, items)`, only non-zero entries, tenant-ordered).
    pub stolen_from: Vec<(usize, u64)>,
    /// Times this lane stole a band while a higher-priority band still
    /// had queued work anywhere. The banded steal sweep makes this
    /// structurally zero; the counter is the audit.
    pub priority_inversions: u64,
}

/// Everything a finished [`TenantRuntime`] observed.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Per-tenant outcomes, in tenant index order.
    pub tenants: Vec<TenantOutcome>,
    /// Deepest queue (in batches) each lane ever reached.
    pub lane_depth_hwm: Vec<usize>,
    /// Batches shed by the lane high-water mark.
    pub hwm_sheds: u64,
    /// Every Maglev rebuild, in order.
    pub rebuilds: Vec<RebuildRecord>,
    /// The full supervision journal.
    pub events: Vec<TenantEvent>,
    /// Ticks the runtime ran (including the drain at finish).
    pub ticks: u64,
    /// Per-lane placement and steal observability. Populated by the
    /// threaded [`TenantLaneRuntime`](crate::tenant_lanes::TenantLaneRuntime);
    /// empty on the single-threaded reference runtime.
    pub occupancy: Vec<LaneOccupancy>,
}

impl TenantReport {
    /// Total packets offered across tenants.
    pub fn offered(&self) -> u64 {
        self.tenants.iter().map(|t| t.ledger.offered).sum()
    }

    /// Total packets delivered across tenants.
    pub fn out(&self) -> u64 {
        self.tenants.iter().map(|t| t.ledger.out).sum()
    }

    /// Sum of per-tenant conservation residues; zero iff every ledger
    /// balances.
    pub fn unaccounted_packets(&self) -> i128 {
        self.tenants.iter().map(|t| t.ledger.unaccounted()).sum()
    }

    /// Priority inversions observed across all lanes (see
    /// [`LaneOccupancy::priority_inversions`]); must be zero.
    pub fn priority_inversions(&self) -> u64 {
        self.occupancy.iter().map(|l| l.priority_inversions).sum()
    }

    /// Work items stolen across lanes, fleet-wide.
    pub fn steals(&self) -> u64 {
        self.occupancy.iter().map(|l| l.steals_in).sum()
    }
}

/// A batch queued on a lane, stamped with enough identity to audit it.
struct QueuedWork {
    tenant: usize,
    epoch: u64,
    batch: PacketBatch,
    enqueue_tick: u64,
    cost: u64,
}

/// One tenant's live chain: a protection domain and the pipeline that
/// runs inside it.
struct TenantChain {
    domain: Domain,
    pipeline: Pipeline,
}

/// Mutable per-tenant supervision state.
struct TenantState {
    spec: TenantSpec,
    present: bool,
    phase: BreakerPhase,
    epoch: u64,
    strikes: u32,
    open_until: u64,
    probes_left: u64,
    bucket: TickBucket,
    ledger: TenantLedger,
    occurrence: u64,
    faults: u64,
    respawns: u64,
    opens: u64,
    throttles: u64,
    warm_restores: u64,
    cold_restores: u64,
    state_items_restored: u64,
    snapshots_taken: u64,
    delays: Vec<u64>,
    batches_executed: u64,
}

/// Multi-tenant lane runtime with per-tenant breakers and admission.
///
/// Single-threaded and tick-clocked: callers alternate [`offer`]
/// (steer + admit one wave of traffic) and [`step`] (execute one tick of
/// lane capacity, run breaker timers and the snapshot cadence). All
/// state advances in tenant-index order, so a fixed offered trace
/// produces a byte-identical report.
///
/// [`offer`]: TenantRuntime::offer
/// [`step`]: TenantRuntime::step
pub struct TenantRuntime {
    manager: DomainManager,
    tenants: Vec<TenantState>,
    chains: Vec<Option<TenantChain>>,
    specs: Vec<PipelineSpec>,
    stores: Vec<SnapshotStore>,
    factory: TenantChainFactory,
    table: MaglevTable,
    /// Table backend position → tenant index (absent tenants skipped).
    table_map: Vec<usize>,
    /// Permanent staging buffers for [`offer`](TenantRuntime::offer),
    /// indexed `lane * tenants + tenant`. Draining (not replacing) them
    /// keeps their capacity, so a warmed-up offer path allocates only
    /// the queued batches themselves — never per packet.
    staged: Vec<Vec<rbs_netfx::Packet>>,
    /// Maglev lookups actually performed; with run-batched steering this
    /// counts flow runs, not packets.
    steering_lookups: u64,
    lane_queues: Vec<VecDeque<QueuedWork>>,
    lane_debt: Vec<u64>,
    lane_depth_hwm: Vec<usize>,
    hwm_sheds: u64,
    events: Vec<TenantEvent>,
    rebuilds: Vec<RebuildRecord>,
    now: u64,
    lanes: usize,
    table_size: usize,
    lane_capacity: u64,
    queue_hwm: usize,
    policy: BreakerPolicy,
    work_budget: u64,
    snapshot_every: u64,
    snapshot_full_every: u32,
    #[cfg(feature = "fault-injection")]
    faults: Option<Arc<FaultPlan>>,
}

impl TenantRuntime {
    /// Builds the runtime: one domain + cold chain per tenant, the
    /// initial Maglev table over the full population, and fresh
    /// admission buckets.
    pub fn new(config: TenantConfig) -> Result<Self, TenantError> {
        if config.tenants.is_empty() {
            return Err(TenantError::BadConfig("no tenants"));
        }
        if config.lanes == 0 {
            return Err(TenantError::BadConfig("zero lanes"));
        }
        if config.lane_capacity == 0 {
            return Err(TenantError::BadConfig("zero lane capacity"));
        }
        if config.tenants.iter().any(|t| t.burst == 0) {
            return Err(TenantError::BadConfig("zero admission burst"));
        }
        let factory: TenantChainFactory = config
            .chain
            .clone()
            .unwrap_or_else(|| Arc::new(default_tenant_chain));
        let manager = DomainManager::with_backend_kind(config.backend);

        let mut tenants = Vec::with_capacity(config.tenants.len());
        let mut chains = Vec::with_capacity(config.tenants.len());
        let mut specs = Vec::with_capacity(config.tenants.len());
        let mut stores = Vec::with_capacity(config.tenants.len());
        for (idx, spec) in config.tenants.iter().enumerate() {
            let pipeline_spec = factory(idx, spec);
            let domain = manager
                .create_domain(format!("tenant-{}-e0-g0", spec.name))
                .expect("tenant domain");
            let pipeline = pipeline_spec.build();
            chains.push(Some(TenantChain { domain, pipeline }));
            specs.push(pipeline_spec);
            stores.push(SnapshotStore::new(config.snapshot_full_every));
            tenants.push(TenantState {
                bucket: TickBucket::new(spec.rate_per_tick, spec.burst),
                spec: spec.clone(),
                present: true,
                phase: BreakerPhase::Running,
                epoch: 0,
                strikes: 0,
                open_until: 0,
                probes_left: 0,
                ledger: TenantLedger::default(),
                occurrence: 0,
                faults: 0,
                respawns: 0,
                opens: 0,
                throttles: 0,
                warm_restores: 0,
                cold_restores: 0,
                state_items_restored: 0,
                snapshots_taken: 0,
                delays: Vec::new(),
                batches_executed: 0,
            });
        }

        let backends: Vec<Backend> = config
            .tenants
            .iter()
            .map(|t| Backend::weighted(t.name.clone(), t.weight))
            .collect();
        let table = MaglevTable::new(backends, config.table_size)?;
        let table_map = (0..config.tenants.len()).collect();

        Ok(Self {
            manager,
            tenants,
            chains,
            specs,
            stores,
            factory,
            table,
            table_map,
            staged: (0..config.lanes * config.tenants.len())
                .map(|_| Vec::new())
                .collect(),
            steering_lookups: 0,
            lane_queues: (0..config.lanes).map(|_| VecDeque::new()).collect(),
            lane_debt: vec![0; config.lanes],
            lane_depth_hwm: vec![0; config.lanes],
            hwm_sheds: 0,
            events: Vec::new(),
            rebuilds: Vec::new(),
            now: 0,
            lanes: config.lanes,
            table_size: config.table_size,
            lane_capacity: config.lane_capacity,
            queue_hwm: config.queue_hwm,
            policy: config.breaker,
            work_budget: config.work_budget_per_tick,
            snapshot_every: config.snapshot_every_ticks,
            snapshot_full_every: config.snapshot_full_every,
            #[cfg(feature = "fault-injection")]
            faults: config.faults,
        })
    }

    /// The current logical tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The live steering table.
    pub fn table(&self) -> &MaglevTable {
        &self.table
    }

    /// A tenant's breaker phase.
    pub fn phase(&self, idx: usize) -> BreakerPhase {
        self.tenants[idx].phase
    }

    /// A tenant's conservation ledger so far.
    pub fn ledger(&self, idx: usize) -> TenantLedger {
        self.tenants[idx].ledger
    }

    /// A tenant's epoch (times re-added).
    pub fn epoch(&self, idx: usize) -> u64 {
        self.tenants[idx].epoch
    }

    /// Whether the tenant is currently present in the steering table.
    pub fn is_present(&self, idx: usize) -> bool {
        self.tenants[idx].present
    }

    /// Snapshots sealed in the tenant's current epoch.
    pub fn snapshots_taken(&self, idx: usize) -> u64 {
        self.tenants[idx].snapshots_taken
    }

    /// Live state items in the tenant's chain, measured inside its
    /// domain (0 if the chain is down).
    pub fn state_items(&self, idx: usize) -> u64 {
        match &self.chains[idx] {
            Some(chain) => chain
                .domain
                .execute(|| chain.pipeline.state_items())
                .unwrap_or(0),
            None => 0,
        }
    }

    /// Steers one wave of traffic: Maglev lookup → ledger attribution →
    /// breaker gate → admission bucket → lane queue, then applies the
    /// per-lane high-water mark.
    ///
    /// Steering is run-batched: consecutive packets with the same cached
    /// flow hash resolve the Maglev table once, so a flow's packet train
    /// costs one lookup. Together with the permanent staging buffers
    /// this makes the warmed-up offer path alloc-free per packet (one
    /// exact-capacity allocation per queued *batch*, never per packet) —
    /// `steering_is_alloc_free_per_packet` in rbs-bench audits this with
    /// the counting allocator.
    pub fn offer(&mut self, batch: PacketBatch) {
        let now = self.now;
        let tcount = self.tenants.len();
        let mut last_hash = 0u64;
        let mut last_idx = usize::MAX;

        for p in batch.into_packets() {
            let hash = p.cached_flow_hash().unwrap_or_else(|| packet_flow_hash(&p));
            let idx = if last_idx != usize::MAX && hash == last_hash {
                last_idx
            } else {
                self.steering_lookups += 1;
                last_hash = hash;
                last_idx = self.table_map[self.table.lookup(hash)];
                last_idx
            };
            let lane = (hash as usize) % self.lanes;
            let t = &mut self.tenants[idx];
            t.ledger.offered += 1;
            if t.phase == BreakerPhase::Open {
                t.ledger.shed_open += 1;
                continue;
            }
            if t.bucket.take(now, 1) == 0 {
                t.ledger.shed_admission += 1;
                continue;
            }
            self.staged[lane * tcount + idx].push(p);
        }

        for lane in 0..self.lanes {
            for idx in 0..tcount {
                let cell = lane * tcount + idx;
                if self.staged[cell].is_empty() {
                    continue;
                }
                let mut pkts = Vec::with_capacity(self.staged[cell].len());
                pkts.append(&mut self.staged[cell]);
                let cost = (pkts.len() as u64) * self.tenants[idx].spec.cost_per_packet.max(1);
                self.lane_queues[lane].push_back(QueuedWork {
                    tenant: idx,
                    epoch: self.tenants[idx].epoch,
                    batch: PacketBatch::from_packets(pkts),
                    enqueue_tick: now,
                    cost,
                });
            }
            self.lane_depth_hwm[lane] = self.lane_depth_hwm[lane].max(self.lane_queues[lane].len());
            self.apply_hwm(lane);
        }
    }

    /// Maglev lookups performed so far. With run-batched steering this
    /// advances once per flow run, not once per packet.
    pub fn steering_lookups(&self) -> u64 {
        self.steering_lookups
    }

    /// Sheds lowest-priority queued work (newest first within a
    /// priority) until the lane is back under its high-water mark.
    fn apply_hwm(&mut self, lane: usize) {
        while self.lane_queues[lane].len() > self.queue_hwm {
            let mut victim = 0usize;
            let mut victim_prio = u8::MAX;
            for (i, work) in self.lane_queues[lane].iter().enumerate() {
                let prio = self.tenants[work.tenant].spec.priority;
                if prio <= victim_prio {
                    victim_prio = prio;
                    victim = i;
                }
            }
            let work = self.lane_queues[lane].remove(victim).expect("victim index");
            self.tenants[work.tenant].ledger.shed_backpressure += work.batch.len() as u64;
            self.hwm_sheds += 1;
        }
    }

    /// Executes one tick: each lane spends its capacity on queued work
    /// (oversized batches carry debt forward), work-budget overruns
    /// strike, open breakers half-open on expiry, and the snapshot
    /// cadence seals warm-recovery state. Advances the clock.
    pub fn step(&mut self) {
        let now = self.now;
        let mut work_this_tick = vec![0u64; self.tenants.len()];

        for lane in 0..self.lanes {
            let pay = self.lane_debt[lane].min(self.lane_capacity);
            self.lane_debt[lane] -= pay;
            let mut available = self.lane_capacity - pay;
            while available > 0 {
                let Some(work) = self.lane_queues[lane].pop_front() else {
                    break;
                };
                if work.cost > available {
                    self.lane_debt[lane] += work.cost - available;
                    available = 0;
                } else {
                    available -= work.cost;
                }
                work_this_tick[work.tenant] += work.cost;
                self.execute_work(work, now);
            }
        }

        if self.work_budget > 0 {
            for (idx, &spent) in work_this_tick.iter().enumerate() {
                let t = &self.tenants[idx];
                if t.present && t.phase != BreakerPhase::Open && spent > self.work_budget {
                    self.strike(idx, now);
                }
            }
        }

        for idx in 0..self.tenants.len() {
            let t = &self.tenants[idx];
            if t.present && t.phase == BreakerPhase::Open && now >= t.open_until {
                self.half_open(idx, now);
            }
        }

        if self.snapshot_every > 0 && (now + 1).is_multiple_of(self.snapshot_every) {
            self.snapshot_all(now);
        }

        self.now = now + 1;
    }

    /// Runs one queued batch through its tenant's chain inside the
    /// tenant's domain, with the fault plan consulted per batch.
    fn execute_work(&mut self, work: QueuedWork, now: u64) {
        let idx = work.tenant;
        let n_in = work.batch.len() as u64;
        {
            let t = &mut self.tenants[idx];
            // Stale work can only exist if removal failed to drain or the
            // breaker opened with work still queued; account, never run.
            if !t.present || work.epoch != t.epoch {
                t.ledger.shed_removed += n_in;
                return;
            }
            if t.phase == BreakerPhase::Open {
                t.ledger.shed_open += n_in;
                return;
            }
            t.delays.push(now - work.enqueue_tick);
            t.batches_executed += 1;
        }
        let fire = self.fault_decision(idx);
        let chain = self.chains[idx].as_mut().expect("live tenant has a chain");
        let pipeline = &mut chain.pipeline;
        let batch = work.batch;
        let result = chain.domain.execute(move || {
            if let Some(kind) = fire {
                match kind {
                    FaultKind::Panic | FaultKind::PoisonTable | FaultKind::CloseChannel => {
                        fault::fire_panic(FaultSite::Operator(0))
                    }
                    sleepy => fault::fire_sleep(sleepy),
                }
            }
            pipeline.run_batch(batch)
        });
        match result {
            Ok(out) => {
                let t = &mut self.tenants[idx];
                t.ledger.processed += n_in;
                t.ledger.out += out.len() as u64;
                t.ledger.drops += n_in - out.len() as u64;
                if t.phase == BreakerPhase::HalfOpen {
                    t.probes_left = t.probes_left.saturating_sub(1);
                    if t.probes_left == 0 {
                        self.close(idx, now);
                    }
                }
            }
            Err(_) => {
                // The batch moved into the domain and died with it.
                let t = &mut self.tenants[idx];
                t.ledger.lost += n_in;
                t.faults += 1;
                self.strike(idx, now);
                if self.tenants[idx].phase != BreakerPhase::Open {
                    self.respawn(idx, now);
                }
            }
        }
    }

    /// Consults the fault plan for this tenant's next executed batch.
    /// The occurrence counter advances regardless of the feature, so a
    /// tenant's chaos stream position is stable across builds.
    fn fault_decision(&mut self, idx: usize) -> Option<FaultKind> {
        let t = &mut self.tenants[idx];
        let occurrence = t.occurrence;
        t.occurrence += 1;
        #[cfg(feature = "fault-injection")]
        if let Some(plan) = self.faults.as_ref() {
            return plan.decide(FaultSite::Operator(0), idx as u64, occurrence);
        }
        let _ = occurrence;
        None
    }

    /// One strike: throttle or open per the policy thresholds. A strike
    /// in half-open reopens immediately — the probe failed.
    fn strike(&mut self, idx: usize, now: u64) {
        let (phase, strikes) = {
            let t = &mut self.tenants[idx];
            t.strikes += 1;
            (t.phase, t.strikes)
        };
        match phase {
            BreakerPhase::HalfOpen => self.open(idx, now, true),
            BreakerPhase::Running | BreakerPhase::Throttled => {
                if strikes >= self.policy.open_after_strikes {
                    self.open(idx, now, false);
                } else if phase == BreakerPhase::Running
                    && strikes >= self.policy.throttle_after_strikes
                {
                    let t = &mut self.tenants[idx];
                    t.phase = BreakerPhase::Throttled;
                    t.throttles += 1;
                    let throttled = (t.spec.rate_per_tick / self.policy.throttle_divisor).max(1);
                    t.bucket.set_rate(throttled);
                    self.events.push(TenantEvent {
                        tick: now,
                        tenant: idx,
                        kind: TenantEventKind::Throttled { strikes },
                    });
                }
            }
            BreakerPhase::Open => {}
        }
    }

    /// Opens the breaker: destroy the domain, shed the tenant's queued
    /// work everywhere, refuse its ingress until the timer expires.
    fn open(&mut self, idx: usize, now: u64, reopen: bool) {
        let strikes = {
            let t = &mut self.tenants[idx];
            t.phase = BreakerPhase::Open;
            t.open_until = now + self.policy.open_ticks;
            t.opens += 1;
            t.strikes
        };
        if let Some(chain) = self.chains[idx].take() {
            self.manager.destroy_domain(&chain.domain);
        }
        let mut shed = 0u64;
        for queue in &mut self.lane_queues {
            queue.retain(|work| {
                if work.tenant == idx {
                    shed += work.batch.len() as u64;
                    false
                } else {
                    true
                }
            });
        }
        self.tenants[idx].ledger.shed_open += shed;
        self.events.push(TenantEvent {
            tick: now,
            tenant: idx,
            kind: if reopen {
                TenantEventKind::Reopened
            } else {
                TenantEventKind::Opened { strikes }
            },
        });
    }

    /// Open timer expired: rebuild the chain (warm if a snapshot
    /// verifies) and probe at the throttled admission rate.
    fn half_open(&mut self, idx: usize, now: u64) {
        {
            let t = &mut self.tenants[idx];
            t.phase = BreakerPhase::HalfOpen;
            t.probes_left = self.policy.half_open_probes.max(1);
            let throttled = (t.spec.rate_per_tick / self.policy.throttle_divisor).max(1);
            t.bucket.set_rate(throttled);
        }
        self.events.push(TenantEvent {
            tick: now,
            tenant: idx,
            kind: TenantEventKind::HalfOpened,
        });
        self.respawn(idx, now);
    }

    /// Probes passed: full admission restored, strikes forgiven.
    fn close(&mut self, idx: usize, now: u64) {
        let t = &mut self.tenants[idx];
        t.phase = BreakerPhase::Running;
        t.strikes = 0;
        let rate = t.spec.rate_per_tick;
        t.bucket.set_rate(rate);
        self.events.push(TenantEvent {
            tick: now,
            tenant: idx,
            kind: TenantEventKind::Closed,
        });
    }

    /// Rebuilds the tenant's chain in a fresh domain, restoring from the
    /// latest verified snapshot (then the previous; then cold).
    fn respawn(&mut self, idx: usize, now: u64) {
        if let Some(chain) = self.chains[idx].take() {
            self.manager.destroy_domain(&chain.domain);
        }
        let generation = {
            let t = &mut self.tenants[idx];
            t.respawns += 1;
            t.respawns
        };
        let name = format!(
            "tenant-{}-e{}-g{}",
            self.tenants[idx].spec.name, self.tenants[idx].epoch, generation
        );
        let domain = self.manager.create_domain(name).expect("tenant domain");
        let spec = &self.specs[idx];
        let store = &self.stores[idx];
        let mut pipeline: Option<Pipeline> = None;
        for sealed in [store.latest(), store.previous()].into_iter().flatten() {
            if let Ok(cp) = sealed.open() {
                if let Ok(p) = spec.build_with_state(&cp) {
                    pipeline = Some(p);
                    break;
                }
            }
        }
        let (pipeline, warm) = match pipeline {
            Some(p) => (p, true),
            None => (spec.build(), false),
        };
        let items = pipeline.state_items();
        {
            let t = &mut self.tenants[idx];
            if warm {
                t.warm_restores += 1;
                t.state_items_restored += items;
            } else {
                t.cold_restores += 1;
            }
        }
        self.chains[idx] = Some(TenantChain { domain, pipeline });
        self.events.push(TenantEvent {
            tick: now,
            tenant: idx,
            kind: TenantEventKind::Respawned { warm, items },
        });
    }

    /// Seals a snapshot of every live chain, measured inside its domain.
    fn snapshot_all(&mut self, now: u64) {
        for idx in 0..self.tenants.len() {
            if !self.tenants[idx].present || self.tenants[idx].phase == BreakerPhase::Open {
                continue;
            }
            let Some(chain) = &self.chains[idx] else {
                continue;
            };
            let Ok((cp, items)) = chain
                .domain
                .execute(|| (chain.pipeline.export_state(), chain.pipeline.state_items()))
            else {
                continue;
            };
            let schema = self.specs[idx].state_schema();
            self.stores[idx].record(&cp, now, items, schema);
            self.tenants[idx].snapshots_taken += 1;
        }
    }

    /// Removes a tenant: drains its queued work at control-plane speed
    /// (chaos still applies), destroys its chain and snapshot store, and
    /// rebuilds the steering table around it. Returns the remapped entry
    /// count.
    pub fn remove_tenant(&mut self, idx: usize) -> Result<usize, TenantError> {
        if idx >= self.tenants.len() {
            return Err(TenantError::UnknownTenant(idx));
        }
        if !self.tenants[idx].present {
            return Err(TenantError::NotPresent(idx));
        }
        if self.tenants.iter().filter(|t| t.present).count() < 2 {
            return Err(TenantError::LastTenant);
        }
        let now = self.now;
        // Graceful drain: the tenant's queued batches run to completion
        // before the chain goes away (faults during the drain are
        // handled exactly like data-path faults).
        for lane in 0..self.lanes {
            loop {
                let pos = self.lane_queues[lane].iter().position(|w| w.tenant == idx);
                let Some(pos) = pos else { break };
                let work = self.lane_queues[lane].remove(pos).expect("drain index");
                self.execute_work(work, now);
            }
        }
        if let Some(chain) = self.chains[idx].take() {
            self.manager.destroy_domain(&chain.domain);
        }
        {
            let t = &mut self.tenants[idx];
            t.present = false;
            t.phase = BreakerPhase::Running;
            t.strikes = 0;
            t.snapshots_taken = 0;
        }
        // Epoch keying: the departed epoch's snapshots can never serve a
        // future incarnation of this tenant.
        self.stores[idx] = SnapshotStore::new(self.snapshot_full_every);
        let remapped = self.rebuild_table()?;
        self.rebuilds.push(RebuildRecord {
            tick: now,
            action: "remove",
            tenant: idx,
            remapped_entries: remapped,
        });
        self.events.push(TenantEvent {
            tick: now,
            tenant: idx,
            kind: TenantEventKind::Removed {
                remapped_entries: remapped,
            },
        });
        Ok(remapped)
    }

    /// Re-adds a removed tenant under a fresh epoch: cold chain, empty
    /// snapshot store, full-rate admission, and a table rebuild that
    /// hands back its old entries. Returns the remapped entry count.
    pub fn add_tenant(&mut self, idx: usize) -> Result<usize, TenantError> {
        if idx >= self.tenants.len() {
            return Err(TenantError::UnknownTenant(idx));
        }
        if self.tenants[idx].present {
            return Err(TenantError::AlreadyPresent(idx));
        }
        let now = self.now;
        let epoch = {
            let t = &mut self.tenants[idx];
            t.epoch += 1;
            t.present = true;
            t.phase = BreakerPhase::Running;
            t.strikes = 0;
            t.probes_left = 0;
            t.bucket = TickBucket::new(t.spec.rate_per_tick, t.spec.burst);
            t.epoch
        };
        self.specs[idx] = (self.factory)(idx, &self.tenants[idx].spec);
        let domain = self
            .manager
            .create_domain(format!(
                "tenant-{}-e{}-g0",
                self.tenants[idx].spec.name, epoch
            ))
            .expect("tenant domain");
        let pipeline = self.specs[idx].build();
        self.chains[idx] = Some(TenantChain { domain, pipeline });
        self.stores[idx] = SnapshotStore::new(self.snapshot_full_every);
        let remapped = self.rebuild_table()?;
        self.rebuilds.push(RebuildRecord {
            tick: now,
            action: "add",
            tenant: idx,
            remapped_entries: remapped,
        });
        self.events.push(TenantEvent {
            tick: now,
            tenant: idx,
            kind: TenantEventKind::Added {
                epoch,
                remapped_entries: remapped,
            },
        });
        Ok(remapped)
    }

    /// Rebuilds the Maglev table over the present tenants and counts the
    /// entries that changed owner.
    fn rebuild_table(&mut self) -> Result<usize, TenantError> {
        let mut backends = Vec::new();
        let mut map = Vec::new();
        for (i, t) in self.tenants.iter().enumerate() {
            if t.present {
                backends.push(Backend::weighted(t.spec.name.clone(), t.spec.weight));
                map.push(i);
            }
        }
        let table = MaglevTable::new(backends, self.table_size)?;
        let remapped = self.table.disrupted_entries(&table);
        self.table = table;
        self.table_map = map;
        Ok(remapped)
    }

    /// Drains every lane to empty (stepping the clock), destroys all
    /// domains, and returns the final report.
    pub fn finish(mut self) -> TenantReport {
        let mut guard = 0u32;
        while self.lane_queues.iter().any(|q| !q.is_empty()) {
            self.step();
            guard += 1;
            assert!(guard < 1_000_000, "tenant runtime failed to drain");
        }
        let mut outcomes = Vec::with_capacity(self.tenants.len());
        for idx in 0..self.tenants.len() {
            let final_state_items = self.state_items(idx);
            let t = &mut self.tenants[idx];
            t.delays.sort_unstable();
            let p99 = if t.delays.is_empty() {
                0
            } else {
                t.delays[(t.delays.len() - 1) * 99 / 100]
            };
            let max = t.delays.last().copied().unwrap_or(0);
            outcomes.push(TenantOutcome {
                name: t.spec.name.clone(),
                priority: t.spec.priority,
                ledger: t.ledger,
                final_phase: t.phase,
                epoch: t.epoch,
                faults: t.faults,
                respawns: t.respawns,
                opens: t.opens,
                throttles: t.throttles,
                warm_restores: t.warm_restores,
                cold_restores: t.cold_restores,
                state_items_restored: t.state_items_restored,
                final_state_items,
                snapshots_taken: t.snapshots_taken,
                p99_delay_ticks: p99,
                max_delay_ticks: max,
                batches_executed: t.batches_executed,
            });
        }
        for chain in self.chains.iter().flatten() {
            self.manager.destroy_domain(&chain.domain);
        }
        self.chains.clear();
        TenantReport {
            tenants: outcomes,
            lane_depth_hwm: self.lane_depth_hwm.clone(),
            hwm_sheds: self.hwm_sheds,
            rebuilds: self.rebuilds.clone(),
            events: self.events.clone(),
            ticks: self.now,
            occupancy: Vec::new(),
        }
    }
}

impl Drop for TenantRuntime {
    fn drop(&mut self) {
        for chain in self.chains.iter().flatten() {
            self.manager.destroy_domain(&chain.domain);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbs_netfx::headers::ethernet::MacAddr;
    use rbs_netfx::Packet;
    use std::net::Ipv4Addr;

    fn http_packet(src_host: u8, sport: u16) -> Packet {
        let mut p = Packet::build_udp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(10, 0, 0, src_host),
            Ipv4Addr::new(192, 0, 2, 1),
            sport,
            80,
            16,
        );
        let hash = packet_flow_hash(&p);
        p.set_cached_flow_hash(hash);
        p
    }

    fn wave(round: u16, count: u16) -> PacketBatch {
        (0..count)
            .map(|i| http_packet((i % 8) as u8 + 1, 1_000 + round * count + i))
            .collect()
    }

    fn two_tenants() -> TenantConfig {
        TenantConfig {
            tenants: vec![
                TenantSpec::new("alpha").priority(2).rate(500, 1_000),
                TenantSpec::new("beta").priority(1).rate(500, 1_000),
            ],
            lanes: 2,
            table_size: 251,
            lane_capacity: 1_024,
            queue_hwm: 16,
            ..TenantConfig::default()
        }
    }

    #[test]
    fn traffic_is_conserved_per_tenant() {
        let mut rt = TenantRuntime::new(two_tenants()).unwrap();
        for round in 0..20 {
            rt.offer(wave(round, 64));
            rt.step();
        }
        let report = rt.finish();
        assert_eq!(report.offered(), 20 * 64);
        assert_eq!(report.unaccounted_packets(), 0);
        for t in &report.tenants {
            assert_eq!(t.ledger.unaccounted(), 0, "{} leaks", t.name);
            assert!(t.ledger.offered > 0, "{} starved by steering", t.name);
            assert_eq!(t.ledger.lost, 0);
            assert_eq!(t.final_phase, BreakerPhase::Running);
        }
    }

    #[test]
    fn steering_is_deterministic() {
        let run = || {
            let mut rt = TenantRuntime::new(two_tenants()).unwrap();
            for round in 0..10 {
                rt.offer(wave(round, 48));
                rt.step();
            }
            let r = rt.finish();
            r.tenants
                .iter()
                .map(|t| (t.ledger.offered, t.ledger.out))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn admission_bucket_sheds_the_overflow_exactly() {
        let mut config = two_tenants();
        for t in &mut config.tenants {
            t.rate_per_tick = 10;
            t.burst = 10;
        }
        let mut rt = TenantRuntime::new(config).unwrap();
        rt.offer(wave(0, 200));
        rt.step();
        let report = rt.finish();
        // Each bucket starts full at 10 tokens; everything else sheds.
        let admitted: u64 = report.tenants.iter().map(|t| t.ledger.processed).sum();
        let shed: u64 = report.tenants.iter().map(|t| t.ledger.shed_admission).sum();
        assert_eq!(admitted, 20);
        assert_eq!(shed, 180);
        assert_eq!(report.unaccounted_packets(), 0);
    }

    #[test]
    fn hwm_sheds_lowest_priority_first() {
        let mut config = two_tenants();
        config.lanes = 1;
        config.queue_hwm = 3;
        config.lane_capacity = 1; // nothing drains during the pile-up
        let mut rt = TenantRuntime::new(config).unwrap();
        for round in 0..3 {
            rt.offer(wave(round, 32));
        }
        // Only low-priority beta was shed by the high-water mark.
        let beta = rt.ledger(1);
        assert!(beta.shed_backpressure > 0, "beta never shed");
        let alpha = rt.ledger(0);
        assert_eq!(alpha.shed_backpressure, 0, "high-priority alpha shed");
        drop(rt);
    }

    #[test]
    fn churn_rebuild_is_bounded_and_reversible() {
        let mut config = two_tenants();
        config.tenants.push(TenantSpec::new("gamma"));
        config.tenants.push(TenantSpec::new("delta"));
        let mut rt = TenantRuntime::new(config).unwrap();
        rt.offer(wave(0, 64));
        rt.step();

        let remapped = rt.remove_tenant(3).unwrap();
        assert!(remapped >= 251 / 5, "removal must move the victim's share");
        assert!(!rt.is_present(3));
        let back = rt.add_tenant(3).unwrap();
        assert_eq!(
            remapped, back,
            "re-adding under the same name reverses the rebuild exactly"
        );
        assert_eq!(rt.epoch(3), 1);
        assert_eq!(rt.state_items(3), 0, "fresh epoch must start stateless");
        assert_eq!(rt.snapshots_taken(3), 0);

        rt.offer(wave(1, 64));
        rt.step();
        let report = rt.finish();
        assert_eq!(report.unaccounted_packets(), 0);
        assert_eq!(report.rebuilds.len(), 2);
    }

    #[test]
    fn removing_the_last_tenant_is_refused() {
        let mut config = two_tenants();
        config.tenants.truncate(1);
        let mut rt = TenantRuntime::new(config).unwrap();
        assert!(matches!(rt.remove_tenant(0), Err(TenantError::LastTenant)));
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn fault_loop_opens_the_breaker_and_spares_the_victim() {
        std::panic::set_hook(Box::new(|_| {}));
        let mut config = two_tenants();
        // Tenant 1 (beta) panics on every executed batch.
        config.faults = Some(Arc::new(rbs_core::fault::FaultPlan::new(7).inject_window(
            FaultSite::Operator(0),
            FaultKind::Panic,
            1,
            0,
            u64::MAX,
        )));
        let mut rt = TenantRuntime::new(config).unwrap();
        for round in 0..30 {
            rt.offer(wave(round, 64));
            rt.step();
        }
        assert_eq!(rt.phase(1), BreakerPhase::Open);
        let report = rt.finish();
        let alpha = &report.tenants[0];
        let beta = &report.tenants[1];
        assert_eq!(alpha.ledger.lost, 0, "victim lost packets to beta's loop");
        assert_eq!(alpha.ledger.goodput_ppm(), 1_000_000);
        assert!(beta.opens >= 1, "breaker never opened");
        assert!(beta.ledger.shed_open > 0, "open breaker never shed");
        assert_eq!(report.unaccounted_packets(), 0);
        let _ = std::panic::take_hook();
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn half_open_probe_closes_after_a_transient_loop() {
        std::panic::set_hook(Box::new(|_| {}));
        let mut config = two_tenants();
        config.breaker.open_ticks = 4;
        config.snapshot_every_ticks = 2;
        // Beta panics on its first 6 executed batches, then runs clean.
        config.faults = Some(Arc::new(rbs_core::fault::FaultPlan::new(7).inject_window(
            FaultSite::Operator(0),
            FaultKind::Panic,
            1,
            0,
            6,
        )));
        let mut rt = TenantRuntime::new(config).unwrap();
        for round in 0..60 {
            rt.offer(wave(round, 64));
            rt.step();
        }
        assert_eq!(
            rt.phase(1),
            BreakerPhase::Running,
            "breaker should close after clean probes"
        );
        let report = rt.finish();
        let beta = &report.tenants[1];
        assert!(beta.opens >= 1);
        assert!(
            report
                .events
                .iter()
                .any(|e| e.kind == TenantEventKind::Closed),
            "no close event journaled"
        );
        assert!(beta.warm_restores >= 1, "probe chain never warm-restored");
        assert_eq!(report.unaccounted_packets(), 0);
        let _ = std::panic::take_hook();
    }
}
