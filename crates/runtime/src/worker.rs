//! The worker thread: one domain, one pipeline, one input queue.

use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;
use rbs_checkpoint::{Checkpoint, SnapshotStore};
use rbs_core::fault::{self, FaultKind, FaultPlan, FaultSite};
use rbs_netfx::{PacketBatch, PipelineSpec};
use rbs_sfi::channel::channel_metered;
use rbs_sfi::recycle::RecycleSender;
use rbs_sfi::{Domain, DomainSender};

use crate::stats::WorkerStats;

/// What the dispatcher feeds a worker.
pub enum WorkItem {
    /// A batch of packets belonging to this worker's shard.
    Batch(PacketBatch),
    /// Export the pipeline's live state into the slot's snapshot store,
    /// stamped with the supervision tick the request was issued on.
    Snapshot {
        /// Logical tick of the requesting supervision pass.
        tick: u64,
    },
    /// Orderly stop: finish the queue drained so far and exit. When
    /// `snapshot_tick` is set, take one final snapshot first so the
    /// store's newest entry equals the pipeline's last live state.
    Shutdown {
        /// Tick to stamp the final snapshot with, or `None` to skip it
        /// (snapshotting disabled).
        snapshot_tick: Option<u64>,
    },
}

impl WorkItem {
    /// Payload bytes this item carries across the worker's domain
    /// boundary — what a charging isolation backend bills per hand-off.
    /// Control items (snapshot/shutdown) carry none.
    fn boundary_bytes(&self) -> usize {
        match self {
            WorkItem::Batch(batch) => batch.total_bytes(),
            WorkItem::Snapshot { .. } | WorkItem::Shutdown { .. } => 0,
        }
    }
}

/// Spawns a worker thread dedicated to `domain`.
///
/// The channel is registered in the domain's reference table, so a fault
/// revokes it automatically; `stats` is shared with (and outlives) the
/// thread. `spawn_seq` is this slot's spawn count (0 for the initial
/// spawn), used as the occurrence for attach-site fault injection and as
/// the generation tag in heartbeat tokens. When `faults` is set, the
/// thread installs it as its ambient plan (stream = shard index) so
/// in-pipeline chaos points fire on schedule.
///
/// `store` is the slot's double-buffered snapshot store, shared with the
/// supervisor (which restores from it at heal time). `initial_state` is
/// a verified checkpoint of the dead generation's pipeline: the worker
/// injects it into its freshly built pipeline (warm recovery), falling
/// back to a cold pipeline — with the failure counted — if the shapes
/// no longer match.
///
/// When `recycle` is set, the worker gives every completed output batch
/// back through it instead of dropping it, so the driver's buffer pool
/// can reuse the packet memory. The give happens *before* the batch is
/// recorded as processed: once the runtime's accounting says a batch
/// completed, its buffers are already in the recycle queue, so a settled
/// drain implies every recyclable buffer is reclaimable.
///
/// Returns the dispatcher-side sender and the join handle.
#[expect(
    clippy::too_many_arguments,
    reason = "internal constructor mirroring the slot's full wiring"
)]
pub(crate) fn spawn_worker(
    index: usize,
    spawn_seq: u64,
    domain: Domain,
    spec: PipelineSpec,
    stats: Arc<WorkerStats>,
    queue_capacity: usize,
    faults: Option<Arc<FaultPlan>>,
    store: Arc<Mutex<SnapshotStore>>,
    initial_state: Option<Arc<Checkpoint>>,
    recycle: Option<RecycleSender<PacketBatch>>,
) -> (DomainSender<WorkItem>, JoinHandle<()>) {
    let (tx, rx) = channel_metered::<WorkItem>(&domain, queue_capacity, WorkItem::boundary_bytes);
    // Attach-site injection, decided *synchronously* on the spawning
    // (supervisor) thread: a scripted window here produces a
    // deterministic crash loop — spawn number `spawn_seq` dies before
    // taking any work, and the supervisor observes the fault on the same
    // tick it respawned, independent of thread scheduling.
    let attach_fault = faults
        .as_ref()
        .and_then(|plan| plan.decide(FaultSite::DomainAttach, index as u64, spawn_seq));
    if let Some(FaultKind::Panic | FaultKind::PoisonTable | FaultKind::CloseChannel) = attach_fault
    {
        let _ = domain.execute(|| fault::fire_panic(FaultSite::DomainAttach));
        stats.record_fault();
        // Keep the caller's contract: hand back a (revoked) sender and a
        // joinable no-op thread standing in for the stillborn worker.
        let handle = std::thread::Builder::new()
            .name(format!("rbs-worker-{index}-stillborn"))
            .spawn(|| {})
            .expect("spawning worker thread");
        return (tx, handle);
    }
    let handle = std::thread::Builder::new()
        .name(format!("rbs-worker-{index}"))
        .spawn(move || {
            // Dedicate the thread to the domain: per-batch `execute`
            // calls then run as self-calls and skip policy
            // interposition. Fails only when the supervisor raced a
            // destroy; exiting is the correct response.
            let Ok(_attachment) = domain.attach_thread() else {
                return;
            };
            // A scheduled slow attach (cold start) delays the worker
            // without killing it.
            if let Some(sleep) = attach_fault {
                fault::fire_sleep(sleep);
            }
            let work = move || {
                let mut pipeline = match initial_state {
                    Some(cp) => match spec.build_with_state(&cp) {
                        Ok(p) => p,
                        Err(_) => {
                            // The snapshot verified but no longer fits
                            // this spec (e.g. the pipeline shape
                            // changed). Never half-apply: count it and
                            // start cold.
                            stats.record_import_failure();
                            spec.build()
                        }
                    },
                    None => spec.build(),
                };
                stats.set_state_items(pipeline.state_items());
                // Records one snapshot, inside the domain so an injected
                // encode fault unwinds to the boundary like any pipeline
                // panic. The store seals before committing, so a fault
                // mid-encode leaves both buffers intact.
                let schema = spec.state_schema();
                let take_snapshot = |pipeline: &rbs_netfx::Pipeline, tick: u64| {
                    let cp = pipeline.export_state();
                    let items = pipeline.state_items();
                    store.lock().record(&cp, tick, items, schema);
                };
                loop {
                    match rx.recv() {
                        Ok(WorkItem::Batch(batch)) => {
                            let n_in = batch.len() as u64;
                            // Depth *behind* this batch: +1 counts the
                            // batch just dequeued, so a full queue reads
                            // as `queue_capacity`, not capacity - 1.
                            stats.record_queue_depth(rx.len() as u64 + 1);
                            // Heartbeat up while the batch executes; the
                            // watchdog reads this to tell hung from idle.
                            let token = stats.mark_busy(spawn_seq);
                            let start = rbs_core::cycles::rdtsc();
                            // The batch moves into the domain; a panic
                            // anywhere in the stages unwinds to this
                            // boundary, faults the domain (closing `rx`'s
                            // channel), and is reported as an error here.
                            match domain.execute(|| pipeline.run_batch(batch)) {
                                Ok(out) => {
                                    let cycles = rbs_core::cycles::rdtsc().saturating_sub(start);
                                    let n_out = out.len() as u64;
                                    // Give before recording: `record_batch`
                                    // is what lets the runtime's drain
                                    // settle, so the buffers must already
                                    // be in the recycle queue by then.
                                    match &recycle {
                                        Some(path) => stats.record_recycle(path.give(out)),
                                        None => drop(out),
                                    }
                                    stats.record_batch(n_in, n_out, cycles);
                                    stats.set_state_items(pipeline.state_items());
                                    stats.mark_idle(token);
                                }
                                Err(_) => {
                                    // The in-flight batch died with the
                                    // fault; the supervisor accounts it (and
                                    // anything still queued) as lost when it
                                    // heals this slot.
                                    stats.mark_idle(token);
                                    stats.record_fault();
                                    return;
                                }
                            }
                        }
                        Ok(WorkItem::Snapshot { tick }) => {
                            let token = stats.mark_busy(spawn_seq);
                            match domain.execute(|| take_snapshot(&pipeline, tick)) {
                                Ok(()) => stats.mark_idle(token),
                                Err(_) => {
                                    // An encode fault kills the worker
                                    // like a batch fault — but no batch
                                    // was in flight, so batch accounting
                                    // is untouched.
                                    stats.mark_idle(token);
                                    stats.record_fault();
                                    return;
                                }
                            }
                        }
                        Ok(WorkItem::Shutdown { snapshot_tick }) => {
                            if let Some(tick) = snapshot_tick {
                                // Best-effort final snapshot: an encode
                                // fault here only costs the freshness of
                                // the last buffered entry.
                                if domain.execute(|| take_snapshot(&pipeline, tick)).is_err() {
                                    stats.record_fault();
                                }
                            }
                            // Clean exit: preserve the pipeline's per-stage
                            // counters for the final report.
                            let stages = pipeline
                                .stage_names()
                                .iter()
                                .map(|n| (*n).to_owned())
                                .zip(pipeline.stage_stats().iter().copied())
                                .collect();
                            stats.store_final_stages(stages);
                            return;
                        }
                        Err(_) => {
                            let stages = pipeline
                                .stage_names()
                                .iter()
                                .map(|n| (*n).to_owned())
                                .zip(pipeline.stage_stats().iter().copied())
                                .collect();
                            stats.store_final_stages(stages);
                            return;
                        }
                    }
                }
            };
            match faults {
                Some(plan) => fault::scoped_stream(plan, index as u64, work),
                None => work(),
            }
        })
        .expect("spawning worker thread");
    (tx, handle)
}
