//! The worker thread: one domain, one pipeline, one input queue.

use std::sync::Arc;
use std::thread::JoinHandle;

use rbs_netfx::{PacketBatch, PipelineSpec};
use rbs_sfi::channel::channel;
use rbs_sfi::{Domain, DomainSender};

use crate::stats::WorkerStats;

/// What the dispatcher feeds a worker.
pub enum WorkItem {
    /// A batch of packets belonging to this worker's shard.
    Batch(PacketBatch),
    /// Orderly stop: finish the queue drained so far and exit.
    Shutdown,
}

/// Spawns a worker thread dedicated to `domain`.
///
/// The channel is registered in the domain's reference table, so a fault
/// revokes it automatically; `stats` is shared with (and outlives) the
/// thread. Returns the dispatcher-side sender and the join handle.
pub(crate) fn spawn_worker(
    index: usize,
    domain: Domain,
    spec: PipelineSpec,
    stats: Arc<WorkerStats>,
    queue_capacity: usize,
) -> (DomainSender<WorkItem>, JoinHandle<()>) {
    let (tx, rx) = channel::<WorkItem>(&domain, queue_capacity);
    let handle = std::thread::Builder::new()
        .name(format!("rbs-worker-{index}"))
        .spawn(move || {
            // Dedicate the thread to the domain: per-batch `execute`
            // calls then run as self-calls and skip policy
            // interposition. Fails only when the supervisor raced a
            // destroy; exiting is the correct response.
            let Ok(_attachment) = domain.attach_thread() else {
                return;
            };
            let mut pipeline = spec.build();
            loop {
                match rx.recv() {
                    Ok(WorkItem::Batch(batch)) => {
                        let n_in = batch.len() as u64;
                        let start = rbs_core::cycles::rdtsc();
                        // The batch moves into the domain; a panic
                        // anywhere in the stages unwinds to this
                        // boundary, faults the domain (closing `rx`'s
                        // channel), and is reported as an error here.
                        match domain.execute(|| pipeline.run_batch(batch)) {
                            Ok(out) => {
                                let cycles = rbs_core::cycles::rdtsc().saturating_sub(start);
                                stats.record_batch(n_in, out.len() as u64, cycles);
                                drop(out);
                            }
                            Err(_) => {
                                // The in-flight batch died with the
                                // fault; the supervisor accounts it (and
                                // anything still queued) as lost when it
                                // heals this slot.
                                stats.record_fault();
                                return;
                            }
                        }
                    }
                    Ok(WorkItem::Shutdown) | Err(_) => {
                        // Clean exit: preserve the pipeline's per-stage
                        // counters for the final report.
                        let stages = pipeline
                            .stage_names()
                            .iter()
                            .map(|n| (*n).to_owned())
                            .zip(pipeline.stage_stats().iter().copied())
                            .collect();
                        stats.store_final_stages(stages);
                        return;
                    }
                }
            }
        })
        .expect("spawning worker thread");
    (tx, handle)
}
