//! Chase–Lev work-stealing deque.
//!
//! One owner thread pushes and pops work at the *bottom*; any number of
//! thief threads steal from the *top*. The implementation follows the
//! C11 formulation of Lê, Pop, Cohen & Zappa Nardelli, "Correct and
//! Efficient Work-Stealing for Weak Memory Models" (PPoPP 2013): the
//! owner's `pop` publishes its claim on the bottom slot with a seq-cst
//! fence before reading `top`, and thieves claim the top slot with a
//! seq-cst compare-exchange, so for each index exactly one side wins.
//!
//! Two deliberate simplifications versus a general-purpose deque:
//!
//! - **Retired buffers are kept until the deque drops.** When the owner
//!   grows the ring it swaps in a doubled buffer and parks the old one
//!   instead of freeing it, so a thief that loaded the stale buffer
//!   pointer still reads valid memory; its subsequent claim on `top`
//!   fails (the owner's copy already advanced past it) and the stale
//!   read is discarded. Lanes size the ring to their burst up front, so
//!   in steady state nothing grows and nothing is parked.
//! - **A `closed` latch for live upgrades.** A lane entering `Upgrading`
//!   stops advertising its deque: thieves see [`Steal::Closed`] and move
//!   on, while the owner keeps full access. Closing is advisory — it
//!   never races with item ownership, which only the `top`/`bottom`
//!   protocol decides.
//!
//! The owner handle is `Send` but not `Sync`/`Clone` (single owner, like
//! the pool); [`Stealer`] handles are cheap clones shared with every
//! other lane.

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicIsize, AtomicPtr, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Smallest ring the deque will allocate.
const MIN_CAPACITY: usize = 8;

/// A fixed-capacity power-of-two ring of `MaybeUninit` slots.
///
/// Slots are bitwise copies managed entirely by the `top`/`bottom`
/// protocol; the buffer itself never drops items (the deque does, once,
/// at drop time, for the live range of the *current* buffer only).
struct Buffer<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
}

impl<T> Buffer<T> {
    fn alloc(capacity: usize) -> *mut Buffer<T> {
        debug_assert!(capacity.is_power_of_two());
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::into_raw(Box::new(Buffer {
            slots,
            mask: capacity - 1,
        }))
    }

    fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Bitwise-writes `value` into the slot for logical index `i`.
    ///
    /// # Safety
    ///
    /// Caller must hold the owner role and `i` must be outside the live
    /// `top..bottom` range (it becomes live only when `bottom` is
    /// published afterwards).
    unsafe fn write(&self, i: isize, value: T) {
        let slot = self.slots[(i as usize) & self.mask].get();
        slot.write(MaybeUninit::new(value));
    }

    /// Bitwise-reads the slot for logical index `i`.
    ///
    /// # Safety
    ///
    /// The copy duplicates ownership: the caller must either win the
    /// `top`/`bottom` claim for `i` or `mem::forget` the result.
    unsafe fn read(&self, i: isize) -> T {
        let slot = self.slots[(i as usize) & self.mask].get();
        slot.read().assume_init()
    }
}

struct Inner<T> {
    /// Next index thieves claim. Only ever increments.
    top: AtomicIsize,
    /// One past the owner's last pushed index.
    bottom: AtomicIsize,
    /// Current ring; swapped (never mutated in place) on grow.
    buffer: AtomicPtr<Buffer<T>>,
    /// Rings replaced by grow, parked until drop so stale thief loads
    /// stay backed by live memory.
    retired: Mutex<Vec<*mut Buffer<T>>>,
    /// Steal-advertising latch (see module docs).
    closed: AtomicBool,
}

unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Sole reference left: plain loads are fine.
        let top = self.top.load(Ordering::Relaxed);
        let bottom = self.bottom.load(Ordering::Relaxed);
        let buf = self.buffer.load(Ordering::Relaxed);
        unsafe {
            for i in top..bottom {
                drop((*buf).read(i));
            }
            drop(Box::from_raw(buf));
            for &old in self.retired.lock().iter() {
                // Retired rings hold only stale bitwise copies; their
                // live items were re-homed by grow. Free the memory
                // without dropping any slot.
                drop(Box::from_raw(old));
            }
        }
    }
}

/// Result of a [`Stealer::steal`] attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// Claimed the top item.
    Taken(T),
    /// The deque was observably empty.
    Empty,
    /// Lost a race (another thief or the owner claimed the item);
    /// retrying immediately may succeed.
    Retry,
    /// The owner has closed the deque to thieves (e.g. mid-upgrade).
    Closed,
}

/// The owner-side handle: push/pop at the bottom, plus the
/// steal-advertising latch. Single-owner by construction.
pub struct LaneDeque<T> {
    inner: Arc<Inner<T>>,
    /// !Sync: the owner role is a single-thread contract.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

unsafe impl<T: Send> Send for LaneDeque<T> {}

/// A thief-side handle; clone one per stealing lane.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> fmt::Debug for LaneDeque<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LaneDeque")
            .field("len", &self.len())
            .finish()
    }
}

impl<T> fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stealer").finish()
    }
}

impl<T> LaneDeque<T> {
    /// Creates a deque whose initial ring holds at least `capacity`
    /// items without growing (rounded up to a power of two).
    pub fn with_capacity(capacity: usize) -> (LaneDeque<T>, Stealer<T>) {
        let cap = capacity.max(MIN_CAPACITY).next_power_of_two();
        let inner = Arc::new(Inner {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Buffer::alloc(cap)),
            retired: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
        });
        (
            LaneDeque {
                inner: Arc::clone(&inner),
                _not_sync: PhantomData,
            },
            Stealer { inner },
        )
    }

    /// Pushes `value` at the bottom. Grows (doubling) when full.
    pub fn push(&self, value: T) {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Acquire);
        let mut buf = self.inner.buffer.load(Ordering::Relaxed);
        unsafe {
            if b - t >= (*buf).capacity() as isize {
                buf = self.grow(buf, t, b);
            }
            (*buf).write(b, value);
        }
        self.inner.bottom.store(b + 1, Ordering::Release);
    }

    /// Pops from the bottom (LIFO relative to the owner's pushes).
    pub fn pop(&self) -> Option<T> {
        let b = self.inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.inner.buffer.load(Ordering::Relaxed);
        self.inner.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.inner.top.load(Ordering::Relaxed);
        if t > b {
            // Already empty; restore bottom.
            self.inner.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        if t < b {
            // More than one item: the bottom slot is uncontended.
            return Some(unsafe { (*buf).read(b) });
        }
        // Exactly one item: race thieves for it via `top`.
        let won = self
            .inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok();
        self.inner.bottom.store(b + 1, Ordering::Relaxed);
        if won {
            // Thieves can no longer touch index t: safe to read after
            // the claim.
            Some(unsafe { (*buf).read(b) })
        } else {
            None
        }
    }

    /// Number of queued items as the owner sees it.
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// True when the owner sees no queued items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stops advertising the deque to thieves: steals return
    /// [`Steal::Closed`] until [`open_steals`](Self::open_steals).
    pub fn close_steals(&self) {
        self.inner.closed.store(true, Ordering::Release);
    }

    /// Re-advertises the deque to thieves.
    pub fn open_steals(&self) {
        self.inner.closed.store(false, Ordering::Release);
    }

    /// Doubles the ring, copying the live `t..b` range across, and
    /// parks the old ring. Owner-only.
    unsafe fn grow(&self, old: *mut Buffer<T>, t: isize, b: isize) -> *mut Buffer<T> {
        let new = Buffer::alloc((*old).capacity() * 2);
        for i in t..b {
            let slot = (*old).slots[(i as usize) & (*old).mask].get();
            (*new).write(i, slot.read().assume_init());
        }
        self.inner.buffer.store(new, Ordering::Release);
        self.inner.retired.lock().push(old);
        new
    }
}

impl<T> Stealer<T> {
    /// Attempts to claim the top item.
    pub fn steal(&self) -> Steal<T> {
        if self.inner.closed.load(Ordering::Acquire) {
            return Steal::Closed;
        }
        let t = self.inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.inner.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let buf = self.inner.buffer.load(Ordering::Acquire);
        // Speculative copy: only the winner of the `top` claim keeps it.
        let value = unsafe { (*buf).read(t) };
        if self
            .inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Taken(value)
        } else {
            std::mem::forget(value);
            Steal::Retry
        }
    }

    /// Snapshot of the queued-item count (may be stale immediately).
    pub fn len(&self) -> usize {
        let t = self.inner.top.load(Ordering::Acquire);
        let b = self.inner.bottom.load(Ordering::Acquire);
        (b - t).max(0) as usize
    }

    /// True when the deque looks empty right now. Items may appear or
    /// vanish immediately after; termination protocols must pair this
    /// with their own quiescence condition.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True while the owner has the deque closed to thieves.
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn owner_lifo_fifo_shape() {
        let (d, s) = LaneDeque::with_capacity(4);
        for i in 0..4 {
            d.push(i);
        }
        // Owner pops newest first…
        assert_eq!(d.pop(), Some(3));
        // …thieves take oldest first.
        assert_eq!(s.steal(), Steal::Taken(0));
        assert_eq!(s.steal(), Steal::Taken(1));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let (d, _s) = LaneDeque::with_capacity(MIN_CAPACITY);
        for i in 0..1000 {
            d.push(i);
        }
        assert_eq!(d.len(), 1000);
        for i in (0..1000).rev() {
            assert_eq!(d.pop(), Some(i));
        }
        assert!(d.is_empty());
    }

    #[test]
    fn closed_latch_gates_thieves_not_owner() {
        let (d, s) = LaneDeque::with_capacity(8);
        d.push(1);
        d.close_steals();
        assert_eq!(s.steal(), Steal::Closed);
        assert!(s.is_closed());
        assert_eq!(d.pop(), Some(1));
        d.push(2);
        d.open_steals();
        assert_eq!(s.steal(), Steal::Taken(2));
    }

    #[test]
    fn drop_releases_queued_items() {
        struct Counted<'a>(&'a AtomicUsize);
        impl Drop for Counted<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = AtomicUsize::new(0);
        {
            let (d, _s) = LaneDeque::with_capacity(4);
            for _ in 0..10 {
                d.push(Counted(&drops)); // forces a grow, exercising retired rings
            }
            drop(d.pop()); // 1 explicit
        }
        assert_eq!(drops.load(Ordering::Relaxed), 10);
    }

    /// Every pushed item is claimed exactly once across a racing owner
    /// and multiple thieves — the property the lane engine's packet
    /// conservation rests on.
    #[test]
    fn concurrent_claims_are_exactly_once() {
        const ITEMS: usize = 20_000;
        const THIEVES: usize = 3;
        let (d, s) = LaneDeque::with_capacity(16);
        let stealers: Vec<_> = (0..THIEVES).map(|_| s.clone()).collect();
        let done = Arc::new(AtomicBool::new(false));

        let handles: Vec<_> = stealers
            .into_iter()
            .map(|st| {
                let done = Arc::clone(&done);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match st.steal() {
                            Steal::Taken(v) => got.push(v),
                            Steal::Retry => {}
                            Steal::Empty | Steal::Closed => {
                                if done.load(Ordering::Acquire) && st.is_empty() {
                                    break;
                                }
                                thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();

        let mut owner_got = Vec::new();
        for i in 0..ITEMS {
            d.push(i);
            if i % 3 == 0 {
                if let Some(v) = d.pop() {
                    owner_got.push(v);
                }
            }
        }
        while let Some(v) = d.pop() {
            owner_got.push(v);
        }
        done.store(true, Ordering::Release);

        let mut all: Vec<usize> = owner_got;
        for h in handles {
            all.extend(h.join().unwrap());
        }
        assert_eq!(all.len(), ITEMS, "lost or duplicated items");
        let distinct: HashSet<usize> = all.iter().copied().collect();
        assert_eq!(distinct.len(), ITEMS, "duplicated items");
    }
}
