//! rbs-runtime: a sharded multi-worker pipeline runtime with per-domain
//! fault isolation.
//!
//! This crate composes the rest of the workspace into the paper's
//! end-state: many packet-processing workers on one machine, each running
//! an untrusted network function pipeline inside a software fault
//! isolation domain, where a crash in one worker is invisible to the
//! others.
//!
//! Layout:
//!
//! - [`shard`] — RSS-style stable flow→worker mapping.
//! - [`worker`] — the worker thread: one [`rbs_sfi::Domain`], one
//!   [`rbs_netfx::Pipeline`] built from a [`rbs_netfx::PipelineSpec`],
//!   one bounded input queue.
//! - [`runtime`] — the [`ShardedRuntime`] dispatcher/supervisor:
//!   flow-hashes batches to workers, observes faults via
//!   [`rbs_sfi::DomainState`], recovers the domain, respawns the worker.
//! - [`supervisor`] — restart budgets, exponential backoff with
//!   deterministic jitter, the per-worker circuit breaker, and the
//!   supervisor event journal.
//! - [`stats`] — cumulative per-worker counters that survive respawns,
//!   plus the merged [`RuntimeReport`].
//! - [`upgrade`] — zero-downtime rolling reconfiguration: the policy
//!   knobs, typed rejection, and per-upgrade outcome records for
//!   [`ShardedRuntime::upgrade_pipeline`](runtime::ShardedRuntime::upgrade_pipeline).
//! - [`deque`] — the Chase–Lev work-stealing deque lanes trade work
//!   through.
//! - [`lane`] — the run-to-completion lane engine: N ingress lanes,
//!   each generating, processing, and recycling its own RSS slice with
//!   no central dispatcher, stealing across lanes when idle
//!   ([`LaneRuntime`](lane::LaneRuntime)).
//!
//! With the `fault-injection` feature, a seeded
//! [`rbs_core::FaultPlan`](rbs_core::fault::FaultPlan) can be installed
//! via [`RuntimeConfig`] to inject deterministic panics, hangs, torn
//! channels, and delays at named sites — the substrate of the chaos
//! experiment.
//!
//! ```
//! use rbs_netfx::{Operator, PacketBatch, PipelineSpec};
//! use rbs_runtime::{RuntimeConfig, ShardedRuntime};
//!
//! struct Nop;
//! impl Operator for Nop {
//!     fn name(&self) -> &str {
//!         "nop"
//!     }
//!     fn process(&mut self, batch: PacketBatch) -> PacketBatch {
//!         batch
//!     }
//! }
//!
//! let spec = PipelineSpec::new().stage(|| Nop);
//! let mut rt = ShardedRuntime::new(
//!     spec,
//!     RuntimeConfig {
//!         workers: 2,
//!         queue_capacity: 8,
//!         ..RuntimeConfig::default()
//!     },
//! )
//! .unwrap();
//! rt.dispatch(PacketBatch::new()).unwrap();
//! let report = rt.shutdown();
//! assert_eq!(report.faults, 0);
//! ```

pub mod deque;
pub mod lane;
pub mod runtime;
pub mod shard;
pub mod stats;
pub mod supervisor;
pub mod tenant;
pub mod tenant_lanes;
pub mod upgrade;
pub mod worker;

pub use deque::{LaneDeque, Steal, Stealer};
pub use lane::{
    LaneConfig, LaneEvent, LaneLedgerSnapshot, LaneOutcome, LaneReport, LaneRuntime,
    LaneUpgradeError, LaneUpgradeOutcome, VictimOrder,
};
pub use rbs_checkpoint::{Buffered, SnapshotMeta};
pub use rbs_sfi::backend::{BackendKind, BackendTotals};
pub use runtime::{RuntimeConfig, RuntimeError, ShardedRuntime};
pub use shard::{shard_for, shard_of_packet, shard_of_packet_mut};
pub use stats::{RuntimeReport, WorkerSnapshot, WorkerStats};
pub use supervisor::{BreakerState, RestartPolicy, SupervisorEvent, SupervisorEventKind};
pub use tenant::{
    default_tenant_chain, BreakerPhase, BreakerPolicy, LaneOccupancy, RebuildRecord,
    TenantChainFactory, TenantConfig, TenantError, TenantEvent, TenantEventKind, TenantLedger,
    TenantOutcome, TenantReport, TenantRuntime, TenantSpec,
};
pub use tenant_lanes::{TenantLaneConfig, TenantLaneRuntime};
pub use upgrade::{UpgradeError, UpgradeOutcome, UpgradePolicy};
pub use worker::WorkItem;
