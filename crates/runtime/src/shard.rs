//! RSS-style flow-to-worker shard mapping.
//!
//! Hardware NICs spread flows across receive queues by hashing the
//! packet 5-tuple (receive-side scaling); the dispatcher does the same in
//! software. The map must be *stable* — every packet of a flow lands on
//! the same worker, so per-flow operator state (NAT bindings, rate
//! limiter buckets) never needs cross-worker sharing — and *total* —
//! packets the 5-tuple extractor rejects still deterministically belong
//! somewhere.

use rbs_netfx::flow::{packet_flow_hash, FiveTuple};
use rbs_netfx::Packet;

/// Maps a flow to one of `n_workers` shards via the tuple's stable hash.
///
/// # Panics
///
/// Panics when `n_workers` is zero.
pub fn shard_for(tuple: &FiveTuple, n_workers: usize) -> usize {
    assert!(n_workers > 0, "need at least one worker");
    (tuple.stable_hash() % n_workers as u64) as usize
}

/// Maps any packet to a shard: the 5-tuple hash when one is extractable,
/// otherwise a stable hash of the raw frame (so ICMP and friends are
/// spread too, and identical frames stay together).
///
/// Always recomputes from the bytes — this is the reference mapping that
/// [`shard_of_packet_mut`] must agree with.
pub fn shard_of_packet(packet: &Packet, n_workers: usize) -> usize {
    assert!(n_workers > 0, "need at least one worker");
    (packet_flow_hash(packet) % n_workers as u64) as usize
}

/// Like [`shard_of_packet`], but serves from the packet's cached flow
/// hash when present (stamping it otherwise) — the dispatcher fast path.
///
/// Agreement with the reference mapping is structural: the cache is
/// invalidated by every mutable view, so a present tag is always the
/// hash of the current bytes.
///
/// # Panics
///
/// Panics when `n_workers` is zero.
pub fn shard_of_packet_mut(packet: &mut Packet, n_workers: usize) -> usize {
    assert!(n_workers > 0, "need at least one worker");
    (packet.flow_hash() % n_workers as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbs_netfx::headers::ethernet::MacAddr;
    use std::net::Ipv4Addr;

    fn udp(src_port: u16, dst_port: u16) -> Packet {
        Packet::build_udp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            src_port,
            dst_port,
            16,
        )
    }

    #[test]
    fn packet_and_tuple_shard_agree() {
        for sp in [1000u16, 2000, 3000] {
            let p = udp(sp, 80);
            let t = FiveTuple::of(&p).unwrap();
            assert_eq!(shard_of_packet(&p, 4), shard_for(&t, 4));
        }
    }

    #[test]
    fn non_flow_packets_still_shard() {
        let p = Packet::build_icmp_echo(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            rbs_netfx::headers::icmp::IcmpType::EchoRequest,
            1,
            1,
            8,
        );
        let s = shard_of_packet(&p, 4);
        assert!(s < 4);
        assert_eq!(s, shard_of_packet(&p, 4), "raw-bytes fallback is stable");
    }

    #[test]
    fn cached_and_reference_mapping_agree() {
        for sp in 1000..1050u16 {
            let mut p = udp(sp, 80);
            let reference = shard_of_packet(&p, 4);
            assert_eq!(shard_of_packet_mut(&mut p, 4), reference, "first access");
            assert_eq!(shard_of_packet_mut(&mut p, 4), reference, "cached access");
            // A pktgen-style pre-stamped hash gives the same answer.
            assert_eq!(shard_of_packet(&p, 4), reference);
        }
    }

    #[test]
    fn many_flows_hit_every_worker() {
        let mut seen = [false; 4];
        for sp in 1000..1100u16 {
            seen[shard_of_packet(&udp(sp, 80), 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "100 flows should cover 4 shards");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let p = udp(1, 2);
        shard_of_packet(&p, 0);
    }
}
