//! Live pipeline upgrade: policy knobs, typed rejection, and the
//! outcome record.
//!
//! A rolling upgrade walks the fleet one worker at a time — pause
//! ingress, drain the queued tail, snapshot, tear down the old domain,
//! spawn the new spec in a fresh one, restore (migrating state across a
//! schema change when the policy carries a capable
//! [`StateMigrator`]), resume. At most one shard of capacity is out at
//! any moment; its packets ride the existing degradation machinery
//! (redistribute to a healthy peer, shed with accounting as a last
//! resort), so conservation `offered == packets_in + lost + shed` holds
//! through the window and a compatible upgrade loses exactly zero
//! packets.
//!
//! Failures mid-upgrade (chaos kills at the
//! [`UpgradeQuiesce`](rbs_core::fault::FaultSite::UpgradeQuiesce) /
//! [`UpgradeRestore`](rbs_core::fault::FaultSite::UpgradeRestore) sites,
//! or a drain that blows its deadline) reverse direction: workers that
//! already upgraded are swapped back to the old spec and restored from
//! their latest snapshots. The fleet always ends uniform — all on the
//! new spec or all on the old one, never mixed.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use rbs_checkpoint::StateMigrator;

/// Knobs for one [`upgrade_pipeline`](crate::ShardedRuntime::upgrade_pipeline)
/// call.
#[derive(Clone)]
pub struct UpgradePolicy {
    /// Wall-clock bound on one worker's post-pause queue drain. A worker
    /// that has not exited by the deadline is force-failed (its thread
    /// abandoned as a zombie) and the upgrade rolls back. Logical ticks
    /// don't work here: the drain happens *between* ticks, on the
    /// worker's own thread.
    pub drain_deadline: Duration,
    /// Carries snapshots across a state-schema change. `None` means only
    /// same-schema upgrades are compatible; a schema-changing upgrade
    /// whose pair the migrator cannot handle is rejected up front with
    /// [`UpgradeError::IncompatibleSchema`] before any worker is
    /// touched.
    pub migrator: Option<Arc<dyn StateMigrator>>,
}

impl Default for UpgradePolicy {
    fn default() -> Self {
        Self {
            drain_deadline: Duration::from_secs(5),
            migrator: None,
        }
    }
}

impl UpgradePolicy {
    /// Sets the migrator that carries state across a schema change.
    #[must_use]
    pub fn with_migrator(mut self, migrator: Arc<dyn StateMigrator>) -> Self {
        self.migrator = Some(migrator);
        self
    }

    /// Sets the wall-clock bound on one worker's post-pause drain.
    #[must_use]
    pub fn with_drain_deadline(mut self, deadline: Duration) -> Self {
        self.drain_deadline = deadline;
        self
    }
}

impl fmt::Debug for UpgradePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UpgradePolicy")
            .field("drain_deadline", &self.drain_deadline)
            .field("migrator", &self.migrator.is_some())
            .finish()
    }
}

/// Why an upgrade was rejected before any worker was touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpgradeError {
    /// Another upgrade is still walking the fleet.
    InProgress,
    /// The specs' state schemas differ and the policy's migrator (if
    /// any) cannot carry state across the pair. Rejected up front: no
    /// worker is paused, no packet is put at risk.
    IncompatibleSchema {
        /// Running spec's state schema.
        from: u32,
        /// Target spec's state schema.
        to: u32,
    },
}

impl fmt::Display for UpgradeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpgradeError::InProgress => write!(f, "an upgrade is already in progress"),
            UpgradeError::IncompatibleSchema { from, to } => write!(
                f,
                "no migrator can carry state from schema {from} to schema {to}"
            ),
        }
    }
}

impl std::error::Error for UpgradeError {}

/// How a finished upgrade ended — the per-upgrade accounting record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpgradeOutcome {
    /// Every worker runs the target spec.
    Committed {
        /// Workers upgraded.
        workers: usize,
        /// Total supervision ticks worker ingress was paused, summed
        /// over the fleet.
        pause_ticks: u64,
        /// Packets drained from paused queues (processed by the old
        /// generations after their ingress stopped — not lost).
        drained_packets: u64,
        /// State items carried across a schema change by the migrator.
        state_items_migrated: u64,
        /// Tick the upgrade was accepted on.
        started_tick: u64,
        /// Tick the final worker committed on.
        finished_tick: u64,
    },
    /// A mid-upgrade failure reversed direction; every worker runs the
    /// old spec again, restored from its latest snapshot.
    RolledBack {
        /// Worker whose quiesce or restore failed.
        failed_worker: usize,
        /// Workers swapped back to the old spec (including the failed
        /// one).
        workers_rolled_back: usize,
        /// Total supervision ticks worker ingress was paused.
        pause_ticks: u64,
        /// Packets drained from paused queues before the abort.
        drained_packets: u64,
        /// Tick the upgrade was accepted on.
        started_tick: u64,
        /// Tick the rollback completed on.
        finished_tick: u64,
    },
}

impl UpgradeOutcome {
    /// True when the fleet ended on the target spec.
    pub fn committed(&self) -> bool {
        matches!(self, UpgradeOutcome::Committed { .. })
    }

    /// Stable short name (used in reports and JSON).
    pub fn name(&self) -> &'static str {
        match self {
            UpgradeOutcome::Committed { .. } => "committed",
            UpgradeOutcome::RolledBack { .. } => "rolled-back",
        }
    }
}

/// Which way the walk is going.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UpgradeDirection {
    /// Walking workers onto the target spec.
    Forward,
    /// A failure at `failed_worker` reversed the walk: already-upgraded
    /// workers are being returned to the old spec.
    Rollback {
        /// Worker whose quiesce or restore failed.
        failed_worker: usize,
    },
}

/// The in-flight quiesce of one worker.
#[derive(Debug)]
pub(crate) struct Quiesce {
    /// Worker being quiesced.
    pub worker: usize,
    /// Tick its ingress paused (the pause spans `paused_tick` →
    /// completion tick).
    pub paused_tick: u64,
    /// `WorkerStats::packets_in()` at pause: packets processed beyond
    /// this are the drained tail.
    pub packets_at_pause: u64,
    /// Whether the shutdown control item reached the worker's queue. A
    /// send that timed out (queue full against a wedged worker) is
    /// retried next tick before the drain deadline applies.
    pub shutdown_sent: bool,
}

/// One upgrade's full walk state, owned by the runtime while in flight.
pub(crate) struct UpgradeRun {
    /// Spec the fleet is moving to.
    pub target: rbs_netfx::PipelineSpec,
    /// Spec the fleet is moving from (restored on rollback).
    pub old: rbs_netfx::PipelineSpec,
    /// Policy the call was made with.
    pub policy: UpgradePolicy,
    /// Forward, or rolling back after a failure.
    pub direction: UpgradeDirection,
    /// Workers still to walk (front is next).
    pub queue: std::collections::VecDeque<usize>,
    /// Workers already walked in the current direction.
    pub done: Vec<usize>,
    /// The worker currently quiescing, if any.
    pub active: Option<Quiesce>,
    /// The next quiesce target's `packets_in()` captured at the start
    /// of its pause tick — before routing — so the drained-tail
    /// accounting replays exactly in lockstep harnesses.
    pub staged_packets_at_pause: Option<u64>,
    /// Tick the upgrade was accepted on.
    pub started_tick: u64,
    /// Running total of pause ticks across the fleet.
    pub pause_ticks: u64,
    /// Running total of packets drained from paused queues.
    pub drained_packets: u64,
    /// Running total of state items migrated across the schema change.
    pub items_migrated: u64,
}
