//! The sharded runtime: dispatcher, worker slots, and supervision.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rbs_checkpoint::{Buffered, Checkpoint, SnapshotMeta, SnapshotStore, StateMigrator};
use rbs_core::fault::FaultPlan;
use rbs_netfx::pool::PacketPool;
use rbs_netfx::{PacketBatch, PipelineSpec};
use rbs_sfi::backend::{BackendKind, BackendTotals};
use rbs_sfi::channel::ChannelError;
use rbs_sfi::recycle::{recycle_path_metered, RecycleReceiver, RecycleSender};
use rbs_sfi::{Domain, DomainManager, DomainSender, DomainState};

use crate::shard::shard_of_packet_mut;
use crate::stats::{RuntimeReport, WorkerSnapshot, WorkerStats};
use crate::supervisor::{
    BreakerState, RestartPolicy, SlotHealth, SupervisorEvent, SupervisorEventKind,
};
use crate::upgrade::{
    Quiesce, UpgradeDirection, UpgradeError, UpgradeOutcome, UpgradePolicy, UpgradeRun,
};
use crate::worker::{spawn_worker, WorkItem};

/// Construction parameters for a [`ShardedRuntime`].
///
/// New fields appear as supervision features land; build configs with
/// struct update syntax (`..RuntimeConfig::default()`) to stay
/// source-compatible.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of worker threads (= shards). Must be at least 1.
    pub workers: usize,
    /// Bounded depth of each worker's input queue, in batches; a full
    /// queue backpressures the dispatcher.
    pub queue_capacity: usize,
    /// Restart budget, backoff, and breaker parameters.
    pub restart: RestartPolicy,
    /// How long [`ShardedRuntime::dispatch`] waits on a full worker
    /// queue before dropping the batch with accounting. A stalled worker
    /// can delay the dispatcher by at most this much per send.
    pub send_deadline: Duration,
    /// A worker continuously executing one batch for longer than this is
    /// declared hung: the watchdog force-fails its domain, abandons the
    /// thread, and respawns the shard.
    pub hang_timeout: Duration,
    /// Seed for deterministic backoff jitter (used even without the
    /// `fault-injection` feature).
    pub supervisor_seed: u64,
    /// Take a per-worker state snapshot every this many supervision
    /// ticks; `0` disables snapshotting entirely (no snapshot work
    /// items, no restore chain — crashes recover cold, exactly the
    /// pre-recovery behavior).
    pub snapshot_interval_ticks: u64,
    /// Every `snapshot_full_every`-th snapshot is a full image; the ones
    /// between are deltas against the last full base. `1` makes every
    /// snapshot full.
    pub snapshot_full_every: u32,
    /// Depth of the buffer-recycle channel, in batches; `0` (the
    /// default) disables recycling entirely — workers drop their output
    /// batches exactly as before, no recycler domain exists, and the
    /// chaos/recovery schedules replay byte-identically. When positive,
    /// every worker gives its spent output batches back through a
    /// dedicated `sfi` recycle path and the driver drains them into its
    /// [`rbs_netfx::pool::PacketPool`] via
    /// [`ShardedRuntime::reclaim_buffers`].
    pub recycle_capacity: usize,
    /// Minimum packet capacity of the dispatcher's per-shard scratch
    /// batches and every spare shell it creates. `0` (the default) lets
    /// shells grow organically to the observed shard load; setting it to
    /// the driver's batch size guarantees no scratch push can ever
    /// reallocate — the configuration `e12_hotpath` measures under a
    /// counting allocator.
    pub scratch_capacity: usize,
    /// Isolation backend every runtime domain (workers + recycler) runs
    /// on. The default [`BackendKind::TypedSfi`] is the paper's
    /// zero-cost linear-type model and reproduces pre-seam behavior
    /// exactly; [`BackendKind::MpkSim`] and [`BackendKind::CopyBoundary`]
    /// charge each boundary crossing per their cost models (experiment
    /// E13 sweeps the spectrum).
    pub backend: BackendKind,
    /// Deterministic fault schedule injected into workers and the
    /// dispatch path; `None` runs clean.
    #[cfg(feature = "fault-injection")]
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            restart: RestartPolicy::default(),
            send_deadline: Duration::from_secs(1),
            hang_timeout: Duration::from_secs(5),
            supervisor_seed: 0,
            snapshot_interval_ticks: 0,
            snapshot_full_every: 4,
            recycle_capacity: 0,
            scratch_capacity: 0,
            backend: BackendKind::TypedSfi,
            #[cfg(feature = "fault-injection")]
            faults: None,
        }
    }
}

impl RuntimeConfig {
    fn plan(&self) -> Option<Arc<FaultPlan>> {
        #[cfg(feature = "fault-injection")]
        {
            self.faults.clone()
        }
        #[cfg(not(feature = "fault-injection"))]
        {
            None
        }
    }
}

/// Errors surfaced by the runtime to its caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Domain creation failed (manager quota).
    DomainCreation(rbs_sfi::domain::DomainError),
    /// A worker slot could not be healed (its domain is destroyed).
    Unrecoverable {
        /// Shard index of the dead slot.
        worker: usize,
    },
    /// The targeted send refused to touch a slot a live upgrade is
    /// quiescing; the upgrade machinery owns its lifecycle.
    WorkerUpgrading {
        /// Shard index of the quiescing slot.
        worker: usize,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::DomainCreation(e) => write!(f, "creating worker domain: {e}"),
            RuntimeError::Unrecoverable { worker } => {
                write!(f, "worker {worker} is unrecoverable (domain destroyed)")
            }
            RuntimeError::WorkerUpgrading { worker } => {
                write!(f, "worker {worker} is quiescing for a live upgrade")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// The buffer-return plumbing, present only when
/// [`RuntimeConfig::recycle_capacity`] is positive.
///
/// The receive side lives in its own domain (owned by the driver — the
/// dispatcher thread drains it between bursts), so workers feeding it are
/// ordinary cross-domain ownership transfers: a worker that faults with
/// batches in flight simply never gives them back, and those buffers die
/// with its poisoned domain instead of re-entering circulation
/// half-rewritten.
struct Recycler {
    domain: Domain,
    receiver: RecycleReceiver<PacketBatch>,
    /// Template sender cloned into every worker spawn (and respawn).
    sender: RecycleSender<PacketBatch>,
}

struct WorkerSlot {
    domain: Domain,
    /// The spec this slot's current worker generation runs. Equal to the
    /// runtime's spec except mid-upgrade, when the fleet is intentionally
    /// mixed — one worker at a time — until the walk commits or rolls
    /// back.
    spec: PipelineSpec,
    /// Generation counter of `spec`: the fleet-committed generation, plus
    /// one while the slot runs a not-yet-committed upgrade target.
    spec_generation: u64,
    /// Total spawns of this slot's worker thread minus one (0 for the
    /// initial spawn). Unlike `respawns` it also counts upgrade swaps, so
    /// heartbeat tokens and attach-site fault occurrences stay unique per
    /// generation.
    spawn_seq: u64,
    /// Quiesce attempts on this slot — the occurrence counter for
    /// upgrade-quiesce fault injection.
    upgrade_quiesces: u64,
    /// Upgrade restore attempts on this slot — the occurrence counter
    /// for upgrade-restore fault injection.
    upgrade_restores: u64,
    sender: DomainSender<WorkItem>,
    thread: Option<std::thread::JoinHandle<()>>,
    /// Hung threads abandoned by the watchdog. They self-terminate once
    /// their stall ends (the poisoned table revoked their channel), and
    /// are joined at shutdown so their last batch lands in the
    /// accounting.
    zombies: Vec<std::thread::JoinHandle<()>>,
    stats: Arc<WorkerStats>,
    /// Double-buffered sealed snapshots of this worker's pipeline state,
    /// written by the worker thread on the snapshot cadence and read by
    /// the supervisor at heal time.
    store: Arc<Mutex<SnapshotStore>>,
    health: SlotHealth,
    /// Batches routed to this shard (including ones later lost).
    dispatched: u64,
    /// Batches confirmed lost to faults.
    lost: u64,
    /// Thread respawns performed by the supervisor.
    respawns: u64,
    /// Hung generations force-failed by the watchdog.
    watchdog_kills: u64,
    /// Packets successfully handed to this worker's queue.
    dispatched_packets: u64,
    /// Packets destroyed by faults after queuing (recomputed at heal and
    /// shutdown as `dispatched_packets - packets_in`).
    lost_packets: u64,
    /// Packets bound for this shard dropped with accounting.
    shed_packets: u64,
    /// Packets bound for this shard rerouted to a healthy peer.
    redistributed_packets: u64,
    /// Bounded-wait sends that gave up on this worker's full queue.
    send_timeouts: u64,
    /// Send attempts at this slot — the occurrence counter for
    /// channel-send fault injection.
    send_attempts: u64,
    /// Respawns handed a verified snapshot.
    warm_restores: u64,
    /// Respawns that started from clean state.
    cold_restores: u64,
    /// Buffered snapshots rejected during recovery.
    snapshot_rejects: u64,
    /// State items destroyed by crashes, summed over all recoveries.
    state_items_lost: u64,
}

impl WorkerSlot {
    fn is_healthy(&self) -> bool {
        self.domain.state() == DomainState::Active && self.sender.is_open()
    }

    /// Re-derives loss counters from the cumulative dispatch/progress
    /// counters. Idempotent and self-correcting: a zombie completing its
    /// stalled batch *after* a provisional accounting shrinks the loss
    /// on the next call.
    fn refresh_losses(&mut self) {
        self.lost = self.dispatched.saturating_sub(self.stats.batches());
        self.lost_packets = self
            .dispatched_packets
            .saturating_sub(self.stats.packets_in());
    }

    fn snapshot(&self, index: usize) -> WorkerSnapshot {
        let (snapshots_taken, latest_snapshot) = {
            let store = self.store.lock();
            (
                store.stats().snapshots_taken(),
                store.latest().map(|s| s.meta()),
            )
        };
        WorkerSnapshot {
            index,
            state: self.domain.state(),
            breaker: self.health.state,
            consecutive_faults: self.health.consecutive_faults,
            generation: self.domain.generation(),
            spec_generation: self.spec_generation,
            respawns: self.respawns,
            watchdog_kills: self.watchdog_kills,
            dispatched: self.dispatched,
            processed: self.stats.batches(),
            lost: self.lost,
            dispatched_packets: self.dispatched_packets,
            packets_in: self.stats.packets_in(),
            packets_out: self.stats.packets_out(),
            drops: self.stats.drops(),
            lost_packets: self.lost_packets,
            shed_packets: self.shed_packets,
            redistributed_packets: self.redistributed_packets,
            send_timeouts: self.send_timeouts,
            faults: self.stats.faults(),
            state_items: self.stats.state_items(),
            warm_restores: self.warm_restores,
            cold_restores: self.cold_restores,
            snapshot_rejects: self.snapshot_rejects,
            state_items_lost: self.state_items_lost,
            import_failures: self.stats.import_failures(),
            recycled_batches: self.stats.recycled_batches(),
            recycle_drops: self.stats.recycle_drops(),
            queue_depth_hwm: self.stats.queue_depth_hwm(),
            snapshots_taken,
            latest_snapshot,
            stage_stats: self.stats.final_stage_stats(),
        }
    }
}

/// A multi-worker pipeline runtime with per-domain fault isolation.
///
/// The dispatcher (the thread calling [`ShardedRuntime::dispatch`])
/// flow-hashes each packet to one of N shards; every shard is a worker
/// thread owning a private [`rbs_netfx::Pipeline`] built from the shared
/// [`PipelineSpec`] and running inside its own
/// [`rbs_sfi::Domain`]. Batches cross the boundary through bounded
/// ownership-transferring channels, so a worker never shares packet
/// memory with the dispatcher or its peers.
///
/// A panic inside any worker's pipeline is caught at its domain boundary:
/// the domain faults, its channel is revoked, and *only that shard*
/// stops. The supervisor (folded into the dispatch path — there is no
/// extra thread) observes the failed state and applies the restart
/// policy: respawn after an exponential backoff, or — when the worker is
/// crash-looping past its budget — open its circuit breaker and stop
/// feeding it until a cooldown passes. A worker that *hangs* instead of
/// crashing is caught by the heartbeat watchdog: its domain is
/// force-failed (revoking its channel), the stuck thread is abandoned to
/// self-terminate, and a replacement takes over the shard. While a shard
/// is down its packets are redistributed to healthy peers, or shed with
/// accounting when none exist. Other workers never stall: their queues,
/// domains, and threads are untouched throughout.
///
/// Every dispatched packet is conserved:
/// `offered == packets_in + lost + shed`, with
/// `packets_in == packets_out + drops` —
/// [`RuntimeReport::unaccounted_packets`] checks the whole chain and is
/// asserted to be zero under randomized fault injection.
pub struct ShardedRuntime {
    manager: DomainManager,
    spec: PipelineSpec,
    config: RuntimeConfig,
    slots: Vec<WorkerSlot>,
    /// Logical supervision clock: advanced once per `dispatch` pass
    /// (never by `drain`, whose iteration count is timing-dependent), so
    /// backoff and cooldown schedules replay deterministically.
    tick: u64,
    /// Packets offered to the runtime (`dispatch` + `send_to`).
    offered_packets: u64,
    /// The supervisor's journal.
    events: Vec<SupervisorEvent>,
    /// Jitter source; seeded from the config so runs replay.
    jitter_plan: FaultPlan,
    /// Persistent per-shard scratch batches the single-pass dispatcher
    /// fills; swapped out whole on send, so the dispatch loop itself
    /// performs no allocation once scratch capacity reaches its
    /// high-water mark.
    scratch: Vec<PacketBatch>,
    /// Empty batch shells (allocation retained) used to replace scratch
    /// batches swapped out on send; refilled by the drained input batch
    /// each dispatch and by [`ShardedRuntime::reclaim_buffers`].
    spare_shells: Vec<PacketBatch>,
    /// Buffer-return path; `None` unless recycling is configured.
    recycler: Option<Recycler>,
    /// Generation counter of the fleet-committed spec; bumped by every
    /// committed upgrade.
    spec_generation: u64,
    /// The rolling upgrade currently walking the fleet, if any.
    upgrade: Option<UpgradeRun>,
    /// Outcomes of finished upgrades, in completion order.
    upgrade_history: Vec<UpgradeOutcome>,
    /// Set once the workers have been stopped and joined; makes the
    /// teardown idempotent between [`ShardedRuntime::shutdown`] and
    /// `Drop`.
    finished: bool,
}

impl ShardedRuntime {
    /// Builds the runtime and starts all worker threads.
    pub fn new(spec: PipelineSpec, config: RuntimeConfig) -> Result<Self, RuntimeError> {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        let epoch = Instant::now();
        let manager = DomainManager::with_backend(config.backend.instantiate());
        // The recycler (when configured) is a driver-owned domain whose
        // only export is the recycle channel; it runs no thread — the
        // dispatch thread drains it via `reclaim_buffers`.
        let recycler = if config.recycle_capacity > 0 {
            let domain = manager
                .create_domain("recycler")
                .map_err(RuntimeError::DomainCreation)?;
            // Spent batches crossing back are metered by their payload
            // bytes, like the forward path.
            let (sender, receiver) =
                recycle_path_metered(&domain, config.recycle_capacity, PacketBatch::total_bytes);
            Some(Recycler {
                domain,
                receiver,
                sender,
            })
        } else {
            None
        };
        let mut slots = Vec::with_capacity(config.workers);
        for index in 0..config.workers {
            let domain = manager
                .create_domain(format!("worker-{index}"))
                .map_err(RuntimeError::DomainCreation)?;
            let stats = Arc::new(WorkerStats::new(epoch));
            let store = Arc::new(Mutex::new(SnapshotStore::new(config.snapshot_full_every)));
            let (sender, thread) = spawn_worker(
                index,
                0,
                domain.clone(),
                spec.clone(),
                Arc::clone(&stats),
                config.queue_capacity,
                config.plan(),
                Arc::clone(&store),
                None,
                recycler.as_ref().map(|r| r.sender.clone()),
            );
            slots.push(WorkerSlot {
                domain,
                spec: spec.clone(),
                spec_generation: 0,
                spawn_seq: 0,
                upgrade_quiesces: 0,
                upgrade_restores: 0,
                sender,
                thread: Some(thread),
                zombies: Vec::new(),
                stats,
                store,
                health: SlotHealth::new(),
                dispatched: 0,
                lost: 0,
                respawns: 0,
                watchdog_kills: 0,
                dispatched_packets: 0,
                lost_packets: 0,
                shed_packets: 0,
                redistributed_packets: 0,
                send_timeouts: 0,
                send_attempts: 0,
                warm_restores: 0,
                cold_restores: 0,
                snapshot_rejects: 0,
                state_items_lost: 0,
            });
        }
        let jitter_plan = FaultPlan::new(config.supervisor_seed);
        let workers = config.workers;
        let scratch_capacity = config.scratch_capacity;
        Ok(Self {
            manager,
            spec,
            config,
            slots,
            tick: 0,
            offered_packets: 0,
            events: Vec::new(),
            jitter_plan,
            scratch: (0..workers)
                .map(|_| PacketBatch::with_capacity(scratch_capacity))
                .collect(),
            spare_shells: Vec::with_capacity(workers * 2 + 4),
            recycler,
            spec_generation: 0,
            upgrade: None,
            upgrade_history: Vec::new(),
            finished: false,
        })
    }

    /// Number of workers (= shards).
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// The isolation backend the runtime's domains run on.
    pub fn backend_kind(&self) -> BackendKind {
        self.config.backend
    }

    /// Crossing totals accumulated by the runtime's isolation backend.
    /// Always zero under the default zero-cost [`BackendKind::TypedSfi`]
    /// (nothing is instrumented, by design).
    pub fn backend_totals(&self) -> BackendTotals {
        self.manager.backend_totals()
    }

    /// The current logical supervision tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// The supervisor's journal so far, in observation order.
    pub fn events(&self) -> &[SupervisorEvent] {
        &self.events
    }

    fn push_event(&mut self, worker: usize, kind: SupervisorEventKind) {
        self.events.push(SupervisorEvent {
            tick: self.tick,
            worker,
            kind,
        });
    }

    /// Splits `batch` by flow hash and forwards each shard's packets to
    /// its worker, applying the supervision policy on the way: faulted
    /// workers are respawned (within their restart budget and after
    /// their backoff), hung workers are watchdog-killed, and packets
    /// bound for a down shard are redistributed or shed with accounting.
    ///
    /// Each send waits at most [`RuntimeConfig::send_deadline`] on a
    /// full queue, so no worker can wedge the dispatcher. Returns the
    /// number of batches enqueued.
    pub fn dispatch(&mut self, mut batch: PacketBatch) -> Result<usize, RuntimeError> {
        self.supervise()?;
        self.stage_upgrade_pause();
        let n = self.slots.len();
        // Single pass: each packet's flow hash is computed at most once
        // (pktgen-stamped tags are served from the cache) and the packet
        // moves straight into its shard's persistent scratch batch —
        // no per-call shard table, no per-shard `PacketBatch::new`.
        for mut packet in batch.drain() {
            self.offered_packets += 1;
            let s = shard_of_packet_mut(&mut packet, n);
            self.scratch[s].push(packet);
        }
        // The drained input batch becomes a spare shell: in pool mode it
        // is the generator's shell allocation coming back around.
        self.put_spare_shell(batch);
        let mut enqueued = 0;
        for index in 0..n {
            if self.scratch[index].is_empty() {
                continue;
            }
            // Swap the filled scratch out whole (the send path owns it
            // from here) and seat a spare shell as the next round's
            // scratch, pre-sized so its pushes will not reallocate.
            let len = self.scratch[index].len();
            let mut outgoing = self.take_spare_shell(len);
            std::mem::swap(&mut self.scratch[index], &mut outgoing);
            if self.route(index, outgoing) {
                enqueued += 1;
            }
        }
        // After routing, so the batch routed to a worker on its pause
        // tick is already queued — it drains, it is never lost.
        self.advance_upgrade()?;
        Ok(enqueued)
    }

    /// Pops a retained empty shell (growing it to `cap` if needed), or
    /// allocates a fresh pre-sized batch when none is banked.
    fn take_spare_shell(&mut self, cap: usize) -> PacketBatch {
        let cap = cap.max(self.config.scratch_capacity);
        match self.spare_shells.pop() {
            Some(mut shell) => {
                shell.reserve(cap.saturating_sub(shell.capacity()));
                shell
            }
            None => PacketBatch::with_capacity(cap),
        }
    }

    /// Banks an empty shell for later scratch swaps; drops it when the
    /// bank is full (the bank's capacity is fixed at construction, so
    /// banking never allocates).
    fn put_spare_shell(&mut self, shell: PacketBatch) {
        debug_assert!(shell.is_empty(), "only drained batches may be banked");
        if self.spare_shells.len() < self.spare_shells.capacity() {
            self.spare_shells.push(shell);
        }
    }

    /// Drains the recycle channel, returning every packet buffer to
    /// `pool` and banking the emptied batch shells for the dispatcher's
    /// scratch swaps. Returns the number of batches reclaimed.
    ///
    /// No-op (returning 0) when recycling is disabled. Call between
    /// dispatch bursts — typically right before generating the next
    /// batch from the pool, so returned buffers are immediately
    /// reusable.
    ///
    /// Shell conservation: every `dispatch` banks its drained input
    /// shell, so without correction the bank would fill and the
    /// dispatcher would drop one shell per burst — slowly bleeding the
    /// pool's shell bank dry (and forcing it to allocate fresh shells).
    /// After draining the channel this method spills banked shells above
    /// the dispatcher's working need back into `pool`, closing the loop:
    /// the shell the generator takes out each burst comes back here.
    pub fn reclaim_buffers(&mut self, pool: &mut PacketPool) -> usize {
        let Some(recycler) = &self.recycler else {
            return 0;
        };
        let shells = &mut self.spare_shells;
        let reclaimed = recycler.receiver.reclaim(|mut batch: PacketBatch| {
            if shells.len() < shells.capacity() {
                for packet in batch.drain() {
                    pool.put(packet.into_bytes());
                }
                shells.push(batch);
            } else {
                // The dispatcher's bank is full; hand the shell to the
                // pool instead — that is where the generator draws batch
                // shells from, so the per-burst shell the driver takes
                // out comes back around here.
                pool.recycle_batch(batch);
            }
        });
        // Balance the bank to its working target: one shell per shard
        // swap (a single dispatch can consume up to `slots.len()` of
        // them) plus headroom. Above target, surplus serves the
        // generator better than us; below target — the recycle channel
        // was briefly empty because workers lagged a few rounds — we
        // borrow from the pool's reservoir *without allocating*, so a
        // scheduling hiccup can never push `dispatch` onto its
        // shell-allocation fallback.
        let target = self.slots.len() + 2;
        while self.spare_shells.len() > target {
            let shell = self.spare_shells.pop().expect("len > target");
            pool.recycle_batch(shell);
        }
        while self.spare_shells.len() < target {
            match pool.try_take_shell() {
                Some(shell) => self.spare_shells.push(shell),
                None => break,
            }
        }
        reclaimed
    }

    /// Whether a buffer-recycle path is configured and still open.
    pub fn recycling_active(&self) -> bool {
        self.recycler.as_ref().is_some_and(|r| r.sender.is_open())
    }

    /// One supervision pass: advance the logical clock, watchdog-check
    /// busy workers, detect faults, apply the restart policy, and — on
    /// the snapshot cadence — ask every healthy worker to checkpoint its
    /// pipeline state.
    fn supervise(&mut self) -> Result<(), RuntimeError> {
        self.tick += 1;
        for index in 0..self.slots.len() {
            self.watchdog_check(index);
            self.observe_slot(index);
            self.advance_slot(index)?;
        }
        let interval = self.config.snapshot_interval_ticks;
        if interval > 0 && self.tick.is_multiple_of(interval) {
            self.request_snapshots();
        }
        Ok(())
    }

    /// Sends a snapshot request to every worker the dispatcher would
    /// feed. Deliberately *not* routed through `send_accounted`: snapshot
    /// items are control traffic — they must not consume channel-send
    /// fault occurrences or batch accounting, or enabling snapshots
    /// would perturb an otherwise identical chaos schedule.
    fn request_snapshots(&mut self) {
        let deadline = self.config.send_deadline;
        let tick = self.tick;
        // Tick-collision guard: the worker whose quiesce begins at the
        // end of this very pass would otherwise snapshot twice on one
        // tick — the cadence snapshot here, then the final quiesce
        // snapshot moments later. The quiesce snapshot is authoritative
        // (it captures the fully drained state), so the cadence one is
        // skipped.
        let quiescing_next = match &self.upgrade {
            Some(run) if run.active.is_none() => run.queue.front().copied(),
            _ => None,
        };
        for (index, slot) in self.slots.iter_mut().enumerate() {
            if Some(index) == quiescing_next {
                continue;
            }
            if !slot.health.state.accepts_work() || !slot.is_healthy() {
                continue;
            }
            // A failed send means the worker just faulted; the next
            // supervision pass accounts it, and this cadence is skipped.
            let _ = slot
                .sender
                .send_deadline(WorkItem::Snapshot { tick }, deadline);
        }
    }

    /// Declares a worker hung when one batch has been executing longer
    /// than the hang timeout: force-fail its domain (poisoning the table
    /// and revoking its channel), abandon the thread as a zombie, and
    /// leave the now-unhealthy slot to the regular fault path.
    ///
    /// The zombie needs no killing: when its stall ends, its next
    /// receive fails on the revoked channel and the thread exits; its
    /// handle is joined at shutdown so a batch it did finish still
    /// counts.
    fn watchdog_check(&mut self, index: usize) {
        let slot = &mut self.slots[index];
        if !slot.health.state.accepts_work() || !slot.is_healthy() {
            return;
        }
        let Some(busy) = slot.stats.busy_for() else {
            return;
        };
        if busy <= self.config.hang_timeout {
            return;
        }
        slot.domain.force_fail();
        if let Some(thread) = slot.thread.take() {
            slot.zombies.push(thread);
        }
        slot.watchdog_kills += 1;
        self.push_event(index, SupervisorEventKind::WatchdogKill);
    }

    /// Fault detection: an unhealthy slot whose breaker still accepts
    /// work has a *new* fault. Accounts its losses immediately (so
    /// `drain` can settle while the slot waits out its backoff) and
    /// moves the breaker.
    fn observe_slot(&mut self, index: usize) {
        let policy = self.config.restart.clone();
        let slot = &mut self.slots[index];
        if !slot.health.state.accepts_work() || slot.is_healthy() {
            return;
        }
        let was_half_open = slot.health.state == BreakerState::HalfOpen;
        slot.health.batches_at_fault = slot.stats.batches();
        slot.health.consecutive_faults += 1;
        slot.refresh_losses();
        self.push_event(index, SupervisorEventKind::Fault);
        let slot = &mut self.slots[index];
        if was_half_open || slot.health.consecutive_faults >= policy.max_consecutive_faults {
            let until = self.tick + policy.breaker_cooldown_ticks;
            slot.health.state = BreakerState::Open;
            slot.health.resume_at = until;
            self.push_event(
                index,
                SupervisorEventKind::BreakerOpened { until_tick: until },
            );
        } else {
            let jitter = self.jitter_plan.jitter(
                index as u64,
                u64::from(slot.health.consecutive_faults),
                policy.backoff_jitter_ticks.saturating_add(1),
            );
            let until = self.tick + policy.backoff_ticks(slot.health.consecutive_faults) + jitter;
            slot.health.state = BreakerState::Backoff;
            slot.health.resume_at = until;
            self.push_event(
                index,
                SupervisorEventKind::BackoffScheduled { until_tick: until },
            );
        }
    }

    /// Time-based transitions: respawn slots whose backoff or breaker
    /// cooldown has elapsed, and close breakers whose probe generation
    /// proved itself.
    fn advance_slot(&mut self, index: usize) -> Result<(), RuntimeError> {
        match self.slots[index].health.state {
            BreakerState::Backoff if self.tick >= self.slots[index].health.resume_at => {
                self.heal_slot(index)?;
                self.slots[index].health.state = BreakerState::Running;
                self.push_event(index, SupervisorEventKind::Respawn);
            }
            BreakerState::Open if self.tick >= self.slots[index].health.resume_at => {
                self.heal_slot(index)?;
                self.slots[index].health.state = BreakerState::HalfOpen;
                self.push_event(index, SupervisorEventKind::BreakerHalfOpened);
                self.push_event(index, SupervisorEventKind::Respawn);
            }
            BreakerState::Running => {
                let slot = &mut self.slots[index];
                if slot.health.consecutive_faults > 0
                    && slot.stats.batches() > slot.health.batches_at_fault
                {
                    slot.health.consecutive_faults = 0;
                }
            }
            BreakerState::HalfOpen => {
                let slot = &mut self.slots[index];
                if slot.is_healthy() && slot.stats.batches() > slot.health.batches_at_fault {
                    slot.health.state = BreakerState::Running;
                    slot.health.consecutive_faults = 0;
                    self.push_event(index, SupervisorEventKind::BreakerClosed);
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Routes one pre-sharded batch for shard `index`, degrading
    /// gracefully when the shard is down: redistribute to the next
    /// healthy worker, or shed with accounting. Returns whether the
    /// batch was enqueued anywhere.
    fn route(&mut self, index: usize, batch: PacketBatch) -> bool {
        let n = self.slots.len();
        let target = if self.slots[index].health.state.accepts_work() {
            index
        } else {
            // RSS-style degradation: probe the ring for a live worker.
            // Flow affinity for the displaced packets is sacrificed —
            // this runtime's operators are per-flow stateless across
            // shards — in exchange for keeping the packets flowing.
            //
            // Selection consults only the supervision state machine,
            // never the live domain state: breaker states are a pure
            // function of the tick schedule, so the routing decision
            // replays deterministically under a fixed fault seed. A peer
            // that died since the last supervision pass fails the send
            // below and the packets are shed with accounting.
            match (1..n)
                .map(|k| (index + k) % n)
                .find(|&t| self.slots[t].health.state.accepts_work())
            {
                Some(t) => {
                    let packets = batch.len() as u64;
                    self.slots[index].redistributed_packets += packets;
                    self.push_event(index, SupervisorEventKind::Redistributed { packets });
                    t
                }
                None => {
                    self.shed(index, batch.len() as u64);
                    return false;
                }
            }
        };
        self.send_accounted(target, batch)
    }

    /// Sends `batch` to `target` with a bounded wait, shedding (with
    /// accounting) on timeout or a torn channel. Fault injection for the
    /// channel-send site happens here.
    fn send_accounted(&mut self, target: usize, batch: PacketBatch) -> bool {
        use rbs_core::fault::{fire_sleep, FaultKind, FaultSite};
        let packets = batch.len() as u64;
        let occurrence = self.slots[target].send_attempts;
        self.slots[target].send_attempts += 1;
        if let Some(plan) = self.config.plan() {
            match plan.decide(FaultSite::ChannelSend, target as u64, occurrence) {
                Some(FaultKind::Panic | FaultKind::PoisonTable | FaultKind::CloseChannel) => {
                    // A torn transport: the worker's channel dies
                    // mid-send. Force-fail the domain so the supervisor
                    // runs the real recovery path; the batch is shed.
                    self.slots[target].domain.force_fail();
                    self.shed(target, packets);
                    return false;
                }
                Some(FaultKind::Stall { .. }) => {
                    // A simulated queue stall: the send "waits out" its
                    // deadline and gives up. No sleeping needed — the
                    // observable outcome is the accounted drop.
                    self.slots[target].send_timeouts += 1;
                    self.shed(target, packets);
                    return false;
                }
                Some(delay @ FaultKind::Delay { .. }) => fire_sleep(delay),
                None => {}
            }
        }
        match self.slots[target]
            .sender
            .send_deadline(WorkItem::Batch(batch), self.config.send_deadline)
        {
            Ok(()) => {
                self.slots[target].dispatched += 1;
                self.slots[target].dispatched_packets += packets;
                true
            }
            Err((ChannelError::TimedOut, _)) => {
                self.slots[target].send_timeouts += 1;
                self.shed(target, packets);
                false
            }
            Err(_) => {
                // The worker faulted between the supervision pass and
                // this send; the next pass will catch the fault itself.
                self.shed(target, packets);
                false
            }
        }
    }

    fn shed(&mut self, index: usize, packets: u64) {
        if packets == 0 {
            return;
        }
        self.slots[index].shed_packets += packets;
        self.push_event(index, SupervisorEventKind::Shed { packets });
    }

    /// Sends one pre-sharded batch directly to worker `index`, healing
    /// the slot first if its last fault has not been repaired yet.
    ///
    /// This is the targeted (test/tooling) path: it bypasses flow
    /// hashing *and* the restart policy — healing is immediate and
    /// resets the slot's breaker, and the send blocks on a full queue.
    /// Production traffic goes through [`ShardedRuntime::dispatch`].
    pub fn send_to(&mut self, index: usize, batch: PacketBatch) -> Result<(), RuntimeError> {
        if self.slots[index].health.state == BreakerState::Upgrading {
            // The upgrade machinery owns this slot until its swap (or
            // rollback) completes; healing it here would fight the
            // quiesce. The batch was never offered, so conservation is
            // untouched.
            return Err(RuntimeError::WorkerUpgrading { worker: index });
        }
        self.offered_packets += batch.len() as u64;
        if !self.slots[index].is_healthy() {
            self.heal_slot(index)?;
            self.slots[index].health.reset();
        }
        let packets = batch.len() as u64;
        let mut item = WorkItem::Batch(batch);
        // Two attempts: a worker that faulted after the health check
        // gets healed once, then the send must stick (a freshly spawned
        // worker has an open, empty queue).
        for attempt in 0..2 {
            match self.slots[index].sender.send(item) {
                Ok(()) => {
                    self.slots[index].dispatched += 1;
                    self.slots[index].dispatched_packets += packets;
                    return Ok(());
                }
                Err((_, returned)) => {
                    if attempt == 1 {
                        self.shed(index, packets);
                        return Err(RuntimeError::Unrecoverable { worker: index });
                    }
                    self.heal_slot(index)?;
                    self.slots[index].health.reset();
                    item = returned;
                }
            }
        }
        unreachable!("send loop returns within two attempts")
    }

    /// Scans all slots and repairs any that faulted; returns the number
    /// of workers respawned.
    ///
    /// This is the manual override: it ignores backoff schedules and
    /// open breakers, respawns unconditionally, and resets each healed
    /// slot's breaker state.
    pub fn heal(&mut self) -> Result<usize, RuntimeError> {
        let mut healed = 0;
        for index in 0..self.slots.len() {
            if self.slots[index].health.state == BreakerState::Upgrading {
                // Mid-quiesce slots look unhealthy on purpose (their
                // worker exited); the upgrade walk repairs them.
                continue;
            }
            if !self.slots[index].is_healthy() {
                self.heal_slot(index)?;
                self.slots[index].health.reset();
                self.push_event(index, SupervisorEventKind::Respawn);
                healed += 1;
            }
        }
        Ok(healed)
    }

    /// The mechanical respawn sequence for one dead slot: join the dead
    /// thread (hung threads were already moved to the zombie list by the
    /// watchdog), account lost batches, recover the domain (paper §3:
    /// unwind → poison table → drain in-flight → recovery function), and
    /// respawn the worker on a fresh channel — warm from the slot's
    /// newest verified snapshot when snapshotting is on, cold otherwise.
    ///
    /// Breaker bookkeeping belongs to the callers: the policy path keeps
    /// its consecutive-fault count, the manual path resets it.
    fn heal_slot(&mut self, index: usize) -> Result<(), RuntimeError> {
        // Per-slot spec: mid-upgrade, an already-swapped worker that
        // faults must come back on the spec it was running, not the
        // fleet's committed one.
        let spec = self.slots[index].spec.clone();
        let capacity = self.config.queue_capacity;
        let plan = self.config.plan();
        let slot = &mut self.slots[index];

        if let Some(thread) = slot.thread.take() {
            // The worker loop exits right after a fault, so this join is
            // prompt; a panic *of the loop itself* would be a runtime
            // bug, but even then the slot must stay repairable.
            let _ = thread.join();
        }

        // Everything dispatched but never processed died with the
        // worker: the in-flight batch plus whatever sat in the revoked
        // queue.
        slot.refresh_losses();
        // The dead generation's heartbeat must not age against its
        // replacement (a zombie's stale token would read as a hang).
        slot.stats.clear_busy();

        match slot.domain.state() {
            DomainState::Active => {
                // The fault already auto-recovered (a recovery function
                // was installed) or only the thread died; just respawn.
            }
            DomainState::Failed => {
                // The runtime's recovery function: state re-init is
                // rebuilding the pipeline (from snapshot or spec), which
                // the respawn below does — the domain itself carries
                // nothing else, so reactivation is all that is left.
                slot.domain.set_recovery(|_| {});
                if !slot.domain.recover() {
                    return Err(RuntimeError::Unrecoverable { worker: index });
                }
            }
            DomainState::Destroyed => {
                return Err(RuntimeError::Unrecoverable { worker: index });
            }
        }

        let initial_state = if self.config.snapshot_interval_ticks > 0 {
            self.restore_chain(index)
        } else {
            // Snapshotting off: recovery is cold by definition, with no
            // restore events — the pre-recovery runtime's behavior,
            // replayed exactly.
            None
        };

        let recycle = self.recycler.as_ref().map(|r| r.sender.clone());
        let slot = &mut self.slots[index];
        slot.respawns += 1;
        slot.spawn_seq += 1;
        let (sender, thread) = spawn_worker(
            index,
            slot.spawn_seq,
            slot.domain.clone(),
            spec,
            Arc::clone(&slot.stats),
            capacity,
            plan,
            Arc::clone(&slot.store),
            initial_state,
            recycle,
        );
        slot.sender = sender;
        slot.thread = Some(thread);
        Ok(())
    }

    /// Walks the snapshot fallback chain for a dead slot — latest
    /// verified → previous → cold — journaling every step with exact
    /// state-loss accounting. A snapshot that fails its checksum (or
    /// cannot be decoded/applied) is *never* restored: it is rejected
    /// with its error kind and the chain falls through.
    ///
    /// Returns the checkpoint to inject into the replacement, or `None`
    /// for a cold start.
    fn restore_chain(&mut self, index: usize) -> Option<Arc<Checkpoint>> {
        let schema = self.slots[index].spec.state_schema();
        // Mid-upgrade, a slot's store can briefly hold snapshots sealed
        // under the other spec's schema (a swapped worker crashing
        // before its first new-schema snapshot); the run's migrator
        // carries those across instead of rejecting them.
        let migrator = self
            .upgrade
            .as_ref()
            .and_then(|run| run.policy.migrator.clone());
        self.restore_for(index, schema, migrator)
    }

    /// [`ShardedRuntime::restore_chain`] with an explicit target schema
    /// and optional migrator — the upgrade path restores *across* a
    /// schema change with it. A buffered snapshot sealed under a
    /// different schema is migrated when the migrator can carry the
    /// pair, and rejected (falling through the chain) otherwise; the
    /// schema fence means a restore can never inject state the new spec
    /// would misread.
    fn restore_for(
        &mut self,
        index: usize,
        target_schema: u32,
        migrator: Option<Arc<dyn StateMigrator>>,
    ) -> Option<Arc<Checkpoint>> {
        // The gauge still holds the dead generation's last value: the
        // state the crash destroyed.
        let items_at_crash = self.slots[index].stats.state_items();
        for which in [Buffered::Latest, Buffered::Previous] {
            let candidate = {
                let store = self.slots[index].store.lock();
                store.buffered(which).map(|s| (s.meta(), s.open()))
            };
            match candidate {
                None => continue,
                Some((meta, Ok(cp))) => {
                    let cp = if meta.schema == target_schema {
                        cp
                    } else {
                        let Some(m) = migrator.as_ref() else {
                            self.slots[index].snapshot_rejects += 1;
                            self.push_event(
                                index,
                                SupervisorEventKind::SnapshotRejected {
                                    which: which.name(),
                                    reason: "schema-mismatch",
                                },
                            );
                            continue;
                        };
                        match m.migrate(&cp, meta.schema, target_schema) {
                            Ok(migrated) => {
                                self.push_event(
                                    index,
                                    SupervisorEventKind::StateMigrated {
                                        from: meta.schema,
                                        to: target_schema,
                                        items: meta.items,
                                    },
                                );
                                if let Some(run) = self.upgrade.as_mut() {
                                    run.items_migrated += meta.items;
                                }
                                migrated
                            }
                            Err(_) => {
                                self.slots[index].snapshot_rejects += 1;
                                self.push_event(
                                    index,
                                    SupervisorEventKind::SnapshotRejected {
                                        which: which.name(),
                                        reason: "migrate-failed",
                                    },
                                );
                                continue;
                            }
                        }
                    };
                    let age_ticks = self.tick.saturating_sub(meta.tick);
                    let items_lost = items_at_crash.saturating_sub(meta.items);
                    let slot = &mut self.slots[index];
                    slot.warm_restores += 1;
                    slot.state_items_lost += items_lost;
                    // Pre-set the gauge to the restored count so a crash
                    // racing the replacement's build does not re-account
                    // the dead generation's items; the worker overwrites
                    // it with the truth once its pipeline is up.
                    slot.stats.set_state_items(meta.items);
                    self.push_event(
                        index,
                        SupervisorEventKind::WarmRestore {
                            epoch: meta.epoch,
                            age_ticks,
                            items_restored: meta.items,
                            items_lost,
                        },
                    );
                    return Some(Arc::new(cp));
                }
                Some((_, Err(e))) => {
                    self.slots[index].snapshot_rejects += 1;
                    self.push_event(
                        index,
                        SupervisorEventKind::SnapshotRejected {
                            which: which.name(),
                            reason: e.kind(),
                        },
                    );
                }
            }
        }
        let slot = &mut self.slots[index];
        slot.cold_restores += 1;
        slot.state_items_lost += items_at_crash;
        slot.stats.set_state_items(0);
        self.push_event(
            index,
            SupervisorEventKind::ColdRestore {
                items_lost: items_at_crash,
            },
        );
        None
    }

    /// Begins a zero-downtime rolling upgrade to `new_spec`.
    ///
    /// The upgrade is validated here and *walked* by subsequent
    /// [`ShardedRuntime::dispatch`] passes, one worker per tick: pause
    /// the worker's ingress (its shard redistributes to healthy peers
    /// through the normal degradation machinery), let it drain its
    /// queued tail and seal a final state snapshot, tear down its
    /// domain, spawn the new spec in a fresh one, restore the snapshot
    /// through the schema fence (migrating across a schema change when
    /// the policy's [`StateMigrator`] can carry the pair), and resume.
    /// At most one shard of capacity is ever out; a compatible upgrade
    /// under load loses exactly zero packets.
    ///
    /// A schema-changing upgrade the policy cannot migrate is rejected
    /// up front with [`UpgradeError::IncompatibleSchema`] — before any
    /// worker is touched. A failure mid-walk (chaos kill, drain
    /// timeout) rolls the fleet back: already-upgraded workers return
    /// to the old spec, restored from their latest snapshots, and the
    /// fleet ends uniform either way.
    ///
    /// Fleet-scoped journal entries (`upgrade-started`,
    /// `upgrade-committed`, `upgrade-rolled-back`) carry worker index 0.
    pub fn upgrade_pipeline(
        &mut self,
        new_spec: PipelineSpec,
        policy: UpgradePolicy,
    ) -> Result<(), UpgradeError> {
        if self.upgrade.is_some() {
            return Err(UpgradeError::InProgress);
        }
        let from = self.spec.state_schema();
        let to = new_spec.state_schema();
        if from != to
            && !policy
                .migrator
                .as_ref()
                .is_some_and(|m| m.can_migrate(from, to))
        {
            return Err(UpgradeError::IncompatibleSchema { from, to });
        }
        self.push_event(
            0,
            SupervisorEventKind::UpgradeStarted {
                from_schema: from,
                to_schema: to,
            },
        );
        self.upgrade = Some(UpgradeRun {
            target: new_spec,
            old: self.spec.clone(),
            policy,
            direction: UpgradeDirection::Forward,
            queue: (0..self.slots.len()).collect(),
            done: Vec::new(),
            active: None,
            staged_packets_at_pause: None,
            started_tick: self.tick,
            pause_ticks: 0,
            drained_packets: 0,
            items_migrated: 0,
        });
        Ok(())
    }

    /// Whether a rolling upgrade is still walking the fleet.
    pub fn upgrade_in_progress(&self) -> bool {
        self.upgrade.is_some()
    }

    /// Outcome of the most recently finished upgrade, if any.
    pub fn last_upgrade(&self) -> Option<&UpgradeOutcome> {
        self.upgrade_history.last()
    }

    /// Outcomes of all finished upgrades, in completion order.
    pub fn upgrade_history(&self) -> &[UpgradeOutcome] {
        &self.upgrade_history
    }

    /// Generation counter of the fleet-committed spec (bumped by every
    /// committed upgrade).
    pub fn spec_generation(&self) -> u64 {
        self.spec_generation
    }

    /// The spec the fleet is committed to (mid-upgrade: the spec the
    /// walk started from — the target commits only when every worker
    /// runs it).
    pub fn spec(&self) -> &PipelineSpec {
        match &self.upgrade {
            Some(run) => &run.old,
            None => &self.spec,
        }
    }

    /// Start-of-tick half of the quiesce handoff: captures the next
    /// quiesce target's progress counter *before* this pass routes
    /// anything, so the drained-tail accounting is exact in lockstep
    /// harnesses (the whole pause-tick batch counts as drained), and
    /// fires the upgrade-quiesce chaos site — a kill here takes the
    /// worker down at the top of its pause tick, so the shard's batch
    /// this tick is shed deterministically and the quiesce is found
    /// dead on the next.
    fn stage_upgrade_pause(&mut self) {
        use rbs_core::fault::{fire_sleep, FaultKind, FaultSite};
        let target = match &self.upgrade {
            Some(run) if run.active.is_none() => run
                .queue
                .front()
                .copied()
                .map(|w| (w, matches!(run.direction, UpgradeDirection::Forward))),
            _ => None,
        };
        let Some((worker, forward)) = target else {
            if let Some(run) = self.upgrade.as_mut() {
                run.staged_packets_at_pause = None;
            }
            return;
        };
        // Rollback quiesces never consult the plan (and never consume
        // an occurrence): rollback must always complete.
        if forward {
            let occurrence = self.slots[worker].upgrade_quiesces;
            self.slots[worker].upgrade_quiesces += 1;
            if let Some(plan) = self.config.plan() {
                match plan.decide(FaultSite::UpgradeQuiesce, worker as u64, occurrence) {
                    Some(FaultKind::Panic | FaultKind::PoisonTable | FaultKind::CloseChannel) => {
                        self.slots[worker].domain.force_fail();
                    }
                    Some(other) => fire_sleep(other),
                    None => {}
                }
            }
        }
        let packets = self.slots[worker].stats.packets_in();
        let run = self.upgrade.as_mut().expect("upgrade checked above");
        run.staged_packets_at_pause = Some(packets);
    }

    /// End-of-dispatch half of the walk: step the in-flight quiesce, or
    /// begin the next one, or finish. At most one worker is ever
    /// quiescing, and a new quiesce begins only on a tick whose start
    /// staged it.
    fn advance_upgrade(&mut self) -> Result<(), RuntimeError> {
        let Some(run) = &self.upgrade else {
            return Ok(());
        };
        if run.active.is_some() {
            return self.step_quiesce();
        }
        let next = self
            .upgrade
            .as_mut()
            .expect("upgrade checked above")
            .queue
            .pop_front();
        match next {
            Some(worker) => {
                self.begin_quiesce(worker);
                Ok(())
            }
            None => {
                self.finish_upgrade();
                Ok(())
            }
        }
    }

    /// Pauses one worker's ingress at the end of the current tick: flip
    /// its breaker to [`BreakerState::Upgrading`] (the dispatcher
    /// redistributes its shard from the next pass) and send the
    /// shutdown control item that makes the worker drain its queue,
    /// seal a final snapshot, and exit.
    fn begin_quiesce(&mut self, worker: usize) {
        let tick = self.tick;
        let snapshot_tick = (self.config.snapshot_interval_ticks > 0).then_some(tick);
        let deadline = self.config.send_deadline;
        let slot = &mut self.slots[worker];
        slot.health.state = BreakerState::Upgrading;
        // Control traffic, like the snapshot cadence: not routed through
        // `send_accounted`, so it consumes no channel-send occurrences
        // and no batch accounting.
        let shutdown_sent = slot
            .sender
            .send_deadline(WorkItem::Shutdown { snapshot_tick }, deadline)
            .is_ok();
        self.push_event(worker, SupervisorEventKind::UpgradePause);
        let run = self.upgrade.as_mut().expect("upgrade active");
        let packets_at_pause = run
            .staged_packets_at_pause
            .take()
            .expect("pause was staged at tick start");
        run.active = Some(Quiesce {
            worker,
            paused_tick: tick,
            packets_at_pause,
            shutdown_sent,
        });
    }

    /// One tick of the active quiesce: retry the shutdown send if it
    /// never landed, then — once the control item is in the queue —
    /// wait out the worker's drain (bounded by the policy's wall-clock
    /// deadline), and close the quiesce out. Any failure on the forward
    /// walk flips the upgrade into rollback.
    fn step_quiesce(&mut self) -> Result<(), RuntimeError> {
        let (worker, paused_tick, packets_at_pause, shutdown_sent) = {
            let run = self.upgrade.as_ref().expect("upgrade active");
            let q = run.active.as_ref().expect("quiesce active");
            (q.worker, q.paused_tick, q.packets_at_pause, q.shutdown_sent)
        };
        if !shutdown_sent {
            // The shutdown item missed a full queue last tick; retry
            // while the worker is alive. A dead worker (chaos kill at
            // the quiesce site, or a fault racing the pause) fails the
            // quiesce.
            let snapshot_tick = (self.config.snapshot_interval_ticks > 0).then_some(paused_tick);
            let slot = &mut self.slots[worker];
            if slot.is_healthy()
                && slot
                    .sender
                    .send_deadline(
                        WorkItem::Shutdown { snapshot_tick },
                        self.config.send_deadline,
                    )
                    .is_ok()
            {
                let run = self.upgrade.as_mut().expect("upgrade active");
                run.active.as_mut().expect("quiesce active").shutdown_sent = true;
                return Ok(());
            }
            return self.complete_quiesce(worker, paused_tick, packets_at_pause, false);
        }
        // Bounded wall-clock drain: the worker processes its queued
        // tail on its own thread, so logical ticks cannot bound it.
        let drain_deadline = self
            .upgrade
            .as_ref()
            .expect("upgrade active")
            .policy
            .drain_deadline;
        let deadline = Instant::now() + drain_deadline;
        let drained = loop {
            let Some(thread) = self.slots[worker].thread.as_ref() else {
                break true;
            };
            if thread.is_finished() {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::yield_now();
        };
        if !drained {
            self.push_event(worker, SupervisorEventKind::UpgradeDrainTimeout);
        }
        self.complete_quiesce(worker, paused_tick, packets_at_pause, drained)
    }

    /// Closes out one worker's quiesce: join (or abandon) its old
    /// generation, account the drained tail and the pause, then swap it
    /// to the walk's target spec — or flip the upgrade into rollback if
    /// anything went wrong on the forward walk.
    fn complete_quiesce(
        &mut self,
        worker: usize,
        paused_tick: u64,
        packets_at_pause: u64,
        drained: bool,
    ) -> Result<(), RuntimeError> {
        {
            let slot = &mut self.slots[worker];
            if drained {
                if let Some(thread) = slot.thread.take() {
                    let _ = thread.join();
                }
            } else {
                // Wedged past the deadline (or dead before the shutdown
                // landed): force-fail so the stall's end finds a revoked
                // channel, and abandon the thread as a zombie — exactly
                // the watchdog's discipline.
                slot.domain.force_fail();
                if let Some(thread) = slot.thread.take() {
                    if thread.is_finished() {
                        let _ = thread.join();
                    } else {
                        slot.zombies.push(thread);
                    }
                }
            }
            slot.refresh_losses();
            slot.stats.clear_busy();
        }
        let drained_packets = self.slots[worker]
            .stats
            .packets_in()
            .saturating_sub(packets_at_pause);
        let pause_ticks = self.tick.saturating_sub(paused_tick);
        let clean = drained && self.slots[worker].domain.state() == DomainState::Active;
        let forward = {
            let run = self.upgrade.as_mut().expect("upgrade active");
            run.active = None;
            run.drained_packets += drained_packets;
            run.pause_ticks += pause_ticks;
            matches!(run.direction, UpgradeDirection::Forward)
        };
        if !clean && forward {
            return self.abort_upgrade(worker);
        }
        if !self.swap_worker(worker, forward)? {
            // The forward restore chaos site killed the swap.
            return self.abort_upgrade(worker);
        }
        let generation = self.slots[worker].spec_generation;
        self.upgrade
            .as_mut()
            .expect("upgrade active")
            .done
            .push(worker);
        if forward {
            self.push_event(
                worker,
                SupervisorEventKind::WorkerUpgraded {
                    generation,
                    drained_packets,
                    pause_ticks,
                },
            );
        } else {
            self.push_event(worker, SupervisorEventKind::WorkerRolledBack { generation });
        }
        Ok(())
    }

    /// Tears down one slot's domain and respawns it on the walk's spec
    /// (target when forward, old when rolling back), restoring state
    /// through the schema fence. Returns `Ok(false)` when the forward
    /// restore chaos site killed the swap — the caller flips to
    /// rollback; rollback swaps never consult the plan.
    fn swap_worker(&mut self, index: usize, forward: bool) -> Result<bool, RuntimeError> {
        use rbs_core::fault::{fire_sleep, FaultKind, FaultSite};
        let (spec, generation, migrator) = {
            let run = self.upgrade.as_ref().expect("upgrade active");
            if forward {
                (
                    run.target.clone(),
                    self.spec_generation + 1,
                    run.policy.migrator.clone(),
                )
            } else {
                (
                    run.old.clone(),
                    self.spec_generation,
                    run.policy.migrator.clone(),
                )
            }
        };
        if forward {
            let occurrence = self.slots[index].upgrade_restores;
            self.slots[index].upgrade_restores += 1;
            if let Some(plan) = self.config.plan() {
                match plan.decide(FaultSite::UpgradeRestore, index as u64, occurrence) {
                    Some(FaultKind::Panic | FaultKind::PoisonTable | FaultKind::CloseChannel) => {
                        self.slots[index].domain.force_fail();
                        return Ok(false);
                    }
                    Some(other) => fire_sleep(other),
                    None => {}
                }
            }
        }
        // The paper's teardown → spawn discipline, not an in-place
        // recover: the old generation's domain dies with everything it
        // owned, and the new spec starts in a fresh one.
        self.manager.destroy_domain(&self.slots[index].domain);
        let domain = self
            .manager
            .create_domain(format!("worker-{index}"))
            .map_err(RuntimeError::DomainCreation)?;
        self.slots[index].domain = domain;
        let initial_state = if self.config.snapshot_interval_ticks > 0 {
            self.restore_for(index, spec.state_schema(), migrator)
        } else {
            // Snapshotting off: upgrades carry no state by definition,
            // exactly like crash recovery.
            None
        };
        let recycle = self.recycler.as_ref().map(|r| r.sender.clone());
        let capacity = self.config.queue_capacity;
        let plan = self.config.plan();
        let slot = &mut self.slots[index];
        slot.spawn_seq += 1;
        let (sender, thread) = spawn_worker(
            index,
            slot.spawn_seq,
            slot.domain.clone(),
            spec.clone(),
            Arc::clone(&slot.stats),
            capacity,
            plan,
            Arc::clone(&slot.store),
            initial_state,
            recycle,
        );
        slot.sender = sender;
        slot.thread = Some(thread);
        slot.spec = spec;
        slot.spec_generation = generation;
        slot.health.reset();
        Ok(true)
    }

    /// A forward step failed: journal the abort, return the failed
    /// worker to the old spec immediately, and reverse the walk over
    /// the workers already upgraded (newest first). Chaos sites are
    /// never consulted on the way back, so rollback always completes —
    /// cold restore is its worst case, a mixed fleet is not an outcome.
    fn abort_upgrade(&mut self, failed_worker: usize) -> Result<(), RuntimeError> {
        self.push_event(failed_worker, SupervisorEventKind::UpgradeAborted);
        let swapped = self.swap_worker(failed_worker, false)?;
        debug_assert!(swapped, "rollback swaps never consult the fault plan");
        self.push_event(
            failed_worker,
            SupervisorEventKind::WorkerRolledBack {
                generation: self.slots[failed_worker].spec_generation,
            },
        );
        let run = self.upgrade.as_mut().expect("upgrade active");
        run.direction = UpgradeDirection::Rollback { failed_worker };
        run.queue = run.done.drain(..).rev().collect();
        run.done.push(failed_worker);
        Ok(())
    }

    /// The walk is over (no active quiesce, empty queue): commit the
    /// target spec fleet-wide, or close out the rollback. The fleet is
    /// uniform either way.
    fn finish_upgrade(&mut self) {
        let run = self.upgrade.take().expect("upgrade active");
        let finished_tick = self.tick;
        let outcome = match run.direction {
            UpgradeDirection::Forward => {
                self.spec = run.target;
                self.spec_generation += 1;
                self.push_event(
                    0,
                    SupervisorEventKind::UpgradeCommitted {
                        workers: run.done.len(),
                    },
                );
                UpgradeOutcome::Committed {
                    workers: run.done.len(),
                    pause_ticks: run.pause_ticks,
                    drained_packets: run.drained_packets,
                    state_items_migrated: run.items_migrated,
                    started_tick: run.started_tick,
                    finished_tick,
                }
            }
            UpgradeDirection::Rollback { failed_worker } => {
                self.push_event(
                    0,
                    SupervisorEventKind::UpgradeRolledBack {
                        workers: run.done.len(),
                    },
                );
                UpgradeOutcome::RolledBack {
                    failed_worker,
                    workers_rolled_back: run.done.len(),
                    pause_ticks: run.pause_ticks,
                    drained_packets: run.drained_packets,
                    started_tick: run.started_tick,
                    finished_tick,
                }
            }
        };
        self.upgrade_history.push(outcome);
    }

    /// Waits until every dispatched batch is either processed or
    /// accounted lost, detecting (and accounting) faults as they are
    /// discovered.
    ///
    /// Deliberately does **not** advance the supervision clock or
    /// respawn workers: drain's iteration count depends on thread
    /// timing, and letting it drive backoff schedules would make fault
    /// recovery nondeterministic. A slot waiting out its backoff has its
    /// losses accounted at fault detection, so the drain still settles.
    ///
    /// Returns `true` when fully drained within `timeout`.
    pub fn drain(&mut self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            for index in 0..self.slots.len() {
                if self.slots[index].health.state == BreakerState::Upgrading {
                    // The upgrade walk owns this slot's fault handling,
                    // but its losses must stay fresh here or a worker
                    // killed mid-quiesce would keep the drain from ever
                    // settling.
                    if !self.slots[index].is_healthy() {
                        self.slots[index].refresh_losses();
                    }
                    continue;
                }
                self.observe_slot(index);
            }
            let settled = self
                .slots
                .iter()
                .all(|s| s.stats.batches() + s.lost >= s.dispatched);
            if settled {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::yield_now();
        }
    }

    /// Point-in-time per-worker snapshots.
    pub fn snapshots(&self) -> Vec<WorkerSnapshot> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| s.snapshot(i))
            .collect()
    }

    /// Metadata of one buffered snapshot of worker `index`'s state, if
    /// that buffer holds one.
    pub fn snapshot_meta(&self, index: usize, which: Buffered) -> Option<SnapshotMeta> {
        self.slots[index]
            .store
            .lock()
            .buffered(which)
            .map(|s| s.meta())
    }

    /// Flips one bit inside a buffered snapshot of worker `index` —
    /// scripted corruption for recovery tests. Returns `false` when the
    /// buffer is empty. The next restore from that buffer must detect
    /// the damage and fall through the chain; restoring garbage is the
    /// failure mode this runtime's envelopes exist to rule out.
    pub fn corrupt_snapshot(&mut self, index: usize, which: Buffered) -> bool {
        self.slots[index].store.lock().corrupt(which)
    }

    /// Sends one out-of-cadence snapshot request to worker `index`
    /// (test/tooling path; blocks up to the send deadline). Returns
    /// whether the request was enqueued.
    pub fn request_snapshot(&mut self, index: usize) -> bool {
        let tick = self.tick;
        self.slots[index]
            .sender
            .send_deadline(WorkItem::Snapshot { tick }, self.config.send_deadline)
            .is_ok()
    }

    /// Stops all workers (orderly: queues drain first; with snapshotting
    /// on, each worker seals one final state snapshot) and joins their
    /// threads — zombies included, waiting out bounded stalls so their
    /// final batches land in the accounting. Idempotent.
    fn stop_workers(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let snapshot_tick = (self.config.snapshot_interval_ticks > 0).then_some(self.tick);
        for slot in &mut self.slots {
            // A dead worker's sender is revoked; that is fine — its
            // losses are already (or about to be) accounted.
            let _ = slot.sender.send(WorkItem::Shutdown { snapshot_tick });
        }
        let zombie_deadline = Instant::now() + Duration::from_secs(5);
        for slot in &mut self.slots {
            if let Some(thread) = slot.thread.take() {
                let _ = thread.join();
            }
            // Zombies exit on their own once their stall ends (their
            // channel is revoked). Join the ones that finish in time;
            // a truly wedged thread is abandoned and its in-flight
            // batch stays accounted as lost.
            for zombie in slot.zombies.drain(..) {
                while !zombie.is_finished() && Instant::now() < zombie_deadline {
                    std::thread::yield_now();
                }
                if zombie.is_finished() {
                    let _ = zombie.join();
                }
            }
            slot.refresh_losses();
        }
    }

    /// Stops all workers and reports merged statistics. With
    /// snapshotting on, each worker's final act is sealing a snapshot of
    /// its live state, so the report's `latest_snapshot` metadata equals
    /// the state the pipeline held at the end.
    pub fn shutdown(mut self) -> RuntimeReport {
        self.stop_workers();
        let snapshots = self.snapshots();
        let histograms = self
            .slots
            .iter()
            .map(|s| s.stats.cycle_histogram())
            .collect();
        for slot in &self.slots {
            self.manager.destroy_domain(&slot.domain);
        }
        if let Some(recycler) = &self.recycler {
            self.manager.destroy_domain(&recycler.domain);
        }
        RuntimeReport::from_snapshots(
            snapshots,
            histograms,
            self.offered_packets,
            std::mem::take(&mut self.events),
            std::mem::take(&mut self.upgrade_history),
        )
    }
}

impl Drop for ShardedRuntime {
    /// A runtime dropped without [`ShardedRuntime::shutdown`] still
    /// stops its workers cleanly — including the final state snapshot —
    /// so no worker thread outlives the value that owns its domain.
    fn drop(&mut self) {
        self.stop_workers();
        for slot in &self.slots {
            self.manager.destroy_domain(&slot.domain);
        }
        if let Some(recycler) = &self.recycler {
            self.manager.destroy_domain(&recycler.domain);
        }
    }
}

impl std::fmt::Debug for ShardedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRuntime")
            .field("workers", &self.slots.len())
            .field("queue_capacity", &self.config.queue_capacity)
            .field("tick", &self.tick)
            .field(
                "states",
                &self
                    .slots
                    .iter()
                    .map(|s| (s.domain.state(), s.health.state))
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}
