//! The sharded runtime: dispatcher, worker slots, and supervision.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rbs_netfx::{PacketBatch, PipelineSpec};
use rbs_sfi::{Domain, DomainManager, DomainSender, DomainState};

use crate::shard::shard_of_packet;
use crate::stats::{RuntimeReport, WorkerSnapshot, WorkerStats};
use crate::worker::{spawn_worker, WorkItem};

/// Construction parameters for a [`ShardedRuntime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of worker threads (= shards). Must be at least 1.
    pub workers: usize,
    /// Bounded depth of each worker's input queue, in batches; a full
    /// queue backpressures the dispatcher.
    pub queue_capacity: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
        }
    }
}

/// Errors surfaced by the runtime to its caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Domain creation failed (manager quota).
    DomainCreation(rbs_sfi::domain::DomainError),
    /// A worker slot could not be healed (its domain is destroyed).
    Unrecoverable {
        /// Shard index of the dead slot.
        worker: usize,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::DomainCreation(e) => write!(f, "creating worker domain: {e}"),
            RuntimeError::Unrecoverable { worker } => {
                write!(f, "worker {worker} is unrecoverable (domain destroyed)")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

struct WorkerSlot {
    domain: Domain,
    sender: DomainSender<WorkItem>,
    thread: Option<std::thread::JoinHandle<()>>,
    stats: Arc<WorkerStats>,
    /// Batches routed to this shard (including ones later lost).
    dispatched: u64,
    /// Batches confirmed lost to faults.
    lost: u64,
    /// Thread respawns performed by the supervisor.
    respawns: u64,
}

impl WorkerSlot {
    fn is_healthy(&self) -> bool {
        self.domain.state() == DomainState::Active && self.sender.is_open()
    }

    fn snapshot(&self, index: usize) -> WorkerSnapshot {
        WorkerSnapshot {
            index,
            state: self.domain.state(),
            generation: self.domain.generation(),
            respawns: self.respawns,
            dispatched: self.dispatched,
            processed: self.stats.batches(),
            lost: self.lost,
            packets_in: self.stats.packets_in(),
            packets_out: self.stats.packets_out(),
            drops: self.stats.drops(),
            faults: self.stats.faults(),
            stage_stats: self.stats.final_stage_stats(),
        }
    }
}

/// A multi-worker pipeline runtime with per-domain fault isolation.
///
/// The dispatcher (the thread calling [`ShardedRuntime::dispatch`])
/// flow-hashes each packet to one of N shards; every shard is a worker
/// thread owning a private [`rbs_netfx::Pipeline`] built from the shared
/// [`PipelineSpec`] and running inside its own
/// [`rbs_sfi::Domain`]. Batches cross the boundary through bounded
/// ownership-transferring channels, so a worker never shares packet
/// memory with the dispatcher or its peers.
///
/// A panic inside any worker's pipeline is caught at its domain boundary:
/// the domain faults, its channel is revoked, and *only that shard*
/// stops. The supervisor (folded into the dispatch path — there is no
/// extra thread) observes the failed state, runs the paper's recovery
/// sequence ([`Domain::recover`]), respawns the worker with a fresh
/// pipeline from the spec, and the shard's flows resume on the next
/// batch. Other workers never stall: their queues, domains, and threads
/// are untouched throughout.
pub struct ShardedRuntime {
    manager: DomainManager,
    spec: PipelineSpec,
    config: RuntimeConfig,
    slots: Vec<WorkerSlot>,
}

impl ShardedRuntime {
    /// Builds the runtime and starts all worker threads.
    pub fn new(spec: PipelineSpec, config: RuntimeConfig) -> Result<Self, RuntimeError> {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        let manager = DomainManager::new();
        let mut slots = Vec::with_capacity(config.workers);
        for index in 0..config.workers {
            let domain = manager
                .create_domain(format!("worker-{index}"))
                .map_err(RuntimeError::DomainCreation)?;
            let stats = Arc::new(WorkerStats::new());
            let (sender, thread) = spawn_worker(
                index,
                domain.clone(),
                spec.clone(),
                Arc::clone(&stats),
                config.queue_capacity,
            );
            slots.push(WorkerSlot {
                domain,
                sender,
                thread: Some(thread),
                stats,
                dispatched: 0,
                lost: 0,
                respawns: 0,
            });
        }
        Ok(Self {
            manager,
            spec,
            config,
            slots,
        })
    }

    /// Number of workers (= shards).
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Splits `batch` by flow hash and forwards each shard's packets to
    /// its worker, healing failed workers on the way.
    ///
    /// Blocks while a target queue is full (backpressure). Returns the
    /// number of batches enqueued.
    pub fn dispatch(&mut self, batch: PacketBatch) -> Result<usize, RuntimeError> {
        let n = self.slots.len();
        let mut shards: Vec<Option<PacketBatch>> = (0..n).map(|_| None).collect();
        for packet in batch {
            let s = shard_of_packet(&packet, n);
            shards[s].get_or_insert_with(PacketBatch::new).push(packet);
        }
        let mut enqueued = 0;
        for (index, shard) in shards.into_iter().enumerate() {
            if let Some(b) = shard {
                self.send_to(index, b)?;
                enqueued += 1;
            }
        }
        Ok(enqueued)
    }

    /// Sends one pre-sharded batch directly to worker `index`, healing
    /// the slot first if its last fault has not been repaired yet.
    pub fn send_to(&mut self, index: usize, batch: PacketBatch) -> Result<(), RuntimeError> {
        if !self.slots[index].is_healthy() {
            self.heal_slot(index)?;
        }
        let mut item = WorkItem::Batch(batch);
        // Two attempts: a worker that faulted after the health check
        // gets healed once, then the send must stick (a freshly spawned
        // worker has an open, empty queue).
        for attempt in 0..2 {
            match self.slots[index].sender.send(item) {
                Ok(()) => {
                    self.slots[index].dispatched += 1;
                    return Ok(());
                }
                Err((_, returned)) => {
                    if attempt == 1 {
                        return Err(RuntimeError::Unrecoverable { worker: index });
                    }
                    self.heal_slot(index)?;
                    item = returned;
                }
            }
        }
        unreachable!("send loop returns within two attempts")
    }

    /// Scans all slots and repairs any that faulted; returns the number
    /// of workers respawned.
    pub fn heal(&mut self) -> Result<usize, RuntimeError> {
        let mut healed = 0;
        for index in 0..self.slots.len() {
            if !self.slots[index].is_healthy() {
                self.heal_slot(index)?;
                healed += 1;
            }
        }
        Ok(healed)
    }

    /// The supervision sequence for one dead slot: join the dead thread,
    /// account lost batches, recover the domain (paper §3: unwind →
    /// clear table → recovery function), and respawn the worker with a
    /// fresh pipeline on a fresh channel.
    fn heal_slot(&mut self, index: usize) -> Result<(), RuntimeError> {
        let spec = self.spec.clone();
        let capacity = self.config.queue_capacity;
        let slot = &mut self.slots[index];

        if let Some(thread) = slot.thread.take() {
            // The worker loop exits right after a fault, so this join is
            // prompt; a panic *of the loop itself* would be a runtime
            // bug, but even then the slot must stay repairable.
            let _ = thread.join();
        }

        // Everything dispatched but never processed died with the
        // worker: the in-flight batch plus whatever sat in the revoked
        // queue.
        let processed = slot.stats.batches();
        slot.lost = slot.dispatched.saturating_sub(processed);

        match slot.domain.state() {
            DomainState::Active => {
                // The fault already auto-recovered (a recovery function
                // was installed) or only the thread died; just respawn.
            }
            DomainState::Failed => {
                // The runtime's recovery function: state re-init is
                // rebuilding the pipeline from the spec, which the
                // respawn below does — the domain itself carries nothing
                // else, so reactivation is all that is left.
                slot.domain.set_recovery(|_| {});
                if !slot.domain.recover() {
                    return Err(RuntimeError::Unrecoverable { worker: index });
                }
            }
            DomainState::Destroyed => {
                return Err(RuntimeError::Unrecoverable { worker: index });
            }
        }

        let (sender, thread) = spawn_worker(
            index,
            slot.domain.clone(),
            spec,
            Arc::clone(&slot.stats),
            capacity,
        );
        slot.sender = sender;
        slot.thread = Some(thread);
        slot.respawns += 1;
        Ok(())
    }

    /// Waits until every dispatched batch is either processed or
    /// accounted lost, healing faulted workers as they are discovered.
    ///
    /// Returns `true` when fully drained within `timeout`.
    pub fn drain(&mut self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let _ = self.heal();
            let settled = self
                .slots
                .iter()
                .all(|s| s.stats.batches() + s.lost >= s.dispatched);
            if settled {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::yield_now();
        }
    }

    /// Point-in-time per-worker snapshots.
    pub fn snapshots(&self) -> Vec<WorkerSnapshot> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| s.snapshot(i))
            .collect()
    }

    /// Stops all workers (orderly: queues drain first), joins their
    /// threads, and reports merged statistics.
    pub fn shutdown(mut self) -> RuntimeReport {
        for slot in &mut self.slots {
            // A dead worker's sender is revoked; that is fine — its
            // losses are already (or about to be) accounted.
            let _ = slot.sender.send(WorkItem::Shutdown);
        }
        for slot in &mut self.slots {
            if let Some(thread) = slot.thread.take() {
                let _ = thread.join();
            }
            let processed = slot.stats.batches();
            slot.lost = slot.lost.max(slot.dispatched.saturating_sub(processed));
        }
        let snapshots = self.snapshots();
        let histograms = self
            .slots
            .iter()
            .map(|s| s.stats.cycle_histogram())
            .collect();
        for slot in &self.slots {
            self.manager.destroy_domain(&slot.domain);
        }
        RuntimeReport::from_snapshots(snapshots, histograms)
    }
}

impl std::fmt::Debug for ShardedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRuntime")
            .field("workers", &self.slots.len())
            .field("queue_capacity", &self.config.queue_capacity)
            .field(
                "states",
                &self
                    .slots
                    .iter()
                    .map(|s| s.domain.state())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}
