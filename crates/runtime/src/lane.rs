//! Run-to-completion lanes with Chase–Lev work stealing.
//!
//! The dispatcher runtime ([`crate::runtime::ShardedRuntime`]) funnels
//! every packet through one thread that flow-hashes and hands batches to
//! workers over bounded channels. That serializes ingress: past ~2
//! workers the dispatcher is the bottleneck and aggregate throughput
//! *falls* as workers rise. The lane engine removes the funnel: **N
//! ingress lanes**, each one thread that
//!
//! 1. pulls shells and buffers from its **own** [`PacketPool`],
//! 2. generates its **own RSS slice** of the flow mix
//!    ([`PacketGen::rss_slice`] — the same `stable_hash % lanes` flow
//!    placement the dispatcher uses, so per-flow affinity is preserved),
//! 3. processes batches through its **own** [`Pipeline`] replica inside
//!    its **own** [`Domain`], and
//! 4. recycles buffers locally,
//!
//! with no cross-thread hand-off on the steady path. Lanes trade work
//! only when idle, by **stealing** from the top of other lanes' deques
//! ([`crate::deque`]): under a Zipf-skewed mix the hot lane's backlog is
//! drained by the cold ones instead of wedging the run.
//!
//! # Stealing and isolation
//!
//! A stolen batch crosses from the victim's domain to the thief's. The
//! thief charges [`Crossing::Steal`] with the batch's wire bytes on its
//! own domain, so the steal tax lands in the backend's cost model
//! exactly like a channel hand-off: free under `TypedSfi`, a gate spin
//! under `MpkSim`, a real memcpy under `CopyBoundary`. Victim order is
//! a knob: [`VictimOrder::RingNearest`] scans outward from the thief's
//! own index (locality-aware — neighbours first), `FixedSweep` always
//! scans from lane 0 (the contrast case: every thief contends on the
//! same victims).
//!
//! # Accounting
//!
//! Provenance survives stealing: every queued batch carries its origin
//! lane, and whoever processes (or sheds, or loses) it credits the
//! *origin's* ledger. Per origin lane, exactly
//!
//! ```text
//! offered == processed + lost + shed
//! ```
//!
//! holds — `processed` counts work done by any lane, `lost` is batches
//! that died in a domain fault, `shed` is backlog drained unprocessed
//! by a lane that exhausted its respawn budget. The executor-side view
//! (batches a lane's CPU actually ran, split local/stolen) is reported
//! separately per lane.
//!
//! # Faults
//!
//! A panic inside a lane's pipeline unwinds to its domain boundary like
//! any worker fault; the in-flight batch is accounted lost, the domain
//! is destroyed, and the lane rebuilds a cold pipeline in a fresh
//! domain (run-to-completion lanes have no snapshot cadence; warm
//! recovery stays the dispatcher runtime's job). Past `max_respawns`
//! the lane goes dead: it sheds its remaining backlog and stops
//! offering its deque.
//!
//! # Live upgrade
//!
//! [`LaneRuntime::upgrade`] applies an equal-schema spec to every lane
//! without stopping traffic. A lane entering its upgrade (1) closes its
//! deque to thieves, (2) drains the stolen-in batches it already holds
//! through the *old* pipeline, (3) seals a state snapshot, (4) swaps to
//! a fresh domain and the new spec with state restored, and (5) reopens
//! its deque — journalled as [`LaneEvent`]s in exactly that order so
//! tests can pin the protocol.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rbs_core::fault::FaultPlan;
use rbs_core::histogram::LogHistogram;
use rbs_core::stats::Summary;
use rbs_netfx::pktgen::{PacketGen, TrafficConfig};
use rbs_netfx::pool::{PacketPool, PoolStats};
use rbs_netfx::{PacketBatch, Pipeline, PipelineSpec};
use rbs_sfi::backend::{BackendKind, BackendTotals, Crossing};
use rbs_sfi::{Domain, DomainManager, ThreadAttachment};

use crate::deque::{LaneDeque, Steal, Stealer};
use crate::stats::CYCLE_HIST_PRECISION;

/// In what order an idle lane scans victims for work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimOrder {
    /// Scan outward from the thief's own index around the lane ring:
    /// distance-1 neighbours first (alternating above/below), then
    /// distance 2, … Locality-aware: steals stay topologically close,
    /// and thieves starting from different indices spread over
    /// different victims instead of contending.
    RingNearest,
    /// Always scan from lane 0 upward. The contrast knob: every thief
    /// hammers the same low-index victims first.
    FixedSweep,
}

/// Configuration for a [`LaneRuntime`].
#[derive(Clone)]
pub struct LaneConfig {
    /// Number of run-to-completion lanes (threads).
    pub lanes: usize,
    /// The whole-mix traffic description; each lane generates its RSS
    /// slice of it ([`PacketGen::rss_slice`]).
    pub traffic: TrafficConfig,
    /// Whole-mix batch budget, split across lanes proportionally to
    /// each slice's probability mass (so a Zipf mix loads lanes
    /// unevenly, exactly as RSS would).
    pub total_batches: u64,
    /// Packets per generated batch.
    pub batch_size: usize,
    /// Batches a lane builds per generation turn before draining its
    /// deque again — the window thieves can steal from.
    pub build_burst: usize,
    /// Maximum batches a thief takes per steal round; `0` disables
    /// stealing entirely.
    pub steal_batch: usize,
    /// Victim scan order when stealing.
    pub victim_order: VictimOrder,
    /// Isolation backend every lane domain is created under.
    pub backend: BackendKind,
    /// Domain rebuilds a lane attempts before going dead.
    pub max_respawns: u32,
    /// Deque ring capacity; `0` derives `2 × build_burst` (never grows
    /// in steady state).
    pub deque_capacity: usize,
    /// Byte capacity of pooled packet buffers.
    pub pool_slab_bytes: usize,
    /// Buffers prewarmed into each lane's pool; `0` derives
    /// `(build_burst + 2) × batch_size`.
    pub pool_prewarm: usize,
    /// When set, each lane first runs this many whole-mix batches
    /// (split like `total_batches`) as warmup, then parks on a
    /// rendezvous until the driver calls
    /// [`LaneRuntime::wait_warmed`] + [`LaneRuntime::release_warm`];
    /// lanes also park before exiting until
    /// [`LaneRuntime::wait_done`] + [`LaneRuntime::release_exit`].
    /// This brackets a steady-state window for allocation counting.
    pub warmup_batches: Option<u64>,
    /// Deterministic fault plan installed as each lane thread's ambient
    /// plan (stream = lane index), mirroring the dispatcher runtime.
    #[cfg(feature = "fault-injection")]
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for LaneConfig {
    fn default() -> Self {
        Self {
            lanes: 1,
            traffic: TrafficConfig::default(),
            total_batches: 64,
            batch_size: 64,
            build_burst: 4,
            steal_batch: 2,
            victim_order: VictimOrder::RingNearest,
            backend: BackendKind::TypedSfi,
            max_respawns: 3,
            deque_capacity: 0,
            pool_slab_bytes: 2048,
            pool_prewarm: 0,
            warmup_batches: None,
            #[cfg(feature = "fault-injection")]
            faults: None,
        }
    }
}

impl LaneConfig {
    fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        #[cfg(feature = "fault-injection")]
        {
            self.faults.clone()
        }
        #[cfg(not(feature = "fault-injection"))]
        {
            None
        }
    }

    fn deque_capacity_for(&self) -> usize {
        if self.deque_capacity > 0 {
            self.deque_capacity
        } else {
            self.build_burst * 2
        }
    }

    fn pool_prewarm_for(&self) -> usize {
        if self.pool_prewarm > 0 {
            self.pool_prewarm
        } else {
            (self.build_burst + 2) * self.batch_size
        }
    }
}

/// One entry in a lane's protocol journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaneEvent {
    /// The lane closed its deque to thieves (upgrade step 1).
    StealsClosed,
    /// The lane processed the stolen-in batches it held through the old
    /// pipeline before snapshotting (upgrade step 2).
    StolenDrained {
        /// Stolen-in batches drained.
        batches: usize,
    },
    /// The lane sealed its pre-swap state snapshot (upgrade step 3).
    SnapshotSealed {
        /// State items captured.
        items: u64,
    },
    /// The new spec restored state but no longer fit; the lane counted
    /// an import failure and started the new generation cold.
    UpgradeColdFallback,
    /// The lane committed the upgrade and reopened its deque.
    UpgradeCommitted {
        /// The upgrade epoch the lane now runs.
        epoch: u64,
    },
    /// A domain fault was survived: fresh domain, cold pipeline.
    Respawned {
        /// Rebuild count (1 = first respawn).
        seq: u32,
    },
    /// The respawn budget is exhausted; the lane sheds from here on.
    Dead,
}

/// Per-origin-lane packet ledger: every counter is credited by whoever
/// *handles* the origin's traffic, not who generated it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneLedgerSnapshot {
    /// Packets this lane generated into its deque.
    pub offered: u64,
    /// Of those, packets that entered a pipeline (on any lane).
    pub processed: u64,
    /// Packets that made it out of a pipeline.
    pub out: u64,
    /// Packets dropped by pipeline stages (policy, not failure).
    pub drops: u64,
    /// Packets destroyed by a domain fault mid-batch.
    pub lost: u64,
    /// Packets drained unprocessed by a dead lane.
    pub shed: u64,
    /// Of `processed`, packets run by a *different* lane (stolen work).
    pub stolen: u64,
}

impl LaneLedgerSnapshot {
    /// `offered - processed - lost - shed`: zero when conservation
    /// holds for this origin (no loss, no duplication).
    pub fn unaccounted(&self) -> i128 {
        self.offered as i128 - self.processed as i128 - self.lost as i128 - self.shed as i128
    }
}

#[derive(Default)]
struct LaneLedger {
    offered: AtomicU64,
    processed: AtomicU64,
    out: AtomicU64,
    drops: AtomicU64,
    lost: AtomicU64,
    shed: AtomicU64,
    stolen: AtomicU64,
}

impl LaneLedger {
    fn snapshot(&self) -> LaneLedgerSnapshot {
        LaneLedgerSnapshot {
            offered: self.offered.load(Ordering::Acquire),
            processed: self.processed.load(Ordering::Acquire),
            out: self.out.load(Ordering::Acquire),
            drops: self.drops.load(Ordering::Acquire),
            lost: self.lost.load(Ordering::Acquire),
            shed: self.shed.load(Ordering::Acquire),
            stolen: self.stolen.load(Ordering::Acquire),
        }
    }
}

/// A queued unit of work: one batch plus the lane that generated it.
struct LaneBatch {
    batch: PacketBatch,
    origin: usize,
}

struct PendingUpgrade {
    spec: PipelineSpec,
    epoch: u64,
}

/// Cross-thread state for one lane.
struct LaneShared {
    stealer: Stealer<LaneBatch>,
    ledger: LaneLedger,
    upgrade: Mutex<Option<PendingUpgrade>>,
    upgrade_requested: AtomicBool,
    /// Highest upgrade epoch this lane has committed.
    epoch: AtomicU64,
    /// Set when the lane thread is about to return.
    finished: AtomicBool,
}

/// State shared by all lanes and the controller.
struct Shared {
    lanes: Vec<LaneShared>,
    /// Lanes that may still push to their deques. Stealing lanes may
    /// only terminate once this reaches zero and every deque is empty.
    generating: AtomicUsize,
    /// Rendezvous: lanes warmed up / released into the measured window.
    warmed: AtomicUsize,
    warm_released: AtomicBool,
    /// Rendezvous: lanes done with measured work / released to exit.
    done: AtomicUsize,
    exit_released: AtomicBool,
}

/// What one lane reports when it exits.
#[derive(Debug, Clone)]
pub struct LaneOutcome {
    /// Lane index.
    pub lane: usize,
    /// Batch quota assigned to this lane (share-proportional split).
    pub quota_batches: u64,
    /// Flows in this lane's RSS slice.
    pub slice_flows: usize,
    /// This lane's probability mass of the whole mix.
    pub share: f64,
    /// Batches this lane's CPU executed (local + stolen).
    pub executed_batches: u64,
    /// Packets this lane's CPU executed.
    pub executed_packets: u64,
    /// Cycles spent inside `run_batch` on this lane.
    pub executed_cycles: u64,
    /// Per-batch cycle histogram, the lane-side twin of the dispatcher
    /// path's `WorkerStats` histogram (same precision, mergeable).
    pub cycle_hist: LogHistogram,
    /// Batches this lane stole from other deques.
    pub stolen_in_batches: u64,
    /// Packets in those stolen batches.
    pub stolen_in_packets: u64,
    /// Wire bytes charged as [`Crossing::Steal`] by this lane.
    pub steal_bytes: u64,
    /// Domain faults observed on this lane.
    pub faults: u64,
    /// Domain rebuilds performed.
    pub respawns: u32,
    /// Upgrade state restores that fell back to a cold build.
    pub import_failures: u64,
    /// True when the lane exhausted its respawn budget.
    pub dead: bool,
    /// Deepest the lane's own deque ever got.
    pub deque_hwm: usize,
    /// The lane pool's traffic counters. With stealing, buffers migrate
    /// between pools (a thief recycles into its own), so per-lane
    /// `taken - returned` is not meaningful — only the fleet-wide sum
    /// is (see [`LaneReport::outstanding_buffers`]).
    pub pool: PoolStats,
    /// Protocol journal (upgrades, respawns, death).
    pub events: Vec<LaneEvent>,
}

/// Merged end-of-run report for a lane fleet.
#[derive(Debug, Clone)]
pub struct LaneReport {
    /// Per-lane executor-side outcomes, indexed by lane.
    pub lanes: Vec<LaneOutcome>,
    /// Per-origin-lane ledgers, indexed by origin lane.
    pub ledgers: Vec<LaneLedgerSnapshot>,
    /// Backend the lane domains ran under.
    pub backend: BackendKind,
    /// Aggregate crossing counters from the shared backend (includes
    /// the steal tax).
    pub backend_totals: BackendTotals,
}

impl LaneReport {
    /// Total packets generated across all lanes.
    pub fn offered(&self) -> u64 {
        self.ledgers.iter().map(|l| l.offered).sum()
    }

    /// Total packets that entered a pipeline.
    pub fn processed(&self) -> u64 {
        self.ledgers.iter().map(|l| l.processed).sum()
    }

    /// Total packets out of pipelines.
    pub fn packets_out(&self) -> u64 {
        self.ledgers.iter().map(|l| l.out).sum()
    }

    /// Total packets destroyed by faults.
    pub fn lost(&self) -> u64 {
        self.ledgers.iter().map(|l| l.lost).sum()
    }

    /// Total packets shed unprocessed by dead lanes.
    pub fn shed(&self) -> u64 {
        self.ledgers.iter().map(|l| l.shed).sum()
    }

    /// Total packets processed on a lane other than their origin.
    pub fn stolen(&self) -> u64 {
        self.ledgers.iter().map(|l| l.stolen).sum()
    }

    /// Summary of per-batch processing cycles merged across all lanes,
    /// `None` when no lane executed a batch — the same shape the
    /// dispatcher path reports via `RuntimeReport::cycles`.
    pub fn cycles(&self) -> Option<Summary> {
        let mut merged = LogHistogram::new(CYCLE_HIST_PRECISION);
        for lane in &self.lanes {
            merged.merge(&lane.cycle_hist);
        }
        merged.summary()
    }

    /// `offered - processed - lost - shed` over the whole fleet: zero
    /// iff every generated packet was handled exactly once.
    pub fn unaccounted_packets(&self) -> i128 {
        self.ledgers.iter().map(|l| l.unaccounted()).sum()
    }

    /// Fleet-wide buffers checked out of pools and never returned to
    /// any pool (cross-lane recycling nets out in the sum).
    pub fn outstanding_buffers(&self) -> i128 {
        let taken: i128 = self.lanes.iter().map(|l| l.pool.taken as i128).sum();
        let returned: i128 = self.lanes.iter().map(|l| l.pool.returned as i128).sum();
        taken - returned
    }

    /// Fraction of offered packets that came out of a pipeline.
    pub fn goodput(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            return 1.0;
        }
        self.packets_out() as f64 / offered as f64
    }
}

/// Typed rejection of a [`LaneRuntime::upgrade`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaneUpgradeError {
    /// The proposed spec declares a different state schema. Lane
    /// upgrades restore state directly (no migrator plumbing — that is
    /// the dispatcher runtime's job), so only equal-schema targets are
    /// accepted, and they are rejected before any lane is touched.
    IncompatibleSchema {
        /// Schema the fleet is running.
        running: u32,
        /// Schema the proposed spec declares.
        proposed: u32,
    },
    /// A lane failed to acknowledge the upgrade before the deadline.
    Timeout {
        /// The unresponsive lane.
        lane: usize,
    },
}

impl std::fmt::Display for LaneUpgradeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaneUpgradeError::IncompatibleSchema { running, proposed } => write!(
                f,
                "lane upgrade requires an equal state schema: running {running}, proposed {proposed}"
            ),
            LaneUpgradeError::Timeout { lane } => {
                write!(f, "lane {lane} did not acknowledge the upgrade in time")
            }
        }
    }
}

impl std::error::Error for LaneUpgradeError {}

/// How one lane finished an upgrade walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneUpgradeOutcome {
    /// The lane committed the new spec (a dead lane adopts the epoch
    /// without a pipeline so the fleet still lands uniform).
    Upgraded {
        /// The lane.
        lane: usize,
    },
    /// The lane had already finished its run before the request landed.
    Finished {
        /// The lane.
        lane: usize,
    },
}

/// A running fleet of run-to-completion lanes.
///
/// Construct with [`start`](Self::start), optionally
/// [`upgrade`](Self::upgrade) it mid-run, then [`join`](Self::join) for
/// the merged [`LaneReport`]. [`run`](Self::run) is the one-shot
/// convenience.
pub struct LaneRuntime {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<LaneOutcome>>,
    manager: Arc<DomainManager>,
    backend: BackendKind,
    schema: u32,
    next_epoch: AtomicU64,
    lanes: usize,
}

impl LaneRuntime {
    /// Spawns `config.lanes` lane threads, each immediately generating
    /// and processing its RSS slice of `config.traffic`.
    ///
    /// # Panics
    ///
    /// Panics on a zero lane count, batch size, burst, or batch budget.
    pub fn start(spec: PipelineSpec, config: LaneConfig) -> Self {
        assert!(config.lanes > 0, "lane count must be positive");
        assert!(config.batch_size > 0, "batch size must be positive");
        assert!(config.build_burst > 0, "build burst must be positive");
        assert!(config.total_batches > 0, "batch budget must be positive");

        let manager = Arc::new(DomainManager::with_backend_kind(config.backend));
        let slices: Vec<PacketGen> = (0..config.lanes)
            .map(|lane| PacketGen::rss_slice(config.traffic.clone(), lane, config.lanes))
            .collect();
        let shares: Vec<f64> = slices.iter().map(|g| g.share()).collect();
        let quotas = split_quota(config.total_batches, &shares);
        let warmups = match config.warmup_batches {
            Some(total) => split_quota(total, &shares),
            None => vec![0; config.lanes],
        };

        let mut deques = Vec::with_capacity(config.lanes);
        let mut lane_shared = Vec::with_capacity(config.lanes);
        for _ in 0..config.lanes {
            let (deque, stealer) = LaneDeque::with_capacity(config.deque_capacity_for());
            deques.push(deque);
            lane_shared.push(LaneShared {
                stealer,
                ledger: LaneLedger::default(),
                upgrade: Mutex::new(None),
                upgrade_requested: AtomicBool::new(false),
                epoch: AtomicU64::new(0),
                finished: AtomicBool::new(false),
            });
        }
        let shared = Arc::new(Shared {
            lanes: lane_shared,
            generating: AtomicUsize::new(config.lanes),
            warmed: AtomicUsize::new(0),
            warm_released: AtomicBool::new(false),
            done: AtomicUsize::new(0),
            exit_released: AtomicBool::new(false),
        });

        let schema = spec.state_schema();
        let handles = deques
            .into_iter()
            .zip(slices)
            .enumerate()
            .map(|(index, (deque, gen))| {
                // Everything thread-local (domain, pipeline, pool wiring)
                // is constructed *inside* the lane thread — a lane's
                // pipeline belongs to its CPU for the whole run, exactly
                // like the dispatcher's workers.
                let spec = spec.clone();
                let shared = Arc::clone(&shared);
                let manager = Arc::clone(&manager);
                let cfg = config.clone();
                let quota = quotas[index];
                let warmup = warmups[index];
                let plan = config.fault_plan();
                std::thread::Builder::new()
                    .name(format!("rbs-lane-{index}"))
                    .spawn(move || {
                        let run = move || {
                            LaneCtx::new(
                                index, deque, gen, quota, warmup, spec, shared, manager, cfg,
                            )
                            .run()
                        };
                        match plan {
                            Some(plan) => rbs_core::fault::scoped_stream(plan, index as u64, run),
                            None => run(),
                        }
                    })
                    .expect("spawning lane thread")
            })
            .collect();

        LaneRuntime {
            shared,
            handles,
            manager,
            backend: config.backend,
            schema,
            next_epoch: AtomicU64::new(0),
            lanes: config.lanes,
        }
    }

    /// One-shot: start, run to completion, report.
    pub fn run(spec: PipelineSpec, config: LaneConfig) -> LaneReport {
        Self::start(spec, config).join()
    }

    /// Blocks until every lane has parked on the warmup rendezvous
    /// (requires `warmup_batches`).
    pub fn wait_warmed(&self) {
        while self.shared.warmed.load(Ordering::Acquire) < self.lanes {
            std::thread::yield_now();
        }
    }

    /// Releases warmed lanes into the measured window.
    pub fn release_warm(&self) {
        self.shared.warm_released.store(true, Ordering::Release);
    }

    /// Blocks until every lane has finished its measured work and
    /// parked on the exit rendezvous (requires `warmup_batches`).
    pub fn wait_done(&self) {
        while self.shared.done.load(Ordering::Acquire) < self.lanes {
            std::thread::yield_now();
        }
    }

    /// Releases parked lanes to exit.
    pub fn release_exit(&self) {
        self.shared.exit_released.store(true, Ordering::Release);
    }

    /// Rolls an equal-schema spec onto every lane without stopping
    /// traffic; returns when the whole fleet runs the new epoch.
    ///
    /// Each lane performs close-steals → drain-stolen → snapshot →
    /// fresh-domain swap → reopen (see module docs). Lanes that already
    /// finished are reported [`LaneUpgradeOutcome::Finished`]; dead
    /// lanes adopt the epoch without a pipeline. The fleet is never
    /// left mixed: either every live lane lands on the new epoch or the
    /// call errs.
    pub fn upgrade(
        &self,
        new_spec: PipelineSpec,
    ) -> Result<Vec<LaneUpgradeOutcome>, LaneUpgradeError> {
        let proposed = new_spec.state_schema();
        if proposed != self.schema {
            return Err(LaneUpgradeError::IncompatibleSchema {
                running: self.schema,
                proposed,
            });
        }
        let epoch = self.next_epoch.fetch_add(1, Ordering::AcqRel) + 1;
        for lane in &self.shared.lanes {
            *lane.upgrade.lock() = Some(PendingUpgrade {
                spec: new_spec.clone(),
                epoch,
            });
            lane.upgrade_requested.store(true, Ordering::Release);
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut outcomes = Vec::with_capacity(self.lanes);
        for (index, lane) in self.shared.lanes.iter().enumerate() {
            loop {
                if lane.epoch.load(Ordering::Acquire) >= epoch {
                    outcomes.push(LaneUpgradeOutcome::Upgraded { lane: index });
                    break;
                }
                if lane.finished.load(Ordering::Acquire) {
                    outcomes.push(LaneUpgradeOutcome::Finished { lane: index });
                    break;
                }
                if Instant::now() > deadline {
                    return Err(LaneUpgradeError::Timeout { lane: index });
                }
                std::thread::yield_now();
            }
        }
        Ok(outcomes)
    }

    /// Joins every lane and merges the report.
    pub fn join(self) -> LaneReport {
        let lanes: Vec<LaneOutcome> = self
            .handles
            .into_iter()
            .map(|h| h.join().expect("lane thread panicked outside its domain"))
            .collect();
        let ledgers = self
            .shared
            .lanes
            .iter()
            .map(|l| l.ledger.snapshot())
            .collect();
        LaneReport {
            lanes,
            ledgers,
            backend: self.backend,
            backend_totals: self.manager.backend_totals(),
        }
    }
}

/// Splits `total` into per-lane quotas proportional to `shares`
/// (floor + largest-remainder, deterministic tie-break by index), so
/// the quotas sum to exactly `total` and a zero-share lane gets zero.
fn split_quota(total: u64, shares: &[f64]) -> Vec<u64> {
    let raw: Vec<f64> = shares.iter().map(|s| total as f64 * s.max(0.0)).collect();
    let mut quotas: Vec<u64> = raw.iter().map(|r| r.floor() as u64).collect();
    let assigned: u64 = quotas.iter().sum();
    let mut remainder = total.saturating_sub(assigned);
    // Hand leftovers to the largest fractional parts first.
    let mut order: Vec<usize> = (0..shares.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = raw[a] - raw[a].floor();
        let fb = raw[b] - raw[b].floor();
        fb.partial_cmp(&fa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    for &i in &order {
        if remainder == 0 {
            break;
        }
        // Never assign work to a lane with no flows to draw from.
        if shares[i] > 0.0 {
            quotas[i] += 1;
            remainder -= 1;
        }
    }
    quotas
}

/// The `step`-th victim (0-based) lane `me` of `lanes` scans under
/// `order`. Steps `0..lanes-1` enumerate every other lane exactly once.
fn victim_at(order: VictimOrder, me: usize, lanes: usize, step: usize) -> usize {
    match order {
        VictimOrder::RingNearest => {
            // 0 → +1, 1 → -1, 2 → +2, 3 → -2, … around the ring; for
            // even lane counts the last step keeps only the +distance
            // victim (the -distance one coincides with it).
            let distance = step / 2 + 1;
            if step.is_multiple_of(2) {
                (me + distance) % lanes
            } else {
                (me + lanes - (distance % lanes)) % lanes
            }
        }
        VictimOrder::FixedSweep => {
            if step >= me {
                step + 1
            } else {
                step
            }
        }
    }
}

/// Which generation window the lane is in.
#[derive(PartialEq, Eq)]
enum Phase {
    Warmup,
    Measured,
}

/// Everything a lane thread owns.
struct LaneCtx {
    index: usize,
    cfg: LaneConfig,
    shared: Arc<Shared>,
    manager: Arc<DomainManager>,
    deque: LaneDeque<LaneBatch>,
    gen: PacketGen,
    pool: PacketPool,
    spec: PipelineSpec,
    domain: Domain,
    pipeline: Pipeline,
    /// Keeps the thread dedicated to the current domain; replaced on
    /// every domain swap.
    attachment: Option<ThreadAttachment>,
    stolen_pending: Vec<LaneBatch>,
    phase: Phase,
    quota_remaining: u64,
    measured_quota: u64,
    quota_total: u64,
    announced_done: bool,
    dead: bool,
    // Executor-side counters.
    executed_batches: u64,
    executed_packets: u64,
    executed_cycles: u64,
    cycle_hist: LogHistogram,
    stolen_in_batches: u64,
    stolen_in_packets: u64,
    steal_bytes: u64,
    faults: u64,
    respawns: u32,
    import_failures: u64,
    deque_hwm: usize,
    slice_flows: usize,
    share: f64,
    events: Vec<LaneEvent>,
}

impl LaneCtx {
    #[expect(
        clippy::too_many_arguments,
        reason = "internal constructor wiring one lane's full ownership"
    )]
    fn new(
        index: usize,
        deque: LaneDeque<LaneBatch>,
        gen: PacketGen,
        quota: u64,
        warmup: u64,
        spec: PipelineSpec,
        shared: Arc<Shared>,
        manager: Arc<DomainManager>,
        cfg: LaneConfig,
    ) -> Self {
        let mut pool = PacketPool::new(cfg.pool_slab_bytes, cfg.pool_prewarm_for().max(1));
        pool.prewarm(cfg.pool_prewarm_for());
        pool.prewarm_shells(cfg.build_burst + 4, cfg.batch_size);
        let domain = manager
            .create_domain(format!("lane-{index}"))
            .expect("creating lane domain");
        let pipeline = spec.build();
        let slice_flows = gen.flows_in_slice();
        let share = gen.share();
        // With rendezvous enabled every lane goes through the warmup
        // phase — even on a zero warmup quota — so the warm barrier
        // counts all of them.
        let (phase, quota_remaining) = if cfg.warmup_batches.is_some() {
            (Phase::Warmup, warmup)
        } else {
            (Phase::Measured, quota)
        };
        LaneCtx {
            index,
            shared,
            manager,
            deque,
            gen,
            pool,
            spec,
            domain,
            pipeline,
            attachment: None,
            stolen_pending: Vec::with_capacity(cfg.steal_batch.max(1)),
            phase,
            quota_remaining,
            measured_quota: quota,
            quota_total: quota,
            announced_done: false,
            dead: false,
            executed_batches: 0,
            executed_packets: 0,
            executed_cycles: 0,
            cycle_hist: LogHistogram::new(CYCLE_HIST_PRECISION),
            stolen_in_batches: 0,
            stolen_in_packets: 0,
            steal_bytes: 0,
            faults: 0,
            respawns: 0,
            import_failures: 0,
            deque_hwm: 0,
            slice_flows,
            share,
            events: Vec::with_capacity(16),
            cfg,
        }
    }

    fn me(&self) -> &LaneShared {
        &self.shared.lanes[self.index]
    }

    fn ledger(&self, origin: usize) -> &LaneLedger {
        &self.shared.lanes[origin].ledger
    }

    fn run(mut self) -> LaneOutcome {
        self.attachment = self.domain.attach_thread().ok();
        loop {
            if self.me().upgrade_requested.load(Ordering::Acquire) {
                self.handle_upgrade();
            }
            if self.dead {
                break;
            }
            if let Some(item) = self.stolen_pending.pop() {
                self.process(item);
                continue;
            }
            if let Some(item) = self.deque.pop() {
                self.process(item);
                continue;
            }
            if self.quota_remaining > 0 {
                self.generate_burst();
                continue;
            }
            if self.phase == Phase::Warmup {
                // Own warmup work fully drained: park until the driver
                // opens the measured window.
                self.shared.warmed.fetch_add(1, Ordering::AcqRel);
                while !self.shared.warm_released.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                self.phase = Phase::Measured;
                self.quota_remaining = self.measured_quota;
                continue;
            }
            self.mark_done_generating();
            if self.cfg.steal_batch == 0 || self.cfg.lanes == 1 {
                break;
            }
            if self.steal_round() {
                continue;
            }
            if self.shared.generating.load(Ordering::Acquire) == 0 && self.all_deques_empty() {
                break;
            }
            std::thread::yield_now();
        }
        self.exit_cleanup()
    }

    /// Builds up to `build_burst` batches of this lane's slice into its
    /// deque — the window thieves can see.
    fn generate_burst(&mut self) {
        if self.gen.flows_in_slice() == 0 {
            // Degenerate slice (fewer flows than lanes): nothing to
            // build; quotas for such lanes are already zero.
            self.quota_remaining = 0;
            return;
        }
        let burst = (self.cfg.build_burst as u64).min(self.quota_remaining);
        for _ in 0..burst {
            let batch = self
                .gen
                .next_batch_from_pool(self.cfg.batch_size, &mut self.pool);
            self.ledger(self.index)
                .offered
                .fetch_add(batch.len() as u64, Ordering::AcqRel);
            self.deque.push(LaneBatch {
                batch,
                origin: self.index,
            });
        }
        self.quota_remaining -= burst;
        self.deque_hwm = self.deque_hwm.max(self.deque.len());
    }

    /// Runs one batch to completion, crediting its origin's ledger.
    fn process(&mut self, item: LaneBatch) {
        let LaneBatch { batch, origin } = item;
        let n_in = batch.len() as u64;
        if self.dead {
            self.ledger(origin).shed.fetch_add(n_in, Ordering::AcqRel);
            self.pool.recycle_batch(batch);
            return;
        }
        let stolen = origin != self.index;
        let start = rbs_core::cycles::rdtsc();
        match self.domain.execute(|| self.pipeline.run_batch(batch)) {
            Ok(out) => {
                let cycles = rbs_core::cycles::rdtsc().saturating_sub(start);
                let n_out = out.len() as u64;
                // Recycle into *this* lane's pool: with stealing,
                // buffers follow the CPU that freed them.
                self.pool.recycle_batch(out);
                let ledger = self.ledger(origin);
                ledger.processed.fetch_add(n_in, Ordering::AcqRel);
                ledger.out.fetch_add(n_out, Ordering::AcqRel);
                ledger.drops.fetch_add(n_in - n_out, Ordering::AcqRel);
                if stolen {
                    ledger.stolen.fetch_add(n_in, Ordering::AcqRel);
                }
                self.executed_batches += 1;
                self.executed_packets += n_in;
                self.executed_cycles += cycles;
                self.cycle_hist.record(cycles);
                if stolen {
                    self.stolen_in_batches += 1;
                    self.stolen_in_packets += n_in;
                }
            }
            Err(_) => {
                // The batch moved into the domain and died with it.
                self.ledger(origin).lost.fetch_add(n_in, Ordering::AcqRel);
                self.faults += 1;
                self.respawn_or_die();
            }
        }
    }

    /// Tears down the faulted domain and rebuilds cold, or goes dead
    /// once the budget is spent.
    fn respawn_or_die(&mut self) {
        self.attachment = None;
        self.manager.destroy_domain(&self.domain);
        if self.respawns >= self.cfg.max_respawns {
            self.dead = true;
            self.events.push(LaneEvent::Dead);
            return;
        }
        self.respawns += 1;
        let domain = self
            .manager
            .create_domain(format!("lane-{}-g{}", self.index, self.respawns))
            .expect("recreating lane domain");
        self.attachment = domain.attach_thread().ok();
        self.pipeline = self.spec.build();
        self.domain = domain;
        self.events
            .push(LaneEvent::Respawned { seq: self.respawns });
    }

    /// One steal attempt: scan victims in the configured order, take up
    /// to `steal_batch` items from the first lane that yields any.
    /// Returns true when work was taken.
    fn steal_round(&mut self) -> bool {
        let lanes = self.cfg.lanes;
        for step in 0..lanes - 1 {
            let victim = self.victim_at(step);
            let stealer = &self.shared.lanes[victim].stealer;
            while self.stolen_pending.len() < self.cfg.steal_batch {
                match stealer.steal() {
                    Steal::Taken(item) => {
                        let bytes = item.batch.total_bytes();
                        // The batch is crossing domains: bill the steal
                        // tax to the CPU doing the work.
                        self.domain.meter_crossing(Crossing::Steal, bytes);
                        self.steal_bytes += bytes as u64;
                        self.stolen_pending.push(item);
                    }
                    Steal::Retry => continue,
                    Steal::Empty | Steal::Closed => break,
                }
            }
            if !self.stolen_pending.is_empty() {
                return true;
            }
        }
        false
    }

    /// The `step`-th victim in the configured scan order.
    fn victim_at(&self, step: usize) -> usize {
        victim_at(self.cfg.victim_order, self.index, self.cfg.lanes, step)
    }

    fn all_deques_empty(&self) -> bool {
        self.shared.lanes.iter().all(|l| l.stealer.is_empty())
    }

    fn mark_done_generating(&mut self) {
        if !self.announced_done {
            self.announced_done = true;
            self.shared.generating.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// The lane-side upgrade protocol: close → drain stolen-in →
    /// snapshot → fresh-domain swap with state restore → reopen.
    fn handle_upgrade(&mut self) {
        let pending = self.me().upgrade.lock().take();
        self.me().upgrade_requested.store(false, Ordering::Release);
        let Some(PendingUpgrade { spec, epoch }) = pending else {
            return;
        };
        if self.dead {
            // No pipeline to swap; adopt the epoch so the fleet still
            // lands uniform.
            self.me().epoch.store(epoch, Ordering::Release);
            return;
        }
        // 1. Stop advertising the deque: thieves must not pull work
        //    from a lane whose pipeline is mid-swap.
        self.deque.close_steals();
        self.events.push(LaneEvent::StealsClosed);
        // 2. Drain stolen-in batches through the *old* pipeline — they
        //    were claimed from other lanes and must not sit across the
        //    swap (nor ever be re-queued).
        let drained = self.stolen_pending.len();
        while let Some(item) = self.stolen_pending.pop() {
            self.process(item);
            if self.dead {
                // A drain fault spent the respawn budget: shed the rest
                // (`process` does, once dead) and adopt the epoch.
                while let Some(item) = self.stolen_pending.pop() {
                    self.process(item);
                }
                self.me().epoch.store(epoch, Ordering::Release);
                self.deque.open_steals();
                return;
            }
        }
        self.events
            .push(LaneEvent::StolenDrained { batches: drained });
        // 3. Seal the old generation's state.
        let snapshot = match self.domain.execute(|| self.pipeline.export_state()) {
            Ok(cp) => Some(cp),
            Err(_) => {
                self.faults += 1;
                self.respawn_or_die();
                None
            }
        };
        let items = self.pipeline.state_items();
        self.events.push(LaneEvent::SnapshotSealed { items });
        // 4. Fresh domain, new spec, state restored (cold on mismatch —
        //    counted, never half-applied).
        self.attachment = None;
        self.manager.destroy_domain(&self.domain);
        let domain = self
            .manager
            .create_domain(format!("lane-{}-e{}", self.index, epoch))
            .expect("recreating lane domain for upgrade");
        self.attachment = domain.attach_thread().ok();
        self.domain = domain;
        self.pipeline = match snapshot.as_ref().map(|cp| spec.build_with_state(cp)) {
            Some(Ok(p)) => p,
            Some(Err(_)) => {
                self.import_failures += 1;
                self.events.push(LaneEvent::UpgradeColdFallback);
                spec.build()
            }
            None => {
                self.events.push(LaneEvent::UpgradeColdFallback);
                spec.build()
            }
        };
        self.spec = spec;
        self.me().epoch.store(epoch, Ordering::Release);
        // 5. Back in business.
        self.deque.open_steals();
        self.events.push(LaneEvent::UpgradeCommitted { epoch });
    }

    fn exit_cleanup(mut self) -> LaneOutcome {
        // A dead lane's backlog is shed, not processed; a healthy lane
        // reaches here with everything drained (these loops are no-ops).
        while let Some(item) = self.stolen_pending.pop() {
            let n = item.batch.len() as u64;
            self.ledger(item.origin).shed.fetch_add(n, Ordering::AcqRel);
            self.pool.recycle_batch(item.batch);
        }
        while let Some(item) = self.deque.pop() {
            let n = item.batch.len() as u64;
            self.ledger(item.origin).shed.fetch_add(n, Ordering::AcqRel);
            self.pool.recycle_batch(item.batch);
        }
        self.mark_done_generating();
        if self.cfg.warmup_batches.is_some() {
            self.shared.done.fetch_add(1, Ordering::AcqRel);
            while !self.shared.exit_released.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        }
        // Adopt any still-pending upgrade epoch so the controller never
        // waits on a lane that is already gone.
        if let Some(PendingUpgrade { epoch, .. }) = self.me().upgrade.lock().take() {
            self.me().epoch.store(epoch, Ordering::Release);
        }
        self.me().finished.store(true, Ordering::Release);
        LaneOutcome {
            lane: self.index,
            quota_batches: self.quota_total,
            slice_flows: self.slice_flows,
            share: self.share,
            executed_batches: self.executed_batches,
            executed_packets: self.executed_packets,
            executed_cycles: self.executed_cycles,
            cycle_hist: self.cycle_hist,
            stolen_in_batches: self.stolen_in_batches,
            stolen_in_packets: self.stolen_in_packets,
            steal_bytes: self.steal_bytes,
            faults: self.faults,
            respawns: self.respawns,
            import_failures: self.import_failures,
            dead: self.dead,
            deque_hwm: self.deque_hwm,
            pool: self.pool.stats(),
            events: self.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbs_netfx::operators::{MacSwap, NullFilter, TtlDecrement};

    fn spec() -> PipelineSpec {
        PipelineSpec::new()
            .stage(NullFilter::new)
            .stage(TtlDecrement::new)
            .stage(MacSwap::new)
            .with_state_schema(1)
    }

    fn base_config(lanes: usize) -> LaneConfig {
        LaneConfig {
            lanes,
            total_batches: 64,
            batch_size: 32,
            build_burst: 4,
            traffic: TrafficConfig {
                flows: 256,
                ..TrafficConfig::default()
            },
            ..LaneConfig::default()
        }
    }

    #[test]
    fn single_lane_conserves_and_processes_everything() {
        let report = LaneRuntime::run(spec(), base_config(1));
        assert_eq!(report.unaccounted_packets(), 0);
        assert_eq!(report.offered(), 64 * 32);
        assert_eq!(report.processed(), 64 * 32);
        assert_eq!(report.lost(), 0);
        assert_eq!(report.shed(), 0);
        assert_eq!(report.stolen(), 0);
        assert_eq!(report.outstanding_buffers(), 0);
    }

    #[test]
    fn quota_split_matches_shares_and_sums_exactly() {
        let quotas = split_quota(100, &[0.5, 0.25, 0.25]);
        assert_eq!(quotas.iter().sum::<u64>(), 100);
        assert_eq!(quotas, vec![50, 25, 25]);
        // Zero-share lanes get nothing, including remainders.
        let quotas = split_quota(7, &[0.6, 0.0, 0.4]);
        assert_eq!(quotas.iter().sum::<u64>(), 7);
        assert_eq!(quotas[1], 0);
    }

    #[test]
    fn multi_lane_uniform_conserves_without_stealing() {
        let mut cfg = base_config(4);
        cfg.steal_batch = 0;
        let report = LaneRuntime::run(spec(), cfg);
        assert_eq!(report.unaccounted_packets(), 0);
        assert_eq!(report.offered(), 64 * 32);
        assert_eq!(report.stolen(), 0);
        // Every lane processed exactly what it generated.
        for (lane, ledger) in report.ledgers.iter().enumerate() {
            assert_eq!(
                ledger.offered, ledger.processed,
                "lane {lane} lost or exported work with stealing off"
            );
        }
    }

    #[test]
    fn multi_lane_with_stealing_conserves() {
        let mut cfg = base_config(4);
        cfg.steal_batch = 2;
        cfg.traffic.distribution = rbs_netfx::pktgen::FlowDistribution::Zipf(1.2);
        let report = LaneRuntime::run(spec(), cfg);
        assert_eq!(report.unaccounted_packets(), 0);
        assert_eq!(report.lost(), 0);
        assert_eq!(report.shed(), 0);
        assert_eq!(report.offered(), report.processed());
        // Executor-side and origin-side views agree on stolen work.
        let stolen_in: u64 = report.lanes.iter().map(|l| l.stolen_in_packets).sum();
        assert_eq!(stolen_in, report.stolen());
    }

    #[test]
    fn victim_order_covers_every_other_lane_once() {
        for order in [VictimOrder::RingNearest, VictimOrder::FixedSweep] {
            for lanes in [2usize, 3, 4, 5, 8] {
                for me in 0..lanes {
                    let mut victims: Vec<usize> = (0..lanes - 1)
                        .map(|step| victim_at(order, me, lanes, step))
                        .collect();
                    victims.sort_unstable();
                    let expected: Vec<usize> = (0..lanes).filter(|&v| v != me).collect();
                    assert_eq!(victims, expected, "{order:?}, {lanes} lanes, thief {me}");
                }
            }
        }
        // Locality: ring-nearest visits the direct neighbours first.
        assert_eq!(victim_at(VictimOrder::RingNearest, 2, 8, 0), 3);
        assert_eq!(victim_at(VictimOrder::RingNearest, 2, 8, 1), 1);
        // Contention: fixed sweep always starts at lane 0.
        assert_eq!(victim_at(VictimOrder::FixedSweep, 5, 8, 0), 0);
    }

    #[test]
    fn zipf_mix_loads_lanes_unevenly_and_stealing_rebalances() {
        let mut cfg = base_config(4);
        cfg.total_batches = 200;
        cfg.steal_batch = 4;
        cfg.traffic.flows = 512;
        cfg.traffic.distribution = rbs_netfx::pktgen::FlowDistribution::Zipf(1.2);
        let report = LaneRuntime::run(spec(), cfg);
        assert_eq!(report.unaccounted_packets(), 0);
        let quotas: Vec<u64> = report.lanes.iter().map(|l| l.quota_batches).collect();
        let max = *quotas.iter().max().unwrap();
        let min = *quotas.iter().min().unwrap();
        assert!(
            max > min,
            "Zipf shares should load lanes unevenly, got {quotas:?}"
        );
    }

    #[test]
    fn upgrade_rejects_schema_change_up_front() {
        let rt = LaneRuntime::start(spec(), base_config(2));
        let v2 = PipelineSpec::new()
            .stage(NullFilter::new)
            .with_state_schema(2);
        let err = rt.upgrade(v2).unwrap_err();
        assert_eq!(
            err,
            LaneUpgradeError::IncompatibleSchema {
                running: 1,
                proposed: 2
            }
        );
        let report = rt.join();
        // The rejected upgrade never touched a lane.
        for lane in &report.lanes {
            assert!(lane
                .events
                .iter()
                .all(|e| !matches!(e, LaneEvent::StealsClosed)));
        }
        assert_eq!(report.unaccounted_packets(), 0);
    }

    /// Asserts a lane's journal shows the upgrade protocol in order:
    /// close → drain → seal → commit.
    fn assert_protocol_order(events: &[LaneEvent]) {
        let pos = |p: fn(&LaneEvent) -> bool| events.iter().position(p);
        let closed = pos(|e| matches!(e, LaneEvent::StealsClosed));
        let drained = pos(|e| matches!(e, LaneEvent::StolenDrained { .. }));
        let sealed = pos(|e| matches!(e, LaneEvent::SnapshotSealed { .. }));
        let committed = pos(|e| matches!(e, LaneEvent::UpgradeCommitted { .. }));
        match (closed, drained, sealed, committed) {
            (Some(c), Some(d), Some(s), Some(u)) => {
                assert!(
                    c < d && d < s && s < u,
                    "protocol order violated: {events:?}"
                );
            }
            _ => panic!("upgrade protocol events missing: {events:?}"),
        }
    }

    #[test]
    fn upgrade_mid_run_keeps_conservation_and_orders_protocol() {
        let mut cfg = base_config(2);
        cfg.total_batches = 4000;
        let rt = LaneRuntime::start(spec(), cfg);
        let outcomes = rt.upgrade(spec()).expect("equal-schema upgrade");
        assert_eq!(outcomes.len(), 2);
        let report = rt.join();
        assert_eq!(report.unaccounted_packets(), 0);
        assert_eq!(report.lost(), 0);
        let mut protocol_runs = 0;
        for lane in &report.lanes {
            if lane
                .events
                .iter()
                .any(|e| matches!(e, LaneEvent::StealsClosed))
            {
                assert_protocol_order(&lane.events);
                protocol_runs += 1;
            }
        }
        // With a 4000-batch budget the request lands while lanes are
        // mid-run; a lane can only miss the protocol by finishing
        // first, which the controller reports explicitly.
        let finished = outcomes
            .iter()
            .filter(|o| matches!(o, LaneUpgradeOutcome::Finished { .. }))
            .count();
        assert!(
            protocol_runs + finished == 2 && protocol_runs >= 1,
            "expected live lanes to walk the protocol: {outcomes:?}"
        );
    }
}
