//! Supervision policy: restart budgets, exponential backoff, and the
//! per-worker circuit breaker.
//!
//! Time here is *logical*: the supervisor counts ticks (one per
//! [`ShardedRuntime::dispatch`](crate::ShardedRuntime::dispatch) pass),
//! not wall-clock time. Backoff and breaker cooldowns expressed in ticks
//! replay bit-identically under a fixed fault seed, which is what makes
//! the chaos experiment's recovery-latency numbers reproducible.
//!
//! Per-worker state machine:
//!
//! ```text
//!            fault                    fault (budget left)
//! Running ────────────▶ Backoff ◀─────────────────────┐
//!    ▲                     │ backoff ticks elapse      │
//!    │                     ▼                           │
//!    │ batch completes   respawn ──────────────────▶ Running
//!    │
//!    │         consecutive faults ≥ budget
//!    │  ┌──────────────────────────────────────────┐
//!    │  ▼                                          │
//!    │ Open ── cooldown ticks ──▶ HalfOpen ── fault ┘
//!    │                              │
//!    └──────────────────────────────┘ batch completes
//! ```
//!
//! While a worker sits in `Backoff` or `Open`, the dispatcher does not
//! feed it: its shard's packets are redistributed to a healthy peer or,
//! when none exists, shed with accounting. That is the graceful
//! degradation half of the design — a crash-looping shard costs its own
//! throughput, never the runtime's liveness.

/// Restart and breaker parameters for one runtime.
#[derive(Debug, Clone)]
pub struct RestartPolicy {
    /// Consecutive faults (no completed batch in between) a worker may
    /// accumulate before its circuit breaker opens.
    pub max_consecutive_faults: u32,
    /// Backoff before the first respawn, in supervision ticks. Doubles
    /// per consecutive fault. Zero means respawn on the next tick —
    /// the pre-chaos runtime's eager behavior.
    pub backoff_base_ticks: u64,
    /// Upper bound on the exponential backoff, in ticks.
    pub backoff_cap_ticks: u64,
    /// Ticks an open breaker waits before letting one probe respawn
    /// through (`Open` → `HalfOpen`).
    pub breaker_cooldown_ticks: u64,
    /// Upper bound (exclusive) on deterministic jitter added to each
    /// backoff, in ticks; zero disables jitter.
    pub backoff_jitter_ticks: u64,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        Self {
            max_consecutive_faults: 8,
            backoff_base_ticks: 0,
            backoff_cap_ticks: 64,
            breaker_cooldown_ticks: 16,
            backoff_jitter_ticks: 0,
        }
    }
}

impl RestartPolicy {
    /// Backoff (before jitter) for the `consecutive`-th fault in a row,
    /// 1-based: `base * 2^(consecutive-1)`, capped.
    pub fn backoff_ticks(&self, consecutive: u32) -> u64 {
        if self.backoff_base_ticks == 0 {
            return 0;
        }
        let doublings = consecutive.saturating_sub(1).min(32);
        self.backoff_base_ticks
            .saturating_mul(1u64 << doublings)
            .min(self.backoff_cap_ticks)
    }
}

/// Where a worker sits in the supervision state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy and fed by the dispatcher.
    Running,
    /// Faulted; waiting out its backoff before a respawn.
    Backoff,
    /// Crash-looped past its restart budget; not respawned until the
    /// cooldown elapses. Its flows are redistributed or shed.
    Open,
    /// Probe generation after an open breaker's cooldown: one completed
    /// batch closes the breaker, one more fault reopens it.
    HalfOpen,
    /// Quiescing for a live upgrade: ingress paused, queue draining.
    /// The dispatcher redistributes this shard's packets exactly as it
    /// does for `Backoff`/`Open`, but the supervisor leaves the slot
    /// alone — the upgrade machinery owns its lifecycle until the swap
    /// (or rollback) completes.
    Upgrading,
}

impl BreakerState {
    /// Stable short name (used in reports and JSON).
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Running => "running",
            BreakerState::Backoff => "backoff",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
            BreakerState::Upgrading => "upgrading",
        }
    }

    /// True when the dispatcher may feed this worker.
    pub fn accepts_work(&self) -> bool {
        matches!(self, BreakerState::Running | BreakerState::HalfOpen)
    }
}

/// Per-slot supervision state, owned by the runtime.
#[derive(Debug)]
pub(crate) struct SlotHealth {
    pub state: BreakerState,
    /// Faults since the last completed batch.
    pub consecutive_faults: u32,
    /// Tick at which a `Backoff`/`Open` slot becomes eligible for
    /// respawn.
    pub resume_at: u64,
    /// `WorkerStats::batches()` at the last fault — progress beyond it
    /// proves the respawned worker actually works.
    pub batches_at_fault: u64,
}

impl SlotHealth {
    pub fn new() -> Self {
        Self {
            state: BreakerState::Running,
            consecutive_faults: 0,
            resume_at: 0,
            batches_at_fault: 0,
        }
    }

    /// Manual override (`heal()` / targeted `send_to`): forget history.
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

/// What happened, when, to which worker — the supervisor's journal.
///
/// Ticks are logical (see the module docs), so an event sequence from a
/// seeded chaos run is replayable byte for byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorEvent {
    /// Supervision tick the event was observed on.
    pub tick: u64,
    /// Worker (= shard) index.
    pub worker: usize,
    /// The transition or action.
    pub kind: SupervisorEventKind,
}

/// The supervisor actions worth journaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorEventKind {
    /// A worker fault was detected (panic, torn channel, or watchdog
    /// kill — the latter is preceded by `WatchdogKill`).
    Fault,
    /// A hung worker was force-failed and its thread abandoned as a
    /// zombie.
    WatchdogKill,
    /// A respawn was scheduled after a backoff.
    BackoffScheduled {
        /// Tick the respawn becomes due.
        until_tick: u64,
    },
    /// The restart budget ran out; the breaker opened.
    BreakerOpened {
        /// Tick the `HalfOpen` probe becomes due.
        until_tick: u64,
    },
    /// An open breaker let its probe generation through.
    BreakerHalfOpened,
    /// The probe generation completed work; the breaker closed.
    BreakerClosed,
    /// The worker's thread was respawned.
    Respawn,
    /// Packets bound for this worker were rerouted to a healthy peer.
    Redistributed {
        /// Packets rerouted.
        packets: u64,
    },
    /// Packets were dropped with accounting (no healthy worker, or a
    /// send that timed out / failed).
    Shed {
        /// Packets shed.
        packets: u64,
    },
    /// A respawned worker was handed a verified snapshot of its
    /// predecessor's state.
    WarmRestore {
        /// Epoch of the snapshot restored from.
        epoch: u64,
        /// Supervision ticks between the snapshot and the restore — the
        /// staleness bound on the recovered state.
        age_ticks: u64,
        /// State items the snapshot carried.
        items_restored: u64,
        /// State items accumulated after the snapshot and lost with the
        /// crash (live gauge at crash minus `items_restored`).
        items_lost: u64,
    },
    /// A buffered snapshot failed verification (or could not be applied)
    /// and was skipped; recovery fell through to the next candidate.
    SnapshotRejected {
        /// Which buffer was rejected (`"latest"` / `"previous"`).
        which: &'static str,
        /// Stable [`rbs_checkpoint::RestoreError::kind`] name.
        reason: &'static str,
    },
    /// No usable snapshot existed; the worker restarted from clean
    /// per-operator state.
    ColdRestore {
        /// State items lost with the crash (live gauge at crash).
        items_lost: u64,
    },
    /// A rolling upgrade was accepted and began with worker 0's quiesce
    /// pending. (Incompatible upgrades are rejected before any event is
    /// journaled.)
    UpgradeStarted {
        /// State schema of the running spec.
        from_schema: u32,
        /// State schema of the target spec.
        to_schema: u32,
    },
    /// One worker's ingress was paused for quiesce: from this tick its
    /// shard is redistributed while the queued tail drains.
    UpgradePause,
    /// A quiescing worker did not drain within the policy's deadline; it
    /// was force-failed and its thread abandoned as a zombie.
    UpgradeDrainTimeout,
    /// A snapshot sealed under one state schema was carried across to
    /// another by the policy's [`StateMigrator`](rbs_checkpoint::StateMigrator)
    /// instead of falling back cold.
    StateMigrated {
        /// Schema the snapshot was sealed under.
        from: u32,
        /// Schema it was migrated to.
        to: u32,
        /// State items carried across.
        items: u64,
    },
    /// One worker finished its quiesce → snapshot → swap → restore cycle
    /// and is running the target spec.
    WorkerUpgraded {
        /// Spec generation the worker now runs.
        generation: u64,
        /// Packets the worker drained from its queue after its ingress
        /// paused (processed, not lost).
        drained_packets: u64,
        /// Supervision ticks the worker's ingress was paused.
        pause_ticks: u64,
    },
    /// During rollback, a worker was swapped back to the old spec and
    /// restored from its latest snapshot.
    WorkerRolledBack {
        /// Spec generation the worker was returned to.
        generation: u64,
    },
    /// A worker failed mid-upgrade (chaos kill during quiesce or
    /// restore); the upgrade reversed direction.
    UpgradeAborted,
    /// Every worker runs the target spec; the upgrade committed.
    UpgradeCommitted {
        /// Workers upgraded.
        workers: usize,
    },
    /// Rollback completed: every worker runs the old spec again.
    UpgradeRolledBack {
        /// Workers that had to be rolled back (had already upgraded, or
        /// failed mid-swap).
        workers: usize,
    },
}

impl SupervisorEventKind {
    /// Stable short name (used in reports and JSON).
    pub fn name(&self) -> &'static str {
        match self {
            SupervisorEventKind::Fault => "fault",
            SupervisorEventKind::WatchdogKill => "watchdog-kill",
            SupervisorEventKind::BackoffScheduled { .. } => "backoff-scheduled",
            SupervisorEventKind::BreakerOpened { .. } => "breaker-opened",
            SupervisorEventKind::BreakerHalfOpened => "breaker-half-opened",
            SupervisorEventKind::BreakerClosed => "breaker-closed",
            SupervisorEventKind::Respawn => "respawn",
            SupervisorEventKind::Redistributed { .. } => "redistributed",
            SupervisorEventKind::Shed { .. } => "shed",
            SupervisorEventKind::WarmRestore { .. } => "warm-restore",
            SupervisorEventKind::SnapshotRejected { .. } => "snapshot-rejected",
            SupervisorEventKind::ColdRestore { .. } => "cold-restore",
            SupervisorEventKind::UpgradeStarted { .. } => "upgrade-started",
            SupervisorEventKind::UpgradePause => "upgrade-pause",
            SupervisorEventKind::UpgradeDrainTimeout => "upgrade-drain-timeout",
            SupervisorEventKind::StateMigrated { .. } => "state-migrated",
            SupervisorEventKind::WorkerUpgraded { .. } => "worker-upgraded",
            SupervisorEventKind::WorkerRolledBack { .. } => "worker-rolled-back",
            SupervisorEventKind::UpgradeAborted => "upgrade-aborted",
            SupervisorEventKind::UpgradeCommitted { .. } => "upgrade-committed",
            SupervisorEventKind::UpgradeRolledBack { .. } => "upgrade-rolled-back",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_eager() {
        let p = RestartPolicy::default();
        for c in 1..10 {
            assert_eq!(p.backoff_ticks(c), 0, "zero base never waits");
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RestartPolicy {
            backoff_base_ticks: 2,
            backoff_cap_ticks: 12,
            ..RestartPolicy::default()
        };
        assert_eq!(p.backoff_ticks(1), 2);
        assert_eq!(p.backoff_ticks(2), 4);
        assert_eq!(p.backoff_ticks(3), 8);
        assert_eq!(p.backoff_ticks(4), 12, "capped");
        assert_eq!(p.backoff_ticks(40), 12, "shift never overflows");
    }

    #[test]
    fn breaker_state_gates_dispatch() {
        assert!(BreakerState::Running.accepts_work());
        assert!(BreakerState::HalfOpen.accepts_work());
        assert!(!BreakerState::Backoff.accepts_work());
        assert!(!BreakerState::Open.accepts_work());
        assert!(
            !BreakerState::Upgrading.accepts_work(),
            "a quiescing shard must be redistributed, not fed"
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(BreakerState::HalfOpen.name(), "half-open");
        assert_eq!(BreakerState::Upgrading.name(), "upgrading");
        assert_eq!(SupervisorEventKind::WatchdogKill.name(), "watchdog-kill");
        assert_eq!(SupervisorEventKind::Shed { packets: 3 }.name(), "shed");
        assert_eq!(
            SupervisorEventKind::WorkerUpgraded {
                generation: 1,
                drained_packets: 0,
                pause_ticks: 1
            }
            .name(),
            "worker-upgraded"
        );
        assert_eq!(
            SupervisorEventKind::StateMigrated {
                from: 1,
                to: 2,
                items: 0
            }
            .name(),
            "state-migrated"
        );
    }
}
