//! Per-worker counters that outlive the worker thread.
//!
//! The supervisor hands every spawn of a worker (including respawns after
//! a fault) the *same* `Arc<WorkerStats>`: counters are cumulative across
//! a worker's generations, so throughput accounting survives the very
//! faults the runtime exists to contain. All hot-path updates are single
//! relaxed atomics; the batch-cycle histogram takes an uncontended mutex
//! (one writer — the worker thread — plus occasional snapshot readers).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rbs_core::histogram::LogHistogram;
use rbs_core::stats::Summary;
use rbs_netfx::pipeline::StageStats;

use crate::supervisor::{BreakerState, SupervisorEvent, SupervisorEventKind};

/// Sub-buckets per octave for per-batch cycle histograms (~3% relative
/// error, 16 KiB per worker).
pub(crate) const CYCLE_HIST_PRECISION: u32 = 32;

/// Low bits of a heartbeat token reserved for the spawn sequence, so a
/// zombie generation's stale `mark_idle` can never clear its
/// replacement's heartbeat (the CAS fails on the token mismatch).
const BUSY_SEQ_BITS: u64 = 0xFFFF;

/// Cumulative counters for one worker slot, shared between the worker
/// thread and the supervisor.
#[derive(Debug)]
pub struct WorkerStats {
    batches: AtomicU64,
    packets_in: AtomicU64,
    packets_out: AtomicU64,
    drops: AtomicU64,
    faults: AtomicU64,
    /// Gauge: state items (rules, flows) the live pipeline currently
    /// holds. Written by the worker after build and after every
    /// completed batch; read by the supervisor at heal time to account
    /// exactly how much state the crash destroyed.
    state_items: AtomicU64,
    /// Warm spawns whose state injection failed (shape mismatch); the
    /// worker fell back to a cold pipeline.
    import_failures: AtomicU64,
    /// Output batches this worker gave back through the recycle path
    /// (buffer-pool mode only; zero otherwise).
    recycled_batches: AtomicU64,
    /// Output batches the worker tried to recycle but dropped (recycle
    /// queue full or revoked) — their buffers returned to the allocator.
    recycle_drops: AtomicU64,
    /// High-water mark of the worker's input queue depth, sampled by the
    /// worker each time it dequeues a batch. A mark near the queue
    /// capacity means the dispatcher was outrunning this shard.
    queue_depth_hwm: AtomicU64,
    /// Heartbeat: a token while a batch is executing (nanos since the
    /// runtime epoch, low bits the spawn sequence), zero while idle. The
    /// supervisor's watchdog reads it to tell *hung* from idle.
    busy_since: AtomicU64,
    cycles: Mutex<LogHistogram>,
    /// When the runtime started; heartbeat tokens count from here.
    epoch: Instant,
    /// Stage-by-stage counters captured from the pipeline at clean
    /// shutdown (a faulted pipeline dies with its thread and never
    /// reports; the respawn starts a fresh pipeline).
    final_stages: Mutex<Option<Vec<(String, StageStats)>>>,
}

impl WorkerStats {
    pub(crate) fn new(epoch: Instant) -> Self {
        Self {
            batches: AtomicU64::new(0),
            packets_in: AtomicU64::new(0),
            packets_out: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            state_items: AtomicU64::new(0),
            import_failures: AtomicU64::new(0),
            recycled_batches: AtomicU64::new(0),
            recycle_drops: AtomicU64::new(0),
            queue_depth_hwm: AtomicU64::new(0),
            busy_since: AtomicU64::new(0),
            cycles: Mutex::new(LogHistogram::new(CYCLE_HIST_PRECISION)),
            epoch,
            final_stages: Mutex::new(None),
        }
    }

    pub(crate) fn record_batch(&self, packets_in: u64, packets_out: u64, cycles: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.packets_in.fetch_add(packets_in, Ordering::Relaxed);
        self.packets_out.fetch_add(packets_out, Ordering::Relaxed);
        self.drops
            .fetch_add(packets_in.saturating_sub(packets_out), Ordering::Relaxed);
        self.cycles.lock().record(cycles);
    }

    pub(crate) fn record_fault(&self) {
        self.faults.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn set_state_items(&self, items: u64) {
        self.state_items.store(items, Ordering::Relaxed);
    }

    pub(crate) fn record_import_failure(&self) {
        self.import_failures.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_recycle(&self, gave: bool) {
        if gave {
            self.recycled_batches.fetch_add(1, Ordering::Relaxed);
        } else {
            self.recycle_drops.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_queue_depth(&self, depth: u64) {
        self.queue_depth_hwm.fetch_max(depth, Ordering::Relaxed);
    }

    /// Marks the start of a batch and returns the heartbeat token the
    /// worker must pass back to [`WorkerStats::mark_idle`].
    pub(crate) fn mark_busy(&self, spawn_seq: u64) -> u64 {
        let nanos = (self.epoch.elapsed().as_nanos() as u64).max(BUSY_SEQ_BITS + 1);
        let token = (nanos & !BUSY_SEQ_BITS) | (spawn_seq & BUSY_SEQ_BITS);
        self.busy_since.store(token, Ordering::Release);
        token
    }

    /// Clears the heartbeat — but only if it is still `token`. A zombie
    /// generation calling in late (after a watchdog kill and respawn)
    /// loses the CAS and leaves the replacement's heartbeat alone.
    pub(crate) fn mark_idle(&self, token: u64) {
        let _ = self
            .busy_since
            .compare_exchange(token, 0, Ordering::Release, Ordering::Relaxed);
    }

    /// Unconditionally clears the heartbeat. The supervisor calls this
    /// when respawning a slot: the dead (or abandoned) generation's last
    /// token must not age against the replacement, which would read as a
    /// hang and get it killed too.
    pub(crate) fn clear_busy(&self) {
        self.busy_since.store(0, Ordering::Release);
    }

    /// How long the current batch has been executing, or `None` while
    /// idle.
    pub(crate) fn busy_for(&self) -> Option<Duration> {
        let token = self.busy_since.load(Ordering::Acquire);
        if token == 0 {
            return None;
        }
        let started = Duration::from_nanos(token & !BUSY_SEQ_BITS);
        Some(self.epoch.elapsed().saturating_sub(started))
    }

    pub(crate) fn store_final_stages(&self, stages: Vec<(String, StageStats)>) {
        *self.final_stages.lock() = Some(stages);
    }

    /// Batches fully processed (across all generations of this worker).
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Packets that entered the worker's pipeline.
    pub fn packets_in(&self) -> u64 {
        self.packets_in.load(Ordering::Relaxed)
    }

    /// Packets the worker's pipeline emitted.
    pub fn packets_out(&self) -> u64 {
        self.packets_out.load(Ordering::Relaxed)
    }

    /// Packets dropped by pipeline stages.
    pub fn drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    /// Faults (contained panics) across all generations.
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// State items (rules, flows) the live pipeline holds right now.
    pub fn state_items(&self) -> u64 {
        self.state_items.load(Ordering::Relaxed)
    }

    /// Warm spawns that fell back to a cold pipeline.
    pub fn import_failures(&self) -> u64 {
        self.import_failures.load(Ordering::Relaxed)
    }

    /// Output batches given back through the recycle path.
    pub fn recycled_batches(&self) -> u64 {
        self.recycled_batches.load(Ordering::Relaxed)
    }

    /// Output batches that could not be recycled and were dropped.
    pub fn recycle_drops(&self) -> u64 {
        self.recycle_drops.load(Ordering::Relaxed)
    }

    /// Deepest the input queue has been when the worker dequeued.
    pub fn queue_depth_hwm(&self) -> u64 {
        self.queue_depth_hwm.load(Ordering::Relaxed)
    }

    /// A copy of the per-batch cycle histogram.
    pub fn cycle_histogram(&self) -> LogHistogram {
        self.cycles.lock().clone()
    }

    /// Stage counters from the last cleanly shut down pipeline, if any.
    pub fn final_stage_stats(&self) -> Option<Vec<(String, StageStats)>> {
        self.final_stages.lock().clone()
    }
}

/// Point-in-time view of one worker slot, as reported by the supervisor.
#[derive(Debug, Clone)]
pub struct WorkerSnapshot {
    /// Shard index of this worker.
    pub index: usize,
    /// Lifecycle state of the worker's domain.
    pub state: rbs_sfi::DomainState,
    /// Supervision state of the worker's circuit breaker.
    pub breaker: BreakerState,
    /// Faults since the worker last completed a batch.
    pub consecutive_faults: u32,
    /// Domain generation (bumped by every recovery).
    pub generation: u64,
    /// Generation of the pipeline spec this worker runs (bumped by
    /// every committed upgrade; transiently ahead while an upgrade
    /// walks the fleet). A finished run's workers all report the same
    /// value — the never-mixed invariant.
    pub spec_generation: u64,
    /// Times the supervisor respawned this worker's thread.
    pub respawns: u64,
    /// Hung generations force-failed by the watchdog.
    pub watchdog_kills: u64,
    /// Batches the dispatcher routed to this shard.
    pub dispatched: u64,
    /// Batches the worker fully processed.
    pub processed: u64,
    /// Batches lost to faults (in-flight or queued at the crash).
    pub lost: u64,
    /// Packets successfully handed to this worker's queue.
    pub dispatched_packets: u64,
    /// Packets that entered the worker's pipeline.
    pub packets_in: u64,
    /// Packets the worker's pipeline emitted.
    pub packets_out: u64,
    /// Packets dropped by pipeline stages.
    pub drops: u64,
    /// Packets handed to the queue but destroyed by a fault before the
    /// pipeline saw them.
    pub lost_packets: u64,
    /// Packets bound for this shard dropped with accounting (breaker
    /// open with no healthy peer, send timeout, or torn channel).
    pub shed_packets: u64,
    /// Packets bound for this shard rerouted to a healthy peer while
    /// this worker was down.
    pub redistributed_packets: u64,
    /// Bounded-wait sends that gave up because this worker's queue
    /// stayed full past the deadline.
    pub send_timeouts: u64,
    /// Contained panics.
    pub faults: u64,
    /// State items (rules, flows) the live pipeline held at snapshot
    /// time.
    pub state_items: u64,
    /// Respawns handed a verified snapshot of the dead generation's
    /// state.
    pub warm_restores: u64,
    /// Respawns that started from clean per-operator state (no usable
    /// snapshot).
    pub cold_restores: u64,
    /// Buffered snapshots rejected during recovery (corrupt, truncated,
    /// or inapplicable).
    pub snapshot_rejects: u64,
    /// State items destroyed by crashes (summed over all recoveries:
    /// everything accumulated since the restored snapshot, or since
    /// birth for cold restarts).
    pub state_items_lost: u64,
    /// Warm spawns whose state injection failed; the worker fell back
    /// to a cold pipeline.
    pub import_failures: u64,
    /// Output batches this worker gave back through the recycle path.
    pub recycled_batches: u64,
    /// Output batches dropped instead of recycled (queue full/revoked).
    pub recycle_drops: u64,
    /// Deepest this worker's input queue got (batches queued at dequeue
    /// time, sampled across all generations).
    pub queue_depth_hwm: u64,
    /// Snapshots recorded into this worker's store (full + delta).
    pub snapshots_taken: u64,
    /// Metadata of the newest buffered snapshot, if any.
    pub latest_snapshot: Option<rbs_checkpoint::SnapshotMeta>,
    /// Per-stage counters from the last clean shutdown, if available.
    pub stage_stats: Option<Vec<(String, StageStats)>>,
}

/// Aggregate over all workers, produced by `ShardedRuntime::shutdown`.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Per-worker snapshots, index-ordered.
    pub workers: Vec<WorkerSnapshot>,
    /// Sum of per-worker processed batches.
    pub batches: u64,
    /// Packets offered to the dispatcher (`dispatch` + `send_to`).
    pub offered_packets: u64,
    /// Sum of per-worker pipeline input packets.
    pub packets_in: u64,
    /// Sum of per-worker pipeline output packets.
    pub packets_out: u64,
    /// Sum of per-worker stage drops.
    pub drops: u64,
    /// Batches lost to faults across all workers.
    pub lost_batches: u64,
    /// Packets lost to faults across all workers.
    pub lost_packets: u64,
    /// Packets shed with accounting across all workers.
    pub shed_packets: u64,
    /// Packets rerouted away from down workers.
    pub redistributed_packets: u64,
    /// Bounded-wait sends that timed out across all workers.
    pub send_timeouts: u64,
    /// Contained panics across all workers.
    pub faults: u64,
    /// Worker respawns across all workers.
    pub respawns: u64,
    /// Watchdog kills across all workers.
    pub watchdog_kills: u64,
    /// Respawns that restored state from a verified snapshot.
    pub warm_restores: u64,
    /// Respawns that started from clean state.
    pub cold_restores: u64,
    /// Buffered snapshots rejected during recovery.
    pub snapshot_rejects: u64,
    /// State items destroyed by crashes, summed over all recoveries.
    pub state_items_lost: u64,
    /// Warm spawns that fell back to a cold pipeline at injection.
    pub import_failures: u64,
    /// Output batches given back through the recycle path.
    pub recycled_batches: u64,
    /// Output batches dropped instead of recycled.
    pub recycle_drops: u64,
    /// Deepest any worker's input queue got — the max, not the sum, of
    /// the per-worker high-water marks.
    pub queue_depth_hwm: u64,
    /// Snapshots recorded across all workers (full + delta).
    pub snapshots_taken: u64,
    /// Times a worker's breaker opened.
    pub breaker_opens: u64,
    /// Times an open breaker let a probe generation through.
    pub breaker_half_opens: u64,
    /// Times a probe generation closed its breaker.
    pub breaker_closes: u64,
    /// Rolling upgrades that committed (fleet ended on the new spec).
    pub upgrades_committed: u64,
    /// Rolling upgrades that rolled back (fleet returned to the old
    /// spec).
    pub upgrades_rolled_back: u64,
    /// Supervision ticks worker ingress was paused for upgrades, summed
    /// over all upgrades and workers.
    pub upgrade_pause_ticks: u64,
    /// Packets drained from paused queues during upgrades — processed
    /// by the old generations after their ingress stopped, not lost.
    pub upgrade_drained_packets: u64,
    /// State items carried across a schema change by a migrator during
    /// committed upgrades.
    pub state_items_migrated: u64,
    /// Per-upgrade outcome records, in completion order.
    pub upgrades: Vec<crate::upgrade::UpgradeOutcome>,
    /// The supervisor's journal, in observation order.
    pub events: Vec<SupervisorEvent>,
    /// Summary of per-batch processing cycles, merged across workers
    /// (exact moments, bucketed percentiles); `None` when no batch
    /// completed.
    pub cycles: Option<Summary>,
}

impl RuntimeReport {
    pub(crate) fn from_snapshots(
        workers: Vec<WorkerSnapshot>,
        histograms: Vec<LogHistogram>,
        offered_packets: u64,
        events: Vec<SupervisorEvent>,
        upgrades: Vec<crate::upgrade::UpgradeOutcome>,
    ) -> Self {
        use crate::upgrade::UpgradeOutcome;
        let mut merged = LogHistogram::new(CYCLE_HIST_PRECISION);
        for h in &histograms {
            merged.merge(h);
        }
        let count = |pred: fn(&SupervisorEventKind) -> bool| {
            events.iter().filter(|e| pred(&e.kind)).count() as u64
        };
        let upgrades_committed = upgrades.iter().filter(|u| u.committed()).count() as u64;
        let (upgrade_pause_ticks, upgrade_drained_packets, state_items_migrated) = upgrades
            .iter()
            .fold((0, 0, 0), |(ticks, drained, items), u| match *u {
                UpgradeOutcome::Committed {
                    pause_ticks,
                    drained_packets,
                    state_items_migrated,
                    ..
                } => (
                    ticks + pause_ticks,
                    drained + drained_packets,
                    items + state_items_migrated,
                ),
                UpgradeOutcome::RolledBack {
                    pause_ticks,
                    drained_packets,
                    ..
                } => (ticks + pause_ticks, drained + drained_packets, items),
            });
        Self {
            batches: workers.iter().map(|w| w.processed).sum(),
            offered_packets,
            packets_in: workers.iter().map(|w| w.packets_in).sum(),
            packets_out: workers.iter().map(|w| w.packets_out).sum(),
            drops: workers.iter().map(|w| w.drops).sum(),
            lost_batches: workers.iter().map(|w| w.lost).sum(),
            lost_packets: workers.iter().map(|w| w.lost_packets).sum(),
            shed_packets: workers.iter().map(|w| w.shed_packets).sum(),
            redistributed_packets: workers.iter().map(|w| w.redistributed_packets).sum(),
            send_timeouts: workers.iter().map(|w| w.send_timeouts).sum(),
            faults: workers.iter().map(|w| w.faults).sum(),
            respawns: workers.iter().map(|w| w.respawns).sum(),
            watchdog_kills: workers.iter().map(|w| w.watchdog_kills).sum(),
            warm_restores: workers.iter().map(|w| w.warm_restores).sum(),
            cold_restores: workers.iter().map(|w| w.cold_restores).sum(),
            snapshot_rejects: workers.iter().map(|w| w.snapshot_rejects).sum(),
            state_items_lost: workers.iter().map(|w| w.state_items_lost).sum(),
            import_failures: workers.iter().map(|w| w.import_failures).sum(),
            recycled_batches: workers.iter().map(|w| w.recycled_batches).sum(),
            recycle_drops: workers.iter().map(|w| w.recycle_drops).sum(),
            queue_depth_hwm: workers.iter().map(|w| w.queue_depth_hwm).max().unwrap_or(0),
            snapshots_taken: workers.iter().map(|w| w.snapshots_taken).sum(),
            breaker_opens: count(|k| matches!(k, SupervisorEventKind::BreakerOpened { .. })),
            breaker_half_opens: count(|k| matches!(k, SupervisorEventKind::BreakerHalfOpened)),
            breaker_closes: count(|k| matches!(k, SupervisorEventKind::BreakerClosed)),
            upgrades_committed,
            upgrades_rolled_back: upgrades.len() as u64 - upgrades_committed,
            upgrade_pause_ticks,
            upgrade_drained_packets,
            state_items_migrated,
            upgrades,
            events,
            cycles: merged.summary(),
            workers,
        }
    }

    /// Packet-conservation residue: offered minus everything accounted
    /// for (pipeline input + fault losses + accounted sheds). Zero in a
    /// correct runtime, no matter what faults were injected; positive
    /// means packets vanished, negative means double counting.
    pub fn unaccounted_packets(&self) -> i64 {
        self.offered_packets as i64
            - self.packets_in as i64
            - self.lost_packets as i64
            - self.shed_packets as i64
    }

    /// Fraction of offered packets that made it out of a pipeline,
    /// in [0, 1]; 1.0 when nothing was offered. Pipeline-intent drops
    /// (filters) count against goodput just as chaos losses do, so
    /// compare like pipelines.
    pub fn goodput(&self) -> f64 {
        if self.offered_packets == 0 {
            return 1.0;
        }
        self.packets_out as f64 / self.offered_packets as f64
    }
}
