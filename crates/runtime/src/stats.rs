//! Per-worker counters that outlive the worker thread.
//!
//! The supervisor hands every spawn of a worker (including respawns after
//! a fault) the *same* `Arc<WorkerStats>`: counters are cumulative across
//! a worker's generations, so throughput accounting survives the very
//! faults the runtime exists to contain. All hot-path updates are single
//! relaxed atomics; the batch-cycle histogram takes an uncontended mutex
//! (one writer — the worker thread — plus occasional snapshot readers).

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rbs_core::histogram::LogHistogram;
use rbs_core::stats::Summary;
use rbs_netfx::pipeline::StageStats;

/// Sub-buckets per octave for per-batch cycle histograms (~3% relative
/// error, 16 KiB per worker).
const CYCLE_HIST_PRECISION: u32 = 32;

/// Cumulative counters for one worker slot, shared between the worker
/// thread and the supervisor.
#[derive(Debug)]
pub struct WorkerStats {
    batches: AtomicU64,
    packets_in: AtomicU64,
    packets_out: AtomicU64,
    drops: AtomicU64,
    faults: AtomicU64,
    cycles: Mutex<LogHistogram>,
    /// Stage-by-stage counters captured from the pipeline at clean
    /// shutdown (a faulted pipeline dies with its thread and never
    /// reports; the respawn starts a fresh pipeline).
    final_stages: Mutex<Option<Vec<(String, StageStats)>>>,
}

impl WorkerStats {
    pub(crate) fn new() -> Self {
        Self {
            batches: AtomicU64::new(0),
            packets_in: AtomicU64::new(0),
            packets_out: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            cycles: Mutex::new(LogHistogram::new(CYCLE_HIST_PRECISION)),
            final_stages: Mutex::new(None),
        }
    }

    pub(crate) fn record_batch(&self, packets_in: u64, packets_out: u64, cycles: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.packets_in.fetch_add(packets_in, Ordering::Relaxed);
        self.packets_out.fetch_add(packets_out, Ordering::Relaxed);
        self.drops
            .fetch_add(packets_in.saturating_sub(packets_out), Ordering::Relaxed);
        self.cycles.lock().record(cycles);
    }

    pub(crate) fn record_fault(&self) {
        self.faults.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn store_final_stages(&self, stages: Vec<(String, StageStats)>) {
        *self.final_stages.lock() = Some(stages);
    }

    /// Batches fully processed (across all generations of this worker).
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Packets that entered the worker's pipeline.
    pub fn packets_in(&self) -> u64 {
        self.packets_in.load(Ordering::Relaxed)
    }

    /// Packets the worker's pipeline emitted.
    pub fn packets_out(&self) -> u64 {
        self.packets_out.load(Ordering::Relaxed)
    }

    /// Packets dropped by pipeline stages.
    pub fn drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    /// Faults (contained panics) across all generations.
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// A copy of the per-batch cycle histogram.
    pub fn cycle_histogram(&self) -> LogHistogram {
        self.cycles.lock().clone()
    }

    /// Stage counters from the last cleanly shut down pipeline, if any.
    pub fn final_stage_stats(&self) -> Option<Vec<(String, StageStats)>> {
        self.final_stages.lock().clone()
    }
}

/// Point-in-time view of one worker slot, as reported by the supervisor.
#[derive(Debug, Clone)]
pub struct WorkerSnapshot {
    /// Shard index of this worker.
    pub index: usize,
    /// Lifecycle state of the worker's domain.
    pub state: rbs_sfi::DomainState,
    /// Domain generation (bumped by every recovery).
    pub generation: u64,
    /// Times the supervisor respawned this worker's thread.
    pub respawns: u64,
    /// Batches the dispatcher routed to this shard.
    pub dispatched: u64,
    /// Batches the worker fully processed.
    pub processed: u64,
    /// Batches lost to faults (in-flight or queued at the crash).
    pub lost: u64,
    /// Packets that entered the worker's pipeline.
    pub packets_in: u64,
    /// Packets the worker's pipeline emitted.
    pub packets_out: u64,
    /// Packets dropped by pipeline stages.
    pub drops: u64,
    /// Contained panics.
    pub faults: u64,
    /// Per-stage counters from the last clean shutdown, if available.
    pub stage_stats: Option<Vec<(String, StageStats)>>,
}

/// Aggregate over all workers, produced by `ShardedRuntime::shutdown`.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Per-worker snapshots, index-ordered.
    pub workers: Vec<WorkerSnapshot>,
    /// Sum of per-worker processed batches.
    pub batches: u64,
    /// Sum of per-worker pipeline input packets.
    pub packets_in: u64,
    /// Sum of per-worker pipeline output packets.
    pub packets_out: u64,
    /// Sum of per-worker stage drops.
    pub drops: u64,
    /// Batches lost to faults across all workers.
    pub lost_batches: u64,
    /// Contained panics across all workers.
    pub faults: u64,
    /// Worker respawns across all workers.
    pub respawns: u64,
    /// Summary of per-batch processing cycles, merged across workers
    /// (exact moments, bucketed percentiles); `None` when no batch
    /// completed.
    pub cycles: Option<Summary>,
}

impl RuntimeReport {
    pub(crate) fn from_snapshots(
        workers: Vec<WorkerSnapshot>,
        histograms: Vec<LogHistogram>,
    ) -> Self {
        let mut merged = LogHistogram::new(CYCLE_HIST_PRECISION);
        for h in &histograms {
            merged.merge(h);
        }
        Self {
            batches: workers.iter().map(|w| w.processed).sum(),
            packets_in: workers.iter().map(|w| w.packets_in).sum(),
            packets_out: workers.iter().map(|w| w.packets_out).sum(),
            drops: workers.iter().map(|w| w.drops).sum(),
            lost_batches: workers.iter().map(|w| w.lost).sum(),
            faults: workers.iter().map(|w| w.faults).sum(),
            respawns: workers.iter().map(|w| w.respawns).sum(),
            cycles: merged.summary(),
            workers,
        }
    }
}
