//! The conventional-language baseline: taint over alias analysis.
//!
//! "In conventional programing languages, information flow analysis is
//! complicated by pointer aliasing. ... detecting such leaks in a
//! conventional language requires tracking all pointer aliases and
//! reflecting any change in the security label made via one alias to all
//! others." (§4)
//!
//! This module is that conventional analysis, for the same IR interpreted
//! under *aliasing* semantics (assignments of heap values alias rather
//! than move; `append` may adopt the source buffer's storage, the paper's
//! line 6):
//!
//! 1. [`points_to`] computes a flow-insensitive, Andersen-style
//!    (inclusion-based) points-to relation per function — the expensive,
//!    imprecise step Rust's ownership makes unnecessary;
//! 2. [`analyze_alias`] runs the same label abstract interpretation as
//!    [`crate::interp`], but heap labels live on *allocation-site cells*
//!    and every store joins into **all** cells its target may alias.
//!
//! [`analyze_naive`] is the strawman that skips step 1: per-variable
//! taint with aliasing semantics, which *misses* the paper's line-17
//! exploit (a false negative) — demonstrating why the conventional
//! analysis cannot do without the points-to step.
//!
//! The flow-insensitive points-to relation buys termination and speed at
//! the price of precision: a variable rebound to a different buffer
//! conflates both allocation sites forever, yielding false positives the
//! move-mode analysis does not have. Experiment E5 measures both costs.

use crate::interp::{expr_label, Violation};
use crate::ir::{Expr, Function, Loc, Program, Stmt, Var, VarKind};
use crate::label::Label;
use std::collections::BTreeMap;

/// A compact grow-only bitset for points-to sets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `bit`; returns true if it was newly set.
    pub fn insert(&mut self, bit: usize) -> bool {
        let (w, b) = (bit / 64, bit % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Membership test.
    pub fn contains(&self, bit: usize) -> bool {
        let (w, b) = (bit / 64, bit % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Unions `other` into `self`; returns true if `self` grew.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut grew = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let merged = *a | b;
            if merged != *a {
                *a = merged;
                grew = true;
            }
        }
        grew
    }

    /// Iterates over set bits.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            (0..64).filter_map(move |b| (word & (1 << b) != 0).then_some(wi * 64 + b))
        })
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// The points-to relation for one function.
#[derive(Debug, Clone, Default)]
pub struct PointsTo {
    /// Variable -> set of allocation-site cells it may reference.
    pub pts: BTreeMap<Var, BitSet>,
    /// Number of allocation sites (cells).
    pub cells: usize,
    /// Fixpoint iterations the solver took.
    pub iterations: usize,
}

/// Computes the flow-insensitive inclusion-based points-to relation for
/// a function's body under aliasing semantics.
pub fn points_to(program: &Program, f: &Function) -> PointsTo {
    let kinds = program.var_kinds(f);
    // Pass 1: number allocation sites and collect copy/adopt constraints.
    let mut next_cell = 0usize;
    let mut base: Vec<(Var, usize)> = Vec::new(); // pts(v) ∋ cell
    let mut copies: Vec<(Var, Var)> = Vec::new(); // pts(dst) ⊇ pts(src)
    collect_constraints(&f.body, &kinds, &mut next_cell, &mut base, &mut copies);

    let mut pt = PointsTo {
        pts: BTreeMap::new(),
        cells: next_cell,
        iterations: 0,
    };
    for (v, c) in &base {
        pt.pts.entry(v.clone()).or_default().insert(*c);
    }
    // Pass 2: iterate inclusion constraints to a fixpoint. Quadratic in
    // the worst case per round — deliberately the textbook algorithm,
    // whose cost E5 contrasts with the move-mode analysis.
    loop {
        pt.iterations += 1;
        let mut changed = false;
        for (dst, src) in &copies {
            let src_set = pt.pts.get(src).cloned().unwrap_or_default();
            if pt.pts.entry(dst.clone()).or_default().union_with(&src_set) {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    pt
}

fn collect_constraints(
    stmts: &[Stmt],
    kinds: &BTreeMap<Var, VarKind>,
    next_cell: &mut usize,
    base: &mut Vec<(Var, usize)>,
    copies: &mut Vec<(Var, Var)>,
) {
    let is_heap = |v: &Var| kinds.get(v).copied() == Some(VarKind::Heap);
    for s in stmts {
        match s {
            Stmt::Alloc { var } => {
                base.push((var.clone(), *next_cell));
                *next_cell += 1;
            }
            Stmt::Let { var, expr, .. } | Stmt::Assign { var, expr } => match expr {
                Expr::VecLit(_) => {
                    base.push((var.clone(), *next_cell));
                    *next_cell += 1;
                }
                // Aliasing semantics: a heap dst may point wherever src
                // does. Scalar copies carry no pointers.
                Expr::Var(src) if is_heap(src) => {
                    copies.push((var.clone(), src.clone()));
                }
                _ => {}
            },
            // The paper's line 6: an empty buffer adopts the appended
            // vector as its internal storage — obj may alias src.
            Stmt::Append { obj, src } => {
                if is_heap(src) {
                    copies.push((obj.clone(), src.clone()));
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_constraints(then_branch, kinds, next_cell, base, copies);
                collect_constraints(else_branch, kinds, next_cell, base, copies);
            }
            Stmt::While { body, .. } => {
                collect_constraints(body, kinds, next_cell, base, copies);
            }
            Stmt::Read { .. }
            | Stmt::Output { .. }
            | Stmt::Call { .. }
            | Stmt::Declassify { .. } => {}
        }
    }
}

/// Statistics from the aliasing analysis, for the scaling experiment.
#[derive(Debug, Clone, Default)]
pub struct AliasStats {
    /// Allocation cells across all functions.
    pub cells: usize,
    /// Total points-to edges (Σ |pts(v)|).
    pub pts_edges: usize,
    /// Points-to solver iterations summed over functions.
    pub solver_iterations: usize,
}

struct AliasCtx<'p> {
    program: &'p Program,
    pts: BTreeMap<Var, BitSet>,
    kinds: BTreeMap<Var, VarKind>,
    cell_labels: Vec<Label>,
    violations: Vec<Violation>,
    authority: Label,
    record: bool,
}

impl AliasCtx<'_> {
    fn is_heap(&self, v: &Var) -> bool {
        self.kinds.get(v).copied() == Some(VarKind::Heap)
    }
}

/// Runs the conventional-language analysis on `main`: Andersen points-to
/// followed by taint with alias updates. Returns violations plus cost
/// statistics.
///
/// Calls are not followed (the exploits and generated workloads are
/// intra-procedural in the heap; scalar calls would analyze as in
/// [`crate::interp`]).
pub fn analyze_alias(program: &Program) -> (Vec<Violation>, AliasStats) {
    let main = program
        .function("main")
        .expect("validated program has main");
    let pt = points_to(program, main);
    let stats = AliasStats {
        cells: pt.cells,
        pts_edges: pt.pts.values().map(BitSet::len).sum(),
        solver_iterations: pt.iterations,
    };
    let mut ctx = AliasCtx {
        program,
        pts: pt.pts,
        kinds: program.var_kinds(main),
        cell_labels: vec![Label::PUBLIC; pt.cells],
        violations: Vec::new(),
        authority: main.authority,
        record: true,
    };
    let mut scalars: BTreeMap<Var, Label> = main
        .params
        .iter()
        .map(|(p, l)| (p.clone(), l.unwrap_or(Label::PUBLIC)))
        .collect();
    alias_block(
        &main.body,
        &mut scalars,
        Label::PUBLIC,
        &main.name,
        &mut ctx,
    );
    (ctx.violations, stats)
}

/// The label of a variable under aliasing semantics: scalars from the
/// flow-sensitive environment, heap variables as the join over all cells
/// they may point to.
fn var_label_alias(v: &Var, scalars: &BTreeMap<Var, Label>, ctx: &AliasCtx<'_>) -> Label {
    if ctx.is_heap(v) {
        return match ctx.pts.get(v) {
            Some(set) => set
                .iter()
                .fold(Label::PUBLIC, |acc, c| acc.join(ctx.cell_labels[c])),
            None => Label::PUBLIC,
        };
    }
    scalars.get(v).copied().unwrap_or(Label::PUBLIC)
}

fn expr_label_alias(e: &Expr, scalars: &BTreeMap<Var, Label>, ctx: &AliasCtx<'_>) -> Label {
    match e {
        Expr::Const(_) | Expr::VecLit(_) => Label::PUBLIC,
        Expr::Var(v) => var_label_alias(v, scalars, ctx),
        Expr::Bin(_, l, r) => {
            expr_label_alias(l, scalars, ctx).join(expr_label_alias(r, scalars, ctx))
        }
    }
}

fn alias_block(
    stmts: &[Stmt],
    scalars: &mut BTreeMap<Var, Label>,
    pc: Label,
    path: &str,
    ctx: &mut AliasCtx<'_>,
) {
    for (i, s) in stmts.iter().enumerate() {
        let loc = Loc(format!("{path}[{i}]"));
        match s {
            Stmt::Let { var, expr, label } => {
                let computed = expr_label_alias(expr, scalars, ctx);
                let l = label.map_or(computed, |ann| ann.join(computed)).join(pc);
                if ctx.is_heap(var) {
                    // Heap binding: the annotation/initial label lands on
                    // every cell the variable may name.
                    write_through(var, l, ctx);
                } else {
                    scalars.insert(var.clone(), l);
                }
            }
            Stmt::Assign { var, expr } => {
                let l = expr_label_alias(expr, scalars, ctx).join(pc);
                if ctx.is_heap(var) {
                    write_through(var, l, ctx);
                } else {
                    scalars.insert(var.clone(), l);
                }
            }
            Stmt::Alloc { .. } => {}
            Stmt::Append { obj, src } => {
                // The alias-correct store: the appended label reaches
                // every cell `obj` may alias — including, after the
                // paper's line 6, the caller's original vector.
                let l = var_label_alias(src, scalars, ctx).join(pc);
                write_through(obj, l, ctx);
            }
            Stmt::Read { dst, obj } => {
                let l = var_label_alias(obj, scalars, ctx).join(pc);
                scalars.insert(dst.clone(), l);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let pc2 = pc.join(expr_label_alias(cond, scalars, ctx));
                let outer: Vec<Var> = scalars.keys().cloned().collect();
                let mut then_env = scalars.clone();
                alias_block(then_branch, &mut then_env, pc2, &format!("{loc}.then"), ctx);
                let mut else_env = scalars.clone();
                alias_block(else_branch, &mut else_env, pc2, &format!("{loc}.else"), ctx);
                for var in outer {
                    let t = then_env.get(&var).copied().unwrap_or(Label::PUBLIC);
                    let e = else_env.get(&var).copied().unwrap_or(Label::PUBLIC);
                    scalars.insert(var, t.join(e));
                }
            }
            Stmt::While { cond, body } => {
                let outer: Vec<Var> = scalars.keys().cloned().collect();
                let was_recording = ctx.record;
                ctx.record = false;
                for _ in 0..130 {
                    let pc2 = pc.join(expr_label_alias(cond, scalars, ctx));
                    let mut body_env = scalars.clone();
                    let before_cells = ctx.cell_labels.clone();
                    alias_block(body, &mut body_env, pc2, &format!("{loc}.body"), ctx);
                    let mut changed = ctx.cell_labels != before_cells;
                    for var in &outer {
                        let before = scalars.get(var).copied().unwrap_or(Label::PUBLIC);
                        let after = body_env.get(var).copied().unwrap_or(Label::PUBLIC);
                        let joined = before.join(after);
                        if joined != before {
                            scalars.insert(var.clone(), joined);
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                ctx.record = was_recording;
                let pc2 = pc.join(expr_label_alias(cond, scalars, ctx));
                let mut body_env = scalars.clone();
                alias_block(body, &mut body_env, pc2, &format!("{loc}.body"), ctx);
            }
            Stmt::Declassify { dst, expr } => {
                if ctx.record && !pc.flows_to(ctx.authority) {
                    ctx.violations.push(Violation {
                        loc: loc.clone(),
                        channel: format!("<declassify {dst}>"),
                        label: pc,
                        bound: ctx.authority,
                    });
                }
                let observed = expr_label_alias(expr, scalars, ctx).join(pc);
                let stripped = Label::from_bits(observed.bits() & !ctx.authority.bits());
                scalars.insert(dst.clone(), stripped);
            }
            Stmt::Output { channel, arg } => {
                let label = expr_label_alias(arg, scalars, ctx).join(pc);
                let bound = *ctx
                    .program
                    .channels
                    .get(channel)
                    .expect("validated program declares its channels");
                if ctx.record && !label.flows_to(bound) {
                    ctx.violations.push(Violation {
                        loc,
                        channel: channel.clone(),
                        label,
                        bound,
                    });
                }
            }
            Stmt::Call { dst, .. } => {
                if let Some(d) = dst {
                    scalars.insert(d.clone(), pc);
                }
            }
        }
    }
}

fn write_through(var: &Var, label: Label, ctx: &mut AliasCtx<'_>) {
    if let Some(set) = ctx.pts.get(var) {
        // Collect first: `set` borrows ctx.pts immutably.
        let cells: Vec<usize> = set.iter().collect();
        for c in cells {
            ctx.cell_labels[c] = ctx.cell_labels[c].join(label);
        }
    }
}

/// The strawman: taint with aliasing semantics but *without* a points-to
/// analysis — heap labels are kept per variable, so a store through one
/// alias never reaches the others. Misses the paper's line-17 exploit.
pub fn analyze_naive(program: &Program) -> Vec<Violation> {
    let main = program
        .function("main")
        .expect("validated program has main");
    let mut env: BTreeMap<Var, Label> = main
        .params
        .iter()
        .map(|(p, l)| (p.clone(), l.unwrap_or(Label::PUBLIC)))
        .collect();
    let mut violations = Vec::new();
    naive_block(
        &main.body,
        &mut env,
        Label::PUBLIC,
        &main.name,
        program,
        &mut violations,
    );
    violations
}

fn naive_block(
    stmts: &[Stmt],
    env: &mut BTreeMap<Var, Label>,
    pc: Label,
    path: &str,
    program: &Program,
    violations: &mut Vec<Violation>,
) {
    for (i, s) in stmts.iter().enumerate() {
        let loc = Loc(format!("{path}[{i}]"));
        match s {
            Stmt::Let { var, expr, label } => {
                let computed = expr_label(expr, env);
                let l = label.map_or(computed, |ann| ann.join(computed));
                env.insert(var.clone(), l.join(pc));
            }
            Stmt::Assign { var, expr } => {
                env.insert(var.clone(), expr_label(expr, env).join(pc));
            }
            Stmt::Alloc { var } => {
                env.insert(var.clone(), pc);
            }
            Stmt::Append { obj, src } => {
                // Per-variable only: `src`'s label flows into `obj`, but
                // the alias created by adoption is invisible here.
                let l = env.get(src).copied().unwrap_or(Label::PUBLIC);
                let o = env.get(obj).copied().unwrap_or(Label::PUBLIC);
                env.insert(obj.clone(), o.join(l).join(pc));
            }
            Stmt::Read { dst, obj } => {
                let l = env.get(obj).copied().unwrap_or(Label::PUBLIC);
                env.insert(dst.clone(), l.join(pc));
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let pc2 = pc.join(expr_label(cond, env));
                let outer: Vec<Var> = env.keys().cloned().collect();
                let mut t = env.clone();
                naive_block(
                    then_branch,
                    &mut t,
                    pc2,
                    &format!("{loc}.then"),
                    program,
                    violations,
                );
                let mut e = env.clone();
                naive_block(
                    else_branch,
                    &mut e,
                    pc2,
                    &format!("{loc}.else"),
                    program,
                    violations,
                );
                for var in outer {
                    let tl = t.get(&var).copied().unwrap_or(Label::PUBLIC);
                    let el = e.get(&var).copied().unwrap_or(Label::PUBLIC);
                    env.insert(var, tl.join(el));
                }
            }
            Stmt::While { cond, body } => {
                for _ in 0..130 {
                    let pc2 = pc.join(expr_label(cond, env));
                    let mut body_env = env.clone();
                    let mut scratch = Vec::new();
                    naive_block(
                        body,
                        &mut body_env,
                        pc2,
                        &format!("{loc}.body"),
                        program,
                        &mut scratch,
                    );
                    let mut changed = false;
                    let outer: Vec<Var> = env.keys().cloned().collect();
                    for var in outer {
                        let before = env.get(&var).copied().unwrap_or(Label::PUBLIC);
                        let after = body_env.get(&var).copied().unwrap_or(Label::PUBLIC);
                        if before.join(after) != before {
                            env.insert(var, before.join(after));
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                let pc2 = pc.join(expr_label(cond, env));
                let mut body_env = env.clone();
                naive_block(
                    body,
                    &mut body_env,
                    pc2,
                    &format!("{loc}.body"),
                    program,
                    violations,
                );
            }
            Stmt::Declassify { dst, expr } => {
                // The naive baseline honors declassification with main's
                // authority (it has no notion of per-function scopes).
                let auth = program
                    .function("main")
                    .map(|f| f.authority)
                    .unwrap_or(Label::PUBLIC);
                let observed = expr_label(expr, env).join(pc);
                env.insert(
                    dst.clone(),
                    Label::from_bits(observed.bits() & !auth.bits()),
                );
            }
            Stmt::Output { channel, arg } => {
                let label = expr_label(arg, env).join(pc);
                let bound = *program
                    .channels
                    .get(channel)
                    .expect("validated program declares its channels");
                if !label.flows_to(bound) {
                    violations.push(Violation {
                        loc,
                        channel: channel.clone(),
                        label,
                        bound,
                    });
                }
            }
            Stmt::Call { dst, .. } => {
                if let Some(d) = dst {
                    env.insert(d.clone(), pc);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ProgramBuilder;

    fn v(name: &str) -> Expr {
        Expr::Var(name.into())
    }

    fn secret_vec(name: &str) -> Stmt {
        Stmt::Let {
            var: name.into(),
            expr: Expr::VecLit(vec![4, 5, 6]),
            label: Some(Label::SECRET),
        }
    }

    /// The paper's line-17 exploit under aliasing semantics: write
    /// non-secret vector into the empty buffer (adopted as storage),
    /// append secret data, print the *original* non-secret variable.
    fn exploit_program() -> Program {
        ProgramBuilder::new()
            .channel("term", Label::PUBLIC)
            .main(vec![
                Stmt::Alloc { var: "buf".into() },
                Stmt::Let {
                    var: "nonsec".into(),
                    expr: Expr::VecLit(vec![1, 2, 3]),
                    label: None,
                },
                secret_vec("sec"),
                Stmt::Append {
                    obj: "buf".into(),
                    src: "nonsec".into(),
                }, // line 14
                Stmt::Append {
                    obj: "buf".into(),
                    src: "sec".into(),
                }, // line 15
                Stmt::Output {
                    channel: "term".into(),
                    arg: v("nonsec"),
                }, // line 17
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new();
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(100));
        assert!(s.contains(3) && s.contains(100) && !s.contains(4));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 100]);
        let mut t = BitSet::new();
        t.insert(5);
        assert!(t.union_with(&s));
        assert!(!t.union_with(&s), "second union adds nothing");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn points_to_tracks_adoption() {
        let p = exploit_program();
        let pt = points_to(&p, p.function("main").unwrap());
        // Cells: buf's alloc, nonsec's literal, sec's literal.
        assert_eq!(pt.cells, 3);
        let buf = &pt.pts["buf"];
        let nonsec = &pt.pts["nonsec"];
        // buf adopted both vectors: it may alias nonsec's cell.
        assert!(
            nonsec.iter().all(|c| buf.contains(c)),
            "buf must cover nonsec"
        );
        assert!(buf.len() >= 2);
    }

    #[test]
    fn alias_analysis_catches_the_line17_exploit() {
        let p = exploit_program();
        let (violations, stats) = analyze_alias(&p);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].loc.0, "main[5]");
        assert!(stats.cells == 3 && stats.pts_edges >= 4);
    }

    #[test]
    fn naive_analysis_misses_the_exploit() {
        let p = exploit_program();
        let violations = analyze_naive(&p);
        assert!(
            violations.is_empty(),
            "the per-variable strawman cannot see the alias: {violations:?}"
        );
    }

    #[test]
    fn naive_still_catches_direct_leak() {
        let p = ProgramBuilder::new()
            .channel("term", Label::PUBLIC)
            .main(vec![
                secret_vec("sec"),
                Stmt::Output {
                    channel: "term".into(),
                    arg: v("sec"),
                },
            ])
            .build()
            .unwrap();
        assert_eq!(analyze_naive(&p).len(), 1);
        assert_eq!(analyze_alias(&p).0.len(), 1);
    }

    /// Flow-insensitive points-to conflates a variable's successive
    /// bindings, producing a false positive the move-mode analysis does
    /// not have — the precision cost of the conventional approach.
    #[test]
    fn alias_analysis_false_positive_on_rebinding() {
        let p = ProgramBuilder::new()
            .channel("term", Label::PUBLIC)
            .main(vec![
                Stmt::Let {
                    var: "x".into(),
                    expr: Expr::VecLit(vec![1]),
                    label: None,
                },
                secret_vec("sec"),
                Stmt::Append {
                    obj: "x".into(),
                    src: "sec".into(),
                },
                // Rebind x to a fresh public vector, then print it.
                Stmt::Assign {
                    var: "x".into(),
                    expr: Expr::VecLit(vec![2]),
                },
                Stmt::Output {
                    channel: "term".into(),
                    arg: v("x"),
                },
            ])
            .build()
            .unwrap();
        let (alias_violations, _) = analyze_alias(&p);
        assert_eq!(
            alias_violations.len(),
            1,
            "flow-insensitive pts conflates both bindings of x"
        );
        // Move-mode analysis is precise here: after the reassignment x
        // is a fresh public buffer. (The append consumed `sec`, and the
        // rebinding of x is legal.)
        let move_violations = crate::interp::analyze(&p).unwrap();
        assert!(move_violations.is_empty(), "{move_violations:?}");
    }

    #[test]
    fn implicit_flows_still_tracked_in_alias_mode() {
        let p = ProgramBuilder::new()
            .channel("term", Label::PUBLIC)
            .main(vec![
                Stmt::Let {
                    var: "s".into(),
                    expr: Expr::Const(1),
                    label: Some(Label::SECRET),
                },
                Stmt::Let {
                    var: "x".into(),
                    expr: Expr::Const(0),
                    label: None,
                },
                Stmt::If {
                    cond: v("s"),
                    then_branch: vec![Stmt::Assign {
                        var: "x".into(),
                        expr: Expr::Const(1),
                    }],
                    else_branch: vec![],
                },
                Stmt::Output {
                    channel: "term".into(),
                    arg: v("x"),
                },
            ])
            .build()
            .unwrap();
        assert_eq!(analyze_alias(&p).0.len(), 1);
    }

    #[test]
    fn loops_taint_cells_to_fixpoint() {
        // Repeatedly append a secret into a buffer inside a loop.
        let p = ProgramBuilder::new()
            .channel("term", Label::PUBLIC)
            .main(vec![
                Stmt::Alloc { var: "buf".into() },
                Stmt::Let {
                    var: "c".into(),
                    expr: Expr::Const(1),
                    label: None,
                },
                Stmt::While {
                    cond: v("c"),
                    body: vec![
                        secret_vec("sec"),
                        Stmt::Append {
                            obj: "buf".into(),
                            src: "sec".into(),
                        },
                    ],
                },
                Stmt::Output {
                    channel: "term".into(),
                    arg: v("buf"),
                },
            ])
            .build()
            .unwrap();
        let (violations, _) = analyze_alias(&p);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].loc.0, "main[3]");
    }

    #[test]
    fn solver_iteration_count_reported() {
        let p = exploit_program();
        let pt = points_to(&p, p.function("main").unwrap());
        assert!(pt.iterations >= 1);
    }
}
