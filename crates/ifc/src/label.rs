//! The security-label lattice.
//!
//! A [`Label`] is a finite set of *secrecy atoms*, represented as a
//! bitmask. Joins are unions: data derived from both `{alice}` and
//! `{bob}` inputs carries `{alice, bob}`. The flows-to order is subset
//! inclusion: data may be written to a channel iff the data's atoms are
//! all covered by the channel's bound.
//!
//! The two-point public/secret lattice of the paper's buffer example is
//! the special case with one atom ([`Label::SECRET`]); the secure data
//! store uses one atom per client. Sixty-four atoms are enough for every
//! workload in this reproduction while keeping join/leq single
//! instructions — the analysis speed claims of E5 are about algorithmic
//! structure, not lattice bit-width.

use std::fmt;

/// A security label: a set of up to 64 secrecy atoms.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Label(u64);

impl Label {
    /// The bottom of the lattice: public data, writable anywhere.
    pub const PUBLIC: Label = Label(0);

    /// The conventional single secrecy atom for two-point examples.
    pub const SECRET: Label = Label(1);

    /// The top of the lattice: joins everything, flows nowhere (except
    /// a top-bounded channel).
    pub const TOP: Label = Label(u64::MAX);

    /// The label carrying exactly atom `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 64`.
    pub const fn atom(n: u32) -> Label {
        assert!(n < 64, "at most 64 secrecy atoms are supported");
        Label(1 << n)
    }

    /// Constructs a label from a raw bitmask.
    pub const fn from_bits(bits: u64) -> Label {
        Label(bits)
    }

    /// The raw bitmask.
    pub const fn bits(&self) -> u64 {
        self.0
    }

    /// The least upper bound: data influenced by both operands.
    #[inline]
    pub const fn join(self, other: Label) -> Label {
        Label(self.0 | other.0)
    }

    /// The greatest lower bound.
    #[inline]
    pub const fn meet(self, other: Label) -> Label {
        Label(self.0 & other.0)
    }

    /// The flows-to relation: `self ⊑ bound` iff every atom of `self`
    /// is permitted by `bound`.
    #[inline]
    pub const fn flows_to(self, bound: Label) -> bool {
        self.0 & !bound.0 == 0
    }

    /// True for the public (bottom) label.
    pub const fn is_public(&self) -> bool {
        self.0 == 0
    }

    /// Number of atoms in the label.
    pub const fn atom_count(&self) -> u32 {
        self.0.count_ones()
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_public() {
            return write!(f, "public");
        }
        if *self == Label::SECRET {
            return write!(f, "secret");
        }
        write!(f, "{{")?;
        let mut first = true;
        for n in 0..64 {
            if self.0 & (1 << n) != 0 {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "a{n}")?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constants() {
        assert!(Label::PUBLIC.is_public());
        assert!(!Label::SECRET.is_public());
        assert_eq!(Label::SECRET, Label::atom(0));
        assert_eq!(Label::TOP.atom_count(), 64);
    }

    #[test]
    fn flows_to_basics() {
        let a = Label::atom(1);
        let b = Label::atom(2);
        assert!(Label::PUBLIC.flows_to(Label::PUBLIC));
        assert!(Label::PUBLIC.flows_to(a));
        assert!(!a.flows_to(Label::PUBLIC));
        assert!(a.flows_to(a));
        assert!(!a.flows_to(b));
        assert!(a.flows_to(a.join(b)));
        assert!(a.join(b).flows_to(Label::TOP));
    }

    #[test]
    fn join_collects_influences() {
        let ab = Label::atom(1).join(Label::atom(2));
        assert_eq!(ab.atom_count(), 2);
        assert!(Label::atom(1).flows_to(ab));
        assert!(Label::atom(2).flows_to(ab));
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", Label::PUBLIC), "public");
        assert_eq!(format!("{:?}", Label::SECRET), "secret");
        assert_eq!(
            format!("{:?}", Label::atom(3).join(Label::atom(5))),
            "{a3,a5}"
        );
    }

    #[test]
    #[should_panic(expected = "64 secrecy atoms")]
    fn atom_out_of_range() {
        Label::atom(64);
    }

    proptest! {
        /// Join is commutative, associative, idempotent — lattice laws.
        #[test]
        fn join_lattice_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
            let (a, b, c) = (Label::from_bits(a), Label::from_bits(b), Label::from_bits(c));
            prop_assert_eq!(a.join(b), b.join(a));
            prop_assert_eq!(a.join(b).join(c), a.join(b.join(c)));
            prop_assert_eq!(a.join(a), a);
            prop_assert_eq!(a.join(Label::PUBLIC), a);
            prop_assert_eq!(a.join(Label::TOP), Label::TOP);
        }

        /// Meet laws and absorption.
        #[test]
        fn meet_lattice_laws(a in any::<u64>(), b in any::<u64>()) {
            let (a, b) = (Label::from_bits(a), Label::from_bits(b));
            prop_assert_eq!(a.meet(b), b.meet(a));
            prop_assert_eq!(a.meet(a), a);
            prop_assert_eq!(a.join(a.meet(b)), a);
            prop_assert_eq!(a.meet(a.join(b)), a);
        }

        /// flows_to is a partial order consistent with join.
        #[test]
        fn flows_to_is_order(a in any::<u64>(), b in any::<u64>()) {
            let (a, b) = (Label::from_bits(a), Label::from_bits(b));
            prop_assert!(a.flows_to(a.join(b)));
            prop_assert!(b.flows_to(a.join(b)));
            // a ⊑ b and b ⊑ a implies a = b.
            if a.flows_to(b) && b.flows_to(a) {
                prop_assert_eq!(a, b);
            }
            // Join is the least upper bound: any upper bound contains it.
            let ub = Label::from_bits(a.bits() | b.bits() | 0xF0F0);
            prop_assert!(a.join(b).flows_to(ub));
        }
    }
}
