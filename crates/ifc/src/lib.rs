//! Static information flow control by abstract interpretation (§4).
//!
//! The paper formulates IFC as "verification of an abstract interpretation
//! of the program": every variable's value is abstracted by its security
//! label, expressions join the labels of their operands, an auxiliary
//! program-counter label tracks implicit flows through branches, and the
//! verifier proves that labels written to output channels never exceed the
//! channel's bound. The punchline is *why this is cheap in Rust*: move
//! semantics rule out aliasing, so the analysis never needs a points-to
//! step — and the use-after-move exploit of the paper's buffer example is
//! rejected by the ownership discipline before labels are even consulted.
//!
//! This crate implements the whole pipeline natively (the paper used Rust
//! macros + the SMACK verifier; see DESIGN.md substitution 3):
//!
//! - [`label`]: the security lattice — a join-semilattice of secrecy
//!   atoms, covering both the two-point public/secret lattice and
//!   per-principal labels for the secure store;
//! - [`ir`]: a small imperative language with *move semantics on heap
//!   values*, mirroring the Rust subset the paper analyses, plus an
//!   aliasing mode that models a conventional C-like language;
//! - [`parse`]: a text frontend for writing example programs;
//! - [`ownership`]: the borrow-checker stand-in — rejects use-after-move
//!   (the paper's line 17);
//! - [`interp`]: the label abstract interpreter with pc-taint and
//!   fixpoint loops;
//! - [`alias`]: the conventional-language baseline — Andersen-style
//!   points-to analysis composed with taint, needed for the same
//!   precision once aliasing exists (E5 measures its cost);
//! - [`summary`]: compositional function summaries, the paper's
//!   "further improvements" paragraph;
//! - [`verify`]: the driver producing verdicts and violation traces;
//! - [`progen`]: synthetic program families for the scaling experiments;
//! - [`examples`]: the paper's buffer example and the secure data store
//!   (with its seeded bug).

pub mod alias;
pub mod declass;
pub mod examples;
pub mod exec;
pub mod interp;
pub mod ir;
pub mod label;
pub mod ownership;
pub mod parse;
pub mod pretty;
pub mod progen;
pub mod summary;
pub mod verify;

pub use interp::LabelState;
pub use ir::{Expr, Function, Program, Stmt};
pub use label::Label;
pub use ownership::OwnershipError;
pub use verify::{Verdict, Violation};
