//! A text frontend for the IR.
//!
//! The paper attaches security annotations to Rust programs via macros;
//! our equivalent is a small concrete syntax so examples and tests can be
//! written as readable program text rather than AST constructors:
//!
//! ```text
//! channel term public;
//! channel vault secret;
//!
//! fn main() {
//!     let buf = alloc;
//!     let nonsec = vec[1, 2, 3];
//!     let sec = vec[4, 5, 6] label secret;
//!     append buf, nonsec;
//!     append buf, sec;
//!     output term, buf;
//! }
//! ```
//!
//! Labels are written `public`, `secret`, or `{name, ...}`; atom names
//! are registered on first use (with `secret` pinned to atom 0). Line
//! comments start with `#`.

use crate::ir::{BinOp, Expr, Function, Program, Stmt};
use crate::label::Label;
use std::collections::BTreeMap;
use std::fmt;

/// A parse failure, with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error was detected on.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(i64),
    Punct(&'static str),
}

struct Lexer {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut toks = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        let line_num = lineno + 1;
        let line = line.split('#').next().unwrap_or("");
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if c.is_whitespace() {
                i += 1;
            } else if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push((Tok::Ident(line[start..i].to_string()), line_num));
            } else if c.is_ascii_digit()
                || (c == '-' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit())
            {
                let start = i;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = line[start..i].parse().map_err(|_| ParseError {
                    line: line_num,
                    msg: format!("bad number {}", &line[start..i]),
                })?;
                toks.push((Tok::Num(n), line_num));
            } else {
                let two = line.get(i..i + 2);
                let punct = match two {
                    Some("==") => Some("=="),
                    Some("->") => Some("->"),
                    _ => None,
                };
                if let Some(p) = punct {
                    toks.push((Tok::Punct(p), line_num));
                    i += 2;
                    continue;
                }
                let p = match c {
                    '(' => "(",
                    ')' => ")",
                    '{' => "{",
                    '}' => "}",
                    '[' => "[",
                    ']' => "]",
                    ',' => ",",
                    ';' => ";",
                    '=' => "=",
                    '+' => "+",
                    '-' => "-",
                    '*' => "*",
                    '<' => "<",
                    _ => {
                        return Err(ParseError {
                            line: line_num,
                            msg: format!("unexpected character {c:?}"),
                        });
                    }
                };
                toks.push((Tok::Punct(p), line_num));
                i += 1;
            }
        }
    }
    Ok(toks)
}

impl Lexer {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|&(_, l)| l)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            msg: msg.into(),
        }
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Punct(q)) if q == p => Ok(()),
            other => Err(self.err(format!("expected {p:?}, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) if s == kw => Ok(()),
            other => Err(self.err(format!("expected {kw:?}, found {other:?}"))),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

/// Maps label-atom names to bits; `secret` is pinned to atom 0.
#[derive(Debug, Default)]
pub struct AtomRegistry {
    names: BTreeMap<String, u32>,
}

impl AtomRegistry {
    /// Creates a registry with `secret` pre-registered as atom 0.
    pub fn new() -> Self {
        let mut names = BTreeMap::new();
        names.insert("secret".to_string(), 0);
        Self { names }
    }

    /// Returns the atom bit for `name`, registering it if new.
    pub fn intern(&mut self, name: &str) -> Result<u32, String> {
        if let Some(&n) = self.names.get(name) {
            return Ok(n);
        }
        let n = self.names.len() as u32;
        if n >= 64 {
            return Err(format!("too many label atoms (at {name})"));
        }
        self.names.insert(name.to_string(), n);
        Ok(n)
    }

    /// The registered names in atom order.
    pub fn names(&self) -> Vec<(&str, u32)> {
        let mut v: Vec<(&str, u32)> = self.names.iter().map(|(s, &n)| (s.as_str(), n)).collect();
        v.sort_by_key(|&(_, n)| n);
        v
    }
}

struct Parser {
    lx: Lexer,
    atoms: AtomRegistry,
}

/// Parses program text; the program is validated before being returned.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let (program, _atoms) = parse_with_atoms(src)?;
    Ok(program)
}

/// Like [`parse`], also returning the label-atom registry (for printing
/// labels with their declared names).
pub fn parse_with_atoms(src: &str) -> Result<(Program, AtomRegistry), ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        lx: Lexer { toks, pos: 0 },
        atoms: AtomRegistry::new(),
    };
    let mut program = Program::default();
    while p.lx.peek().is_some() {
        if p.lx.eat_keyword("channel") {
            let name = p.lx.expect_ident()?;
            let bound = p.parse_label()?;
            p.lx.expect_punct(";")?;
            program.channels.insert(name, bound);
        } else if p.lx.eat_keyword("fn") {
            let f = p.parse_function()?;
            program.functions.push(f);
        } else {
            return Err(p.lx.err(format!(
                "expected `channel` or `fn`, found {:?}",
                p.lx.peek()
            )));
        }
    }
    program.validate().map_err(|e| ParseError {
        line: 0,
        msg: e.to_string(),
    })?;
    Ok((program, p.atoms))
}

impl Parser {
    fn parse_label(&mut self) -> Result<Label, ParseError> {
        if self.lx.eat_keyword("public") {
            return Ok(Label::PUBLIC);
        }
        if self.lx.eat_punct("{") {
            let mut label = Label::PUBLIC;
            if !self.lx.eat_punct("}") {
                loop {
                    let name = self.lx.expect_ident()?;
                    let bit = self.atoms.intern(&name).map_err(|m| self.lx.err(m))?;
                    label = label.join(Label::atom(bit));
                    if self.lx.eat_punct("}") {
                        break;
                    }
                    self.lx.expect_punct(",")?;
                }
            }
            return Ok(label);
        }
        // A bare atom name (e.g. `secret`, `alice`).
        let name = self.lx.expect_ident()?;
        let bit = self.atoms.intern(&name).map_err(|m| self.lx.err(m))?;
        Ok(Label::atom(bit))
    }

    fn parse_function(&mut self) -> Result<Function, ParseError> {
        let name = self.lx.expect_ident()?;
        self.lx.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.lx.eat_punct(")") {
            loop {
                let p = self.lx.expect_ident()?;
                let label = if self.lx.eat_keyword("label") {
                    Some(self.parse_label()?)
                } else {
                    None
                };
                params.push((p, label));
                if self.lx.eat_punct(")") {
                    break;
                }
                self.lx.expect_punct(",")?;
            }
        }
        let authority = if self.lx.eat_keyword("authority") {
            self.parse_label()?
        } else {
            Label::PUBLIC
        };
        self.lx.expect_punct("{")?;
        let (body, ret) = self.parse_block_with_return()?;
        Ok(Function {
            name,
            params,
            authority,
            body,
            ret,
        })
    }

    /// Parses statements until `}`; a trailing `return expr;` becomes the
    /// function result.
    fn parse_block_with_return(&mut self) -> Result<(Vec<Stmt>, Option<Expr>), ParseError> {
        let mut stmts = Vec::new();
        let mut ret = None;
        loop {
            if self.lx.eat_punct("}") {
                break;
            }
            if self.lx.eat_keyword("return") {
                let e = self.parse_expr()?;
                self.lx.expect_punct(";")?;
                self.lx.expect_punct("}")?;
                ret = Some(e);
                break;
            }
            stmts.push(self.parse_stmt()?);
        }
        Ok((stmts, ret))
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.lx.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.lx.eat_punct("}") {
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.lx.eat_keyword("let") {
            let var = self.lx.expect_ident()?;
            self.lx.expect_punct("=")?;
            if self.lx.eat_keyword("alloc") {
                self.lx.expect_punct(";")?;
                return Ok(Stmt::Alloc { var });
            }
            if self.lx.eat_keyword("read") {
                let obj = self.lx.expect_ident()?;
                self.lx.expect_punct(";")?;
                return Ok(Stmt::Read { dst: var, obj });
            }
            if self.lx.eat_keyword("call") {
                let (func, args) = self.parse_call_tail()?;
                self.lx.expect_punct(";")?;
                return Ok(Stmt::Call {
                    dst: Some(var),
                    func,
                    args,
                });
            }
            if self.lx.eat_keyword("declassify") {
                let expr = self.parse_expr()?;
                self.lx.expect_punct(";")?;
                return Ok(Stmt::Declassify { dst: var, expr });
            }
            let expr = self.parse_expr()?;
            let label = if self.lx.eat_keyword("label") {
                Some(self.parse_label()?)
            } else {
                None
            };
            self.lx.expect_punct(";")?;
            return Ok(Stmt::Let { var, expr, label });
        }
        if self.lx.eat_keyword("append") {
            let obj = self.lx.expect_ident()?;
            self.lx.expect_punct(",")?;
            let src = self.lx.expect_ident()?;
            self.lx.expect_punct(";")?;
            return Ok(Stmt::Append { obj, src });
        }
        if self.lx.eat_keyword("output") {
            let channel = self.lx.expect_ident()?;
            self.lx.expect_punct(",")?;
            let arg = self.parse_expr()?;
            self.lx.expect_punct(";")?;
            return Ok(Stmt::Output { channel, arg });
        }
        if self.lx.eat_keyword("if") {
            let cond = self.parse_expr()?;
            let then_branch = self.parse_block()?;
            let else_branch = if self.lx.eat_keyword("else") {
                self.parse_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_branch,
                else_branch,
            });
        }
        if self.lx.eat_keyword("while") {
            let cond = self.parse_expr()?;
            let body = self.parse_block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.lx.eat_keyword("call") {
            let (func, args) = self.parse_call_tail()?;
            self.lx.expect_punct(";")?;
            return Ok(Stmt::Call {
                dst: None,
                func,
                args,
            });
        }
        // Fallback: assignment `var = expr;`.
        let var = self.lx.expect_ident()?;
        self.lx.expect_punct("=")?;
        let expr = self.parse_expr()?;
        self.lx.expect_punct(";")?;
        Ok(Stmt::Assign { var, expr })
    }

    fn parse_call_tail(&mut self) -> Result<(String, Vec<Expr>), ParseError> {
        let func = self.lx.expect_ident()?;
        self.lx.expect_punct("(")?;
        let mut args = Vec::new();
        if !self.lx.eat_punct(")") {
            loop {
                args.push(self.parse_expr()?);
                if self.lx.eat_punct(")") {
                    break;
                }
                self.lx.expect_punct(",")?;
            }
        }
        Ok((func, args))
    }

    /// Comparison (lowest) > additive > multiplicative > atoms.
    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_additive()?;
        if self.lx.eat_punct("==") {
            let rhs = self.parse_additive()?;
            return Ok(Expr::bin(BinOp::Eq, lhs, rhs));
        }
        if self.lx.eat_punct("<") {
            let rhs = self.parse_additive()?;
            return Ok(Expr::bin(BinOp::Lt, lhs, rhs));
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            if self.lx.eat_punct("+") {
                let rhs = self.parse_multiplicative()?;
                lhs = Expr::bin(BinOp::Add, lhs, rhs);
            } else if self.lx.eat_punct("-") {
                let rhs = self.parse_multiplicative()?;
                lhs = Expr::bin(BinOp::Sub, lhs, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_atom()?;
        while self.lx.eat_punct("*") {
            let rhs = self.parse_atom()?;
            lhs = Expr::bin(BinOp::Mul, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        if self.lx.eat_punct("(") {
            let e = self.parse_expr()?;
            self.lx.expect_punct(")")?;
            return Ok(e);
        }
        if self.lx.eat_keyword("vec") {
            self.lx.expect_punct("[")?;
            let mut items = Vec::new();
            if !self.lx.eat_punct("]") {
                loop {
                    match self.lx.next() {
                        Some(Tok::Num(n)) => items.push(n),
                        other => {
                            return Err(self
                                .lx
                                .err(format!("expected number in vec literal, found {other:?}")));
                        }
                    }
                    if self.lx.eat_punct("]") {
                        break;
                    }
                    self.lx.expect_punct(",")?;
                }
            }
            return Ok(Expr::VecLit(items));
        }
        match self.lx.next() {
            Some(Tok::Num(n)) => Ok(Expr::Const(n)),
            Some(Tok::Ident(s)) => Ok(Expr::Var(s)),
            other => Err(self.lx.err(format!("expected expression, found {other:?}"))),
        }
    }
}

// `expect_keyword` is used by future syntax extensions; keep it exercised.
#[allow(dead_code)]
fn _exercise_expect_keyword(lx: &mut Lexer) -> Result<(), ParseError> {
    lx.expect_keyword("let")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp;

    #[test]
    fn parses_the_paper_buffer_program() {
        let src = r#"
            channel term public;

            fn main() {
                let buf = alloc;                      # line 9
                let nonsec = vec[1, 2, 3];            # lines 10-11
                let sec = vec[4, 5, 6] label secret;  # lines 12-13
                append buf, nonsec;                   # line 14
                append buf, sec;                      # line 15
                output term, buf;                     # line 16: leaks
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.stmt_count(), 6);
        let vs = interp::analyze(&p).unwrap();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].channel, "term");
    }

    #[test]
    fn full_statement_coverage() {
        let src = r#"
            channel term public;
            channel vault secret;

            fn helper(a, b label secret) {
                output vault, a + b;
                return a * 2;
            }

            fn main() {
                let x = 1 label secret;
                let y = (x + 2) * 3;
                let buf = alloc;
                let v = vec[];
                append buf, v;
                let d = read buf;
                if y < 10 { output vault, y; } else { output vault, 0 - y; }
                while d == 0 { d = d + 1; }
                let r = call helper(1, 2);
                call helper(r, r);
                output vault, r;
            }
        "#;
        let p = parse(src).unwrap();
        assert!(p.function("helper").is_some());
        assert!(interp::analyze(&p).unwrap().is_empty());
    }

    #[test]
    fn named_atoms_register_in_order() {
        let src = r#"
            channel alice_ch {alice};
            channel both {alice, bob};
            fn main() {
                let a = 1 label {alice};
                let b = 2 label {bob};
                output alice_ch, a;
                output both, a + b;
                output alice_ch, b;   # violation: bob data on alice channel
            }
        "#;
        let (p, atoms) = parse_with_atoms(src).unwrap();
        let names = atoms.names();
        assert_eq!(names[0], ("secret", 0));
        assert!(names.iter().any(|&(n, _)| n == "alice"));
        assert!(names.iter().any(|&(n, _)| n == "bob"));
        let vs = interp::analyze(&p).unwrap();
        assert_eq!(vs.len(), 1);
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let src = "channel t public;\n# whole-line comment\nfn main() { # trailing\n let x = 1; output t, x; }";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn negative_numbers() {
        let src = "channel t public; fn main() { let x = -5; output t, x + -3; }";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn error_reports_line() {
        let src = "channel t public;\nfn main() {\n  let x = @;\n}";
        let e = parse(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("unexpected character"));
    }

    #[test]
    fn missing_semicolon_is_an_error() {
        let src = "channel t public; fn main() { let x = 1 output t, x; }";
        let e = parse(src).unwrap_err();
        assert!(e.msg.contains("expected"), "{e}");
    }

    #[test]
    fn validation_errors_surface() {
        let src = "fn main() { output nowhere, 1; }";
        let e = parse(src).unwrap_err();
        assert!(e.msg.contains("unknown channel"), "{e}");
    }

    #[test]
    fn too_many_atoms_rejected() {
        let mut src = String::from("channel t public;\nfn main() {\n");
        for i in 0..70 {
            src.push_str(&format!("let x{i} = 1 label {{atom{i}}};\n"));
        }
        src.push('}');
        let e = parse(&src).unwrap_err();
        assert!(e.msg.contains("too many label atoms"), "{e}");
    }

    #[test]
    fn precedence_mul_binds_tighter() {
        let src = "channel t public; fn main() { let x = 1 + 2 * 3; output t, x; }";
        let p = parse(src).unwrap();
        let Stmt::Let { expr, .. } = &p.function("main").unwrap().body[0] else {
            panic!("expected let");
        };
        // Shape: Add(1, Mul(2, 3)).
        let Expr::Bin(BinOp::Add, lhs, rhs) = expr else {
            panic!("expected add at top: {expr:?}");
        };
        assert_eq!(**lhs, Expr::Const(1));
        assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn empty_label_braces_is_public() {
        let src = "channel t {}; fn main() { let x = 1; output t, x; }";
        let p = parse(src).unwrap();
        assert_eq!(p.channels["t"], Label::PUBLIC);
    }
}
