//! Pretty-printing programs back to the concrete syntax.
//!
//! Useful for diagnostics (show the program a generator built) and as a
//! correctness anchor: for any valid program, `parse(print(p))`
//! reproduces `p` exactly — tested below on every generator family and
//! shipped example.
//!
//! Printing labels requires names for atoms; [`print_program`] uses
//! `secret` for atom 0 and `aN` for the rest, and registers channels
//! before functions so the parser re-interns atoms in a stable order.

use crate::ir::{BinOp, Expr, Function, Program, Stmt};
use crate::label::Label;
use std::fmt::Write as _;

/// Renders a label in source syntax.
pub fn print_label(label: Label) -> String {
    if label.is_public() {
        return "public".to_string();
    }
    if label == Label::SECRET {
        return "secret".to_string();
    }
    let mut parts = Vec::new();
    for n in 0..64 {
        if label.bits() & (1 << n) != 0 {
            if n == 0 {
                parts.push("secret".to_string());
            } else {
                parts.push(format!("a{n}"));
            }
        }
    }
    format!("{{{}}}", parts.join(", "))
}

/// Renders an expression in source syntax (fully parenthesized where
/// precedence could bite).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Const(n) => n.to_string(),
        Expr::VecLit(items) => {
            let inner: Vec<String> = items.iter().map(i64::to_string).collect();
            format!("vec[{}]", inner.join(", "))
        }
        Expr::Var(v) => v.clone(),
        Expr::Bin(op, l, r) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Eq => "==",
                BinOp::Lt => "<",
            };
            format!("({} {} {})", print_expr(l), sym, print_expr(r))
        }
    }
}

fn print_stmt(out: &mut String, s: &Stmt, indent: usize) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Let { var, expr, label } => {
            let ann = label
                .map(|l| format!(" label {}", print_label(l)))
                .unwrap_or_default();
            let _ = writeln!(out, "{pad}let {var} = {}{ann};", print_expr(expr));
        }
        Stmt::Assign { var, expr } => {
            let _ = writeln!(out, "{pad}{var} = {};", print_expr(expr));
        }
        Stmt::Alloc { var } => {
            let _ = writeln!(out, "{pad}let {var} = alloc;");
        }
        Stmt::Append { obj, src } => {
            let _ = writeln!(out, "{pad}append {obj}, {src};");
        }
        Stmt::Read { dst, obj } => {
            let _ = writeln!(out, "{pad}let {dst} = read {obj};");
        }
        Stmt::Declassify { dst, expr } => {
            let _ = writeln!(out, "{pad}let {dst} = declassify {};", print_expr(expr));
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let _ = writeln!(out, "{pad}if {} {{", print_expr(cond));
            for inner in then_branch {
                print_stmt(out, inner, indent + 1);
            }
            if else_branch.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for inner in else_branch {
                    print_stmt(out, inner, indent + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "{pad}while {} {{", print_expr(cond));
            for inner in body {
                print_stmt(out, inner, indent + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Output { channel, arg } => {
            let _ = writeln!(out, "{pad}output {channel}, {};", print_expr(arg));
        }
        Stmt::Call { dst, func, args } => {
            let rendered: Vec<String> = args.iter().map(print_expr).collect();
            match dst {
                Some(d) => {
                    let _ = writeln!(out, "{pad}let {d} = call {func}({});", rendered.join(", "));
                }
                None => {
                    let _ = writeln!(out, "{pad}call {func}({});", rendered.join(", "));
                }
            }
        }
    }
}

fn print_function(out: &mut String, f: &Function) {
    let params: Vec<String> = f
        .params
        .iter()
        .map(|(p, ann)| match ann {
            Some(l) => format!("{p} label {}", print_label(*l)),
            None => p.clone(),
        })
        .collect();
    let auth = if f.authority.is_public() {
        String::new()
    } else {
        format!(" authority {}", print_label(f.authority))
    };
    let _ = writeln!(out, "fn {}({}){auth} {{", f.name, params.join(", "));
    for s in &f.body {
        print_stmt(out, s, 1);
    }
    if let Some(ret) = &f.ret {
        let _ = writeln!(out, "    return {};", print_expr(ret));
    }
    let _ = writeln!(out, "}}");
}

/// Renders a whole program in parseable concrete syntax.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for (name, bound) in &p.channels {
        let _ = writeln!(out, "channel {name} {};", print_label(*bound));
    }
    if !p.channels.is_empty() {
        out.push('\n');
    }
    for f in &p.functions {
        print_function(&mut out, f);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use crate::parse::parse;
    use crate::progen;

    /// Atom-name stability caveat: round-tripping is exact when the
    /// program's atoms are `secret`/`aN`-shaped, which holds for every
    /// printer output (it renders them that way). For programs whose
    /// labels came from other names, the round trip preserves *structure*
    /// but renumbers atoms; we therefore compare after one
    /// print→parse→print normalization.
    fn roundtrips(p: &Program) {
        let text = print_program(p);
        let parsed =
            parse(&text).unwrap_or_else(|e| panic!("printed program must parse: {e}\n{text}"));
        let normalized = print_program(&parsed);
        assert_eq!(text, normalized, "print is a fixpoint of parse∘print");
        // Verdicts agree between the original and its round trip.
        assert_eq!(
            crate::verify::verify(p).is_safe(),
            crate::verify::verify(&parsed).is_safe(),
        );
    }

    #[test]
    fn generator_families_roundtrip() {
        roundtrips(&progen::straightline(25));
        roundtrips(&progen::call_diamond(4));
        roundtrips(&progen::alias_chain(5));
        roundtrips(&progen::rebind_churn(3));
    }

    #[test]
    fn shipped_examples_roundtrip() {
        roundtrips(&examples::buffer_leak_source());
        roundtrips(&examples::buffer_alias_exploit_source());
        roundtrips(&examples::secure_store_source());
        roundtrips(&examples::secure_store_buggy_source());
    }

    #[test]
    fn label_rendering() {
        assert_eq!(print_label(Label::PUBLIC), "public");
        assert_eq!(print_label(Label::SECRET), "secret");
        assert_eq!(print_label(Label::atom(3)), "{a3}");
        assert_eq!(
            print_label(Label::SECRET.join(Label::atom(2))),
            "{secret, a2}"
        );
    }

    #[test]
    fn expr_rendering_parenthesizes() {
        let e = Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Add, Expr::Const(1), Expr::Const(2)),
            Expr::Var("x".into()),
        );
        assert_eq!(print_expr(&e), "((1 + 2) * x)");
        assert_eq!(print_expr(&Expr::VecLit(vec![1, 2])), "vec[1, 2]");
        assert_eq!(print_expr(&Expr::VecLit(vec![])), "vec[]");
    }

    #[test]
    fn declassify_and_authority_print_and_reparse() {
        let src = "channel t public;
            fn main() authority secret {
                let s = 1 label secret;
                let d = declassify s;
                output t, d;
            }";
        let p = parse(src).unwrap();
        roundtrips(&p);
        let text = print_program(&p);
        assert!(text.contains("authority secret"), "{text}");
        assert!(text.contains("declassify s"), "{text}");
    }

    #[test]
    fn nested_control_flow_prints_readably() {
        let src = "channel t public;
            fn main() {
                let c = 1;
                while c < 5 {
                    if c == 2 { output t, c; } else { c = c + 1; }
                }
            }";
        roundtrips(&parse(src).unwrap());
    }
}
