//! Synthetic program families for the scaling experiments (E5).
//!
//! Each generator is deterministic in its size parameter and comes with
//! a known ground truth (expected violation count), so the experiment can
//! check correctness while measuring cost:
//!
//! - [`straightline`]: linear programs — the baseline cost of a pass;
//! - [`call_diamond`]: a call DAG where every function calls the next
//!   level **twice**. Monolithic inlining re-analyzes the shared callee
//!   exponentially often; summaries analyze each function once —
//!   the paper's compositional-reasoning speedup, made measurable;
//! - [`alias_chain`]: buffers that successively adopt each other,
//!   producing quadratically many points-to facts for the Andersen
//!   baseline while move-mode analysis stays linear;
//! - [`rebind_churn`]: repeated rebinding that is perfectly safe, on
//!   which the flow-insensitive alias baseline reports false positives.

use crate::ir::{Expr, Function, Program, ProgramBuilder, Stmt};
use crate::label::Label;

fn v(name: &str) -> Expr {
    Expr::Var(name.into())
}

/// A straight-line program with `n` scalar statements; every 10th value
/// is secret and sent to the vault channel (never leaks). Ground truth:
/// zero violations.
pub fn straightline(n: usize) -> Program {
    let mut body = Vec::with_capacity(n + 1);
    body.push(Stmt::Let {
        var: "acc".into(),
        expr: Expr::Const(0),
        label: None,
    });
    for i in 0..n {
        let var = format!("x{i}");
        let label = (i % 10 == 9).then_some(Label::SECRET);
        body.push(Stmt::Let {
            var: var.clone(),
            expr: Expr::Const(i as i64),
            label,
        });
        if i % 10 == 9 {
            body.push(Stmt::Output {
                channel: "vault".into(),
                arg: v(&var),
            });
        } else {
            body.push(Stmt::Assign {
                var: "acc".into(),
                expr: Expr::bin(crate::ir::BinOp::Add, v("acc"), v(&var)),
            });
        }
    }
    body.push(Stmt::Output {
        channel: "term".into(),
        arg: v("acc"),
    });
    ProgramBuilder::new()
        .channel("term", Label::PUBLIC)
        .channel("vault", Label::SECRET)
        .main(body)
        .build()
        .expect("generated straightline program is valid")
}

/// A diamond-shaped call DAG of the given `depth`: `f0` calls `f1`
/// twice, `f1` calls `f2` twice, ... The deepest function returns its
/// argument; `main` feeds a secret in and leaks the result. Ground
/// truth: exactly one violation.
///
/// Monolithic inlining visits `f_depth` 2^depth times; summary-based
/// analysis visits every function once.
pub fn call_diamond(depth: usize) -> Program {
    assert!(depth >= 1, "diamond needs at least one level");
    let mut b = ProgramBuilder::new()
        .channel("term", Label::PUBLIC)
        .channel("vault", Label::SECRET);
    // Leaf: identity.
    b = b.function(Function {
        name: format!("f{depth}"),
        params: vec![("x".into(), None)],
        authority: Label::PUBLIC,
        body: vec![],
        ret: Some(v("x")),
    });
    // Interior levels: two calls to the next level.
    for i in (0..depth).rev() {
        let next = format!("f{}", i + 1);
        b = b.function(Function {
            name: format!("f{i}"),
            params: vec![("x".into(), None)],
            authority: Label::PUBLIC,
            body: vec![
                Stmt::Call {
                    dst: Some("a".into()),
                    func: next.clone(),
                    args: vec![v("x")],
                },
                Stmt::Call {
                    dst: Some("b".into()),
                    func: next,
                    args: vec![v("a")],
                },
            ],
            ret: Some(Expr::bin(crate::ir::BinOp::Add, v("a"), v("b"))),
        });
    }
    b.main(vec![
        Stmt::Let {
            var: "s".into(),
            expr: Expr::Const(1),
            label: Some(Label::SECRET),
        },
        Stmt::Call {
            dst: Some("r".into()),
            func: "f0".into(),
            args: vec![v("s")],
        },
        Stmt::Output {
            channel: "term".into(),
            arg: v("r"),
        }, // the one leak
    ])
    .build()
    .expect("generated diamond program is valid")
}

/// `n` buffers where buffer `i+1` absorbs buffer `i` (a chain), then one
/// secret append at the tail and a public output of the tail. Ground
/// truth: one violation, found by *both* pipelines — but the aliasing
/// baseline additionally pays for a points-to relation that grows
/// quadratically along the chain (under aliasing semantics, `b_{i+1}`
/// may alias every earlier buffer), while the move-mode analysis never
/// materializes any such relation. This program is legal Rust: each
/// buffer is moved exactly once and never used afterwards.
pub fn alias_chain(n: usize) -> Program {
    assert!(n >= 2, "a chain needs at least two buffers");
    let mut body = Vec::new();
    for i in 0..n {
        body.push(Stmt::Alloc {
            var: format!("b{i}"),
        });
    }
    // Chain adoptions: b1 adopts b0, b2 adopts b1, ...
    for i in 1..n {
        body.push(Stmt::Append {
            obj: format!("b{i}"),
            src: format!("b{}", i - 1),
        });
    }
    body.push(Stmt::Let {
        var: "sec".into(),
        expr: Expr::VecLit(vec![42]),
        label: Some(Label::SECRET),
    });
    body.push(Stmt::Append {
        obj: format!("b{}", n - 1),
        src: "sec".into(),
    });
    body.push(Stmt::Output {
        channel: "term".into(),
        arg: v(&format!("b{}", n - 1)),
    });
    ProgramBuilder::new()
        .channel("term", Label::PUBLIC)
        .main(body)
        .build()
        .expect("generated alias chain is valid")
}

/// `n` rounds of: bind a buffer, taint it with a secret, *rebind* the
/// variable to a fresh public buffer, output it. Ground truth: zero
/// violations (each output prints a fresh public buffer) — but the
/// flow-insensitive alias baseline conflates the bindings and reports
/// `n` false positives.
pub fn rebind_churn(n: usize) -> Program {
    assert!(n >= 1);
    let mut body = Vec::new();
    body.push(Stmt::Let {
        var: "x".into(),
        expr: Expr::VecLit(vec![0]),
        label: None,
    });
    for i in 0..n {
        body.push(Stmt::Let {
            var: format!("sec{i}"),
            expr: Expr::VecLit(vec![i as i64]),
            label: Some(Label::SECRET),
        });
        body.push(Stmt::Append {
            obj: "x".into(),
            src: format!("sec{i}"),
        });
        // Rebind to a fresh public buffer and print that.
        body.push(Stmt::Assign {
            var: "x".into(),
            expr: Expr::VecLit(vec![i as i64]),
        });
        body.push(Stmt::Output {
            channel: "term".into(),
            arg: v("x"),
        });
    }
    ProgramBuilder::new()
        .channel("term", Label::PUBLIC)
        .main(body)
        .build()
        .expect("generated rebind churn is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alias;
    use crate::interp;
    use crate::ownership;
    use crate::summary;
    use crate::verify::{self, Verdict};

    #[test]
    fn straightline_ground_truth() {
        for n in [1, 10, 100] {
            let p = straightline(n);
            assert!(verify::verify(&p).is_safe(), "n={n}");
        }
    }

    #[test]
    fn straightline_scales_statement_count() {
        assert!(straightline(100).stmt_count() > straightline(10).stmt_count());
    }

    #[test]
    fn diamond_ground_truth_both_analyses() {
        for depth in [1, 3, 6] {
            let p = call_diamond(depth);
            let mono = interp::analyze(&p).unwrap();
            assert_eq!(mono.len(), 1, "depth={depth}");
            let comp = summary::analyze_with_summaries(&p).unwrap();
            assert_eq!(comp.len(), 1, "depth={depth}");
        }
    }

    #[test]
    fn diamond_summary_table_is_linear_in_depth() {
        let p = call_diamond(8);
        let t = summary::SummaryTable::build(&p).unwrap();
        assert_eq!(t.len(), 10); // f0..f8 + main
    }

    #[test]
    fn alias_chain_is_legal_rust_and_leaky() {
        // Each buffer is moved exactly once (into its successor) and
        // never touched again, so ownership is clean; the secret append
        // at the tail then leaks through the final output.
        let p = alias_chain(4);
        let Verdict::Leaky(vs) = verify::verify(&p) else {
            panic!("expected the tail output to leak: {:?}", verify::verify(&p));
        };
        assert_eq!(vs.len(), 1);
    }

    #[test]
    fn alias_chain_caught_by_alias_analysis() {
        let p = alias_chain(6);
        let (violations, stats) = alias::analyze_alias(&p);
        assert_eq!(violations.len(), 1);
        // Quadratic-ish points-to growth along the chain.
        assert!(stats.pts_edges >= 6 + 5, "edges = {}", stats.pts_edges);
    }

    #[test]
    fn alias_chain_pts_grows_quadratically() {
        let small = alias::analyze_alias(&alias_chain(8)).1;
        let large = alias::analyze_alias(&alias_chain(16)).1;
        // Doubling the chain should much-more-than-double the edges.
        assert!(
            large.pts_edges as f64 > 3.0 * small.pts_edges as f64,
            "small={} large={}",
            small.pts_edges,
            large.pts_edges
        );
    }

    #[test]
    fn rebind_churn_precision_gap() {
        let p = rebind_churn(5);
        // Ground truth: safe. Move-mode analysis agrees.
        assert!(ownership::check_program(&p).is_empty());
        assert!(interp::analyze(&p).unwrap().is_empty());
        // The alias baseline reports n false positives.
        let (fps, _) = alias::analyze_alias(&p);
        assert_eq!(fps.len(), 5, "expected one false positive per round");
    }
}
