//! The paper's worked examples, as programs in the analysed language.
//!
//! Three artifacts back experiment E4:
//!
//! - [`buffer_leak_source`]: §4's lines 9–16 — append non-secret then
//!   secret data into a buffer and print it. Ownership-clean; the label
//!   analysis reports the line-16 leak.
//! - [`buffer_alias_exploit_source`]: the same program with line 17 —
//!   printing the original `nonsec` vector after the buffer adopted it.
//!   In Rust mode the ownership checker rejects line 17 outright ("the
//!   compiler rejects it"); under aliasing semantics only the
//!   points-to-based baseline catches the leak.
//! - [`secure_store_source`]: the "simple secure data store ... which
//!   stores data on behalf of multiple clients, while preventing
//!   non-privileged clients from reading data belonging to privileged
//!   ones", plus the seeded access-check bug SMACK found in the paper.

use crate::ir::Program;
use crate::parse;

/// §4 lines 9–16 (without the commented-out line 17).
pub const BUFFER_LEAK_SRC: &str = r#"
channel term public;                       # println! to an untrusted terminal

fn main() {
    let buf = alloc;                       # line 9:  Buffer::new()
    let nonsec = vec[1, 2, 3];             # lines 10-11, #[label(non-secret)]
    let sec = vec[4, 5, 6] label secret;   # lines 12-13, #[label(secret)]
    append buf, nonsec;                    # line 14
    append buf, sec;                       # line 15: buf now contains secret data
    output term, buf;                      # line 16: ERROR - leaks secret data
}
"#;

/// §4 with line 17 enabled: the alias exploit.
pub const BUFFER_ALIAS_EXPLOIT_SRC: &str = r#"
channel term public;

fn main() {
    let buf = alloc;
    let nonsec = vec[1, 2, 3];
    let sec = vec[4, 5, 6] label secret;
    append buf, nonsec;                    # line 14: buffer adopts nonsec's storage
    append buf, sec;                       # line 15: taints the adopted storage
    output term, nonsec;                   # line 17: leak via the original alias
}
"#;

/// The secure data store, correct version: a privileged and a
/// non-privileged client each have a slot; requests are served after an
/// access check on the requester's privilege.
pub const SECURE_STORE_SRC: &str = r#"
channel priv_client {priv};        # output channel to the privileged client
channel pub_client public;         # output channel to the non-privileged client

fn main(req_privileged) {
    # The store's two slots.
    let slot_priv = alloc;
    let data_priv = vec[99] label {priv};
    append slot_priv, data_priv;

    let slot_pub = alloc;
    let data_pub = vec[1];
    append slot_pub, data_pub;

    # Serve one request.
    let d_priv = read slot_priv;
    let d_pub = read slot_pub;
    if req_privileged {
        output priv_client, d_priv;    # privileged client may read both
        output priv_client, d_pub;
    } else {
        output pub_client, d_pub;      # access check: public data only
    }
}
"#;

/// The seeded bug: the access check is skipped on the else path and the
/// privileged slot is served to the non-privileged client.
pub const SECURE_STORE_BUGGY_SRC: &str = r#"
channel priv_client {priv};
channel pub_client public;

fn main(req_privileged) {
    let slot_priv = alloc;
    let data_priv = vec[99] label {priv};
    append slot_priv, data_priv;

    let slot_pub = alloc;
    let data_pub = vec[1];
    append slot_pub, data_pub;

    let d_priv = read slot_priv;
    let d_pub = read slot_pub;
    if req_privileged {
        output priv_client, d_priv;
        output priv_client, d_pub;
    } else {
        output pub_client, d_priv;     # SEEDED BUG: wrong slot served
    }
}
"#;

/// Parses [`BUFFER_LEAK_SRC`].
pub fn buffer_leak_source() -> Program {
    parse::parse(BUFFER_LEAK_SRC).expect("the shipped example parses")
}

/// Parses [`BUFFER_ALIAS_EXPLOIT_SRC`].
pub fn buffer_alias_exploit_source() -> Program {
    parse::parse(BUFFER_ALIAS_EXPLOIT_SRC).expect("the shipped example parses")
}

/// Parses [`SECURE_STORE_SRC`].
pub fn secure_store_source() -> Program {
    parse::parse(SECURE_STORE_SRC).expect("the shipped example parses")
}

/// Parses [`SECURE_STORE_BUGGY_SRC`].
pub fn secure_store_buggy_source() -> Program {
    parse::parse(SECURE_STORE_BUGGY_SRC).expect("the shipped example parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alias;
    use crate::verify::{verify, Verdict};

    /// §4 line 16: printing the tainted buffer is caught by the label
    /// analysis ("the content of the buffer is tainted as secret, which
    /// triggers an error in line 16").
    #[test]
    fn buffer_leak_caught_at_line16() {
        let p = buffer_leak_source();
        let Verdict::Leaky(vs) = verify(&p) else {
            panic!("expected a leak verdict");
        };
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].channel, "term");
        // The violation is the *last* statement (the output).
        assert_eq!(vs[0].loc.0, "main[5]");
    }

    /// §4 line 17: "Rust prevents such exploits by design, as they
    /// violate single ownership ... line 17 is rejected by the compiler."
    #[test]
    fn alias_exploit_rejected_by_ownership() {
        let p = buffer_alias_exploit_source();
        let Verdict::OwnershipRejected(errors) = verify(&p) else {
            panic!("expected ownership rejection");
        };
        // `nonsec` moved at line 14, used at line 17 — and `buf` is also
        // flagged leaky only in C mode, not here.
        assert!(errors.iter().any(|e| e.var == "nonsec"));
    }

    /// The same exploit under conventional-language semantics: only the
    /// alias-analysis-based taint catches it; per-variable taint misses.
    #[test]
    fn alias_exploit_needs_points_to_in_c_mode() {
        let p = buffer_alias_exploit_source();
        let (with_pts, _) = alias::analyze_alias(&p);
        assert!(
            with_pts.iter().any(|v| v.loc.0 == "main[5]"),
            "points-to taint must catch line 17: {with_pts:?}"
        );
        let naive = alias::analyze_naive(&p);
        assert!(
            !naive.iter().any(|v| v.loc.0 == "main[5]"),
            "per-variable taint cannot see the alias: {naive:?}"
        );
    }

    /// E4: the correct secure store verifies.
    #[test]
    fn secure_store_verifies() {
        assert!(verify(&secure_store_source()).is_safe());
    }

    /// E4: "As a sanity check, we seeded a bug into checking of security
    /// access in the implementation. SMACK discovered the injected bug."
    #[test]
    fn seeded_bug_is_discovered() {
        let Verdict::Leaky(vs) = verify(&secure_store_buggy_source()) else {
            panic!("the seeded bug must be found");
        };
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].channel, "pub_client");
        assert!(vs[0].loc.0.contains(".else"), "{:?}", vs[0].loc);
    }

    /// The privilege check is genuinely label-driven: upgrading the
    /// public client's channel bound makes the buggy program verify.
    #[test]
    fn buggy_store_safe_if_channel_is_privileged() {
        let src = SECURE_STORE_BUGGY_SRC
            .replace("channel pub_client public;", "channel pub_client {priv};");
        let v = crate::verify::verify_source(&src).unwrap();
        assert!(v.is_safe());
    }
}
