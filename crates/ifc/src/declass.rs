//! Declassification semantics, end to end.
//!
//! The mechanism itself lives in the IR ([`crate::ir::Stmt::Declassify`]),
//! the parser (`let d = declassify e;`, `fn f(...) authority L {...}`)
//! and each analysis; this module holds the cross-cutting documentation
//! and the behavioural test-suite.
//!
//! # Model
//!
//! Following the decentralized label model the paper cites [29], code
//! runs with an *authority*: the set of secrecy atoms it is trusted to
//! release. `declassify e` strips exactly those atoms from `e`'s label.
//! Two safety conditions apply:
//!
//! - atoms outside the authority are never stripped — declassification
//!   is bounded, not a universal laundering primitive;
//! - **robust declassification**: the program counter at the
//!   declassification site must itself flow to the authority. Otherwise
//!   secret data could *decide* whether a release happens, leaking
//!   through the decision; the analyses report this as a violation on
//!   the pseudo-channel `<declassify …>`.

#[cfg(test)]
mod tests {
    use crate::alias;
    use crate::label::Label;
    use crate::parse::parse;
    use crate::verify::{verify_source, Verdict};

    #[test]
    fn declassify_releases_within_authority() {
        // An average over secret data, released by code with `secret`
        // authority, may go to a public channel.
        let v = verify_source(
            "channel report public;
             fn main() authority secret {
                 let salary1 = 100 label secret;
                 let salary2 = 200 label secret;
                 let avg = declassify (salary1 + salary2);
                 output report, avg;
             }",
        )
        .unwrap();
        assert!(v.is_safe(), "{v:?}");
    }

    #[test]
    fn without_authority_nothing_is_released() {
        let v = verify_source(
            "channel report public;
             fn main() {
                 let s = 100 label secret;
                 let d = declassify s;
                 output report, d;
             }",
        )
        .unwrap();
        let Verdict::Leaky(vs) = v else {
            panic!("no authority ⇒ no release: {v:?}");
        };
        // The output still leaks (nothing was stripped).
        assert!(vs.iter().any(|x| x.channel == "report"));
    }

    #[test]
    fn authority_is_bounded_to_its_atoms() {
        // Authority over `alice` does not release `bob` data.
        let v = verify_source(
            "channel t public;
             fn main() authority {alice} {
                 let a = 1 label {alice};
                 let b = 2 label {bob};
                 let d = declassify (a + b);
                 output t, d;
             }",
        )
        .unwrap();
        let Verdict::Leaky(vs) = v else {
            panic!("bob's atom must survive: {v:?}");
        };
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].channel, "t");
    }

    #[test]
    fn robust_declassification_rejects_secret_control() {
        // The *decision* to declassify is controlled by `other`-labelled
        // data outside the authority: flagged even though the released
        // value itself is fine.
        let v = verify_source(
            "channel t public;
             fn main() authority {alice} {
                 let a = 1 label {alice};
                 let decide = 1 label {other};
                 if decide {
                     let d = declassify a;
                     output t, d;
                 }
             }",
        )
        .unwrap();
        let Verdict::Leaky(vs) = v else {
            panic!("expected robustness violation: {v:?}");
        };
        assert!(
            vs.iter().any(|x| x.channel.starts_with("<declassify")),
            "{vs:?}"
        );
    }

    #[test]
    fn pc_within_authority_is_robust() {
        // Branching on data the authority covers does not trip the
        // robustness check — but outputting *inside* that branch would
        // still (correctly) leak the condition. The safe pattern is to
        // declassify first and branch on the released value.
        let v = verify_source(
            "channel t public;
             fn main() authority {alice} {
                 let a = 1 label {alice};
                 let d = declassify a;
                 if d {
                     output t, d;
                 }
             }",
        )
        .unwrap();
        assert!(v.is_safe(), "{v:?}");

        // Same branch, output inside: the pc leak is reported on the
        // output (not the declassify — robustness itself was satisfied).
        let v = verify_source(
            "channel t public;
             fn main() authority {alice} {
                 let a = 1 label {alice};
                 if a {
                     let d = declassify a;
                     output t, d;
                 }
             }",
        )
        .unwrap();
        let Verdict::Leaky(vs) = v else {
            panic!("output under an alice pc leaks the condition: {v:?}");
        };
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].channel, "t");
        assert!(!vs[0].loc.0.contains("declassify"));
    }

    #[test]
    fn callee_authority_is_scoped() {
        // A trusted release function has the authority; its caller does
        // not. The call releases; the caller's own declassify does not.
        let v = verify_source(
            "channel t public;
             fn release(x label secret) authority secret {
                 let d = declassify x;
                 return d;
             }
             fn main() {
                 let s = 5 label secret;
                 let ok = call release(s);
                 output t, ok;
             }",
        )
        .unwrap();
        assert!(v.is_safe(), "{v:?}");
    }

    #[test]
    fn alias_mode_honors_declassification_too() {
        let p = parse(
            "channel t public;
             fn main() authority secret {
                 let buf = alloc;
                 let sec = vec[1] label secret;
                 append buf, sec;
                 let raw = read buf;
                 let d = declassify raw;
                 output t, d;
             }",
        )
        .unwrap();
        let (violations, _) = alias::analyze_alias(&p);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(alias::analyze_naive(&p).is_empty());
    }

    #[test]
    fn declassified_value_is_public_in_state() {
        let p = parse(
            "channel t public;
             fn main() authority secret {
                 let s = 9 label secret;
                 let d = declassify s;
                 output t, d;
             }",
        )
        .unwrap();
        let (violations, state) = crate::interp::analyze_with_state(&p).unwrap();
        assert!(violations.is_empty());
        assert_eq!(state["s"], Label::SECRET);
        assert_eq!(state["d"], Label::PUBLIC);
    }

    #[test]
    fn ownership_checker_handles_declassify() {
        // declassify borrows its operand; the scalar stays usable.
        let v = verify_source(
            "channel t public;
             fn main() authority secret {
                 let s = 1 label secret;
                 let d = declassify s;
                 let d2 = declassify s;
                 output t, d + d2;
             }",
        )
        .unwrap();
        assert!(v.is_safe(), "{v:?}");
    }

    #[test]
    fn summaries_are_conservative_about_declassified_params() {
        // Summary mode cannot strip unknown parameter labels, so it may
        // report a (sound) false positive where the monolithic analysis
        // proves safety — conservatism, never unsoundness.
        let p = parse(
            "channel t public;
             fn release(x) authority secret {
                 let d = declassify x;
                 return d;
             }
             fn main() {
                 let s = 5 label secret;
                 let ok = call release(s);
                 output t, ok;
             }",
        )
        .unwrap();
        let mono = crate::interp::analyze(&p).unwrap();
        assert!(mono.is_empty(), "monolithic proves this safe: {mono:?}");
        let comp = crate::summary::analyze_with_summaries(&p).unwrap();
        // Either outcome is sound for summaries; it must not be *less*
        // strict than monolithic.
        assert!(comp.len() >= mono.len());
    }
}
