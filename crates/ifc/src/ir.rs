//! The analysed language.
//!
//! A deliberately small imperative language with the one feature that
//! matters for the paper's argument: a distinction between *scalar*
//! values (copied freely, like Rust's `Copy` types) and *heap* values
//! (vectors/buffers, which in Rust-mode **move** on assignment and when
//! passed to `append`, and in C-mode **alias**). The paper's buffer
//! example (§4, lines 1–17) is expressible directly — see
//! [`crate::examples::buffer_leak_source`].
//!
//! Programs are validated before analysis: every variable defined before
//! use, kinds consistent (no arithmetic on buffers, no `append` into a
//! scalar), channels declared, calls resolvable and arity-correct.

use crate::label::Label;
use std::collections::BTreeMap;
use std::fmt;

/// Variable names (owned strings; programs are small and analysis cost
/// is dominated by fixpoints, which E5 measures in both modes equally).
pub type Var = String;

/// Binary operators over scalars.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Equality test (result is a scalar 0/1).
    Eq,
    /// Less-than test.
    Lt,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A scalar literal.
    Const(i64),
    /// A vector literal — a *heap* value.
    VecLit(Vec<i64>),
    /// A variable read. Reading a scalar copies; a heap variable as the
    /// entire right-hand side of a binding moves (Rust mode) or aliases
    /// (C mode).
    Var(Var),
    /// Arithmetic/comparison over scalars.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for binary expressions.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// All variables read by this expression.
    pub fn vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Const(_) | Expr::VecLit(_) => {}
            Expr::Var(v) => out.push(v),
            Expr::Bin(_, l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let var = expr` — a fresh binding. `label`, when present, is the
    /// paper's `#[label(...)]` security annotation attached to an input
    /// value.
    Let {
        /// The bound variable.
        var: Var,
        /// The initializer.
        expr: Expr,
        /// Optional security annotation.
        label: Option<Label>,
    },
    /// `var = expr` — reassignment of an existing binding.
    Assign {
        /// The assigned variable.
        var: Var,
        /// The new value.
        expr: Expr,
    },
    /// `let var = alloc` — a fresh, empty heap buffer (`Buffer::new()`).
    Alloc {
        /// The bound variable.
        var: Var,
    },
    /// `obj.append(src)` — append `src` into buffer `obj`. In Rust mode
    /// this *consumes* `src` (the paper's `append(&mut self, mut v)`);
    /// in C mode the buffer may retain `src`'s storage, creating an
    /// alias (the paper's line 6).
    Append {
        /// The buffer appended to.
        obj: Var,
        /// The value appended (moved in Rust mode).
        src: Var,
    },
    /// `let dst = obj.read()` — copy a scalar digest of the buffer's
    /// content (carries the buffer's label).
    Read {
        /// The scalar destination.
        dst: Var,
        /// The buffer read from.
        obj: Var,
    },
    /// Conditional. Branching on labeled data taints everything assigned
    /// inside (implicit flows).
    If {
        /// The branch condition (scalar).
        cond: Expr,
        /// Statements executed when the condition is non-zero.
        then_branch: Vec<Stmt>,
        /// Statements executed otherwise.
        else_branch: Vec<Stmt>,
    },
    /// Loop while `cond` is non-zero. The analyser runs this to a
    /// label fixpoint.
    While {
        /// The loop condition (scalar).
        cond: Expr,
        /// The loop body.
        body: Vec<Stmt>,
    },
    /// `output(channel, arg)` — write to a labeled output channel;
    /// the verified property is that the argument's label flows to the
    /// channel's bound.
    Output {
        /// The channel written to.
        channel: String,
        /// The value written.
        arg: Expr,
    },
    /// `let dst = declassify expr` — strips the atoms the enclosing
    /// function holds authority over from the expression's label (the
    /// decentralized-label-model escape hatch [29]). The analyses
    /// additionally require the *program counter* to be covered by the
    /// authority — "robust declassification": secret data must not
    /// control whether a declassification happens.
    Declassify {
        /// The (scalar) destination binding.
        dst: Var,
        /// The scalar expression being declassified.
        expr: Expr,
    },
    /// `dst = func(args)` — call; arguments and result are scalars.
    Call {
        /// Optional result binding (fresh variable).
        dst: Option<Var>,
        /// Callee name.
        func: String,
        /// Scalar argument expressions.
        args: Vec<Expr>,
    },
}

/// A function: scalar parameters (optionally labeled at the boundary for
/// entry functions), a body, and an optional scalar result.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameters with optional input-label annotations.
    pub params: Vec<(Var, Option<Label>)>,
    /// Atoms this function may declassify (its authority); defaults to
    /// none.
    pub authority: Label,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Optional result expression (scalar).
    pub ret: Option<Expr>,
}

/// A whole program: functions plus channel declarations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// All functions; the entry point is `main`.
    pub functions: Vec<Function>,
    /// Output channels and their confidentiality bounds.
    pub channels: BTreeMap<String, Label>,
}

/// Where in the program a diagnostic points: a dotted path of statement
/// indices, e.g. `main[4].then[0]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Loc(pub String);

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Static validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// `main` is missing.
    NoMain,
    /// Two functions share a name.
    DuplicateFunction(String),
    /// A variable is used before being defined.
    UndefinedVar { var: Var, loc: Loc },
    /// A `let` rebinds a name already in scope (shadowing is not
    /// supported — it would complicate the ownership story for no gain).
    Rebinding { var: Var, loc: Loc },
    /// An `Assign` targets a variable that was never `let`-bound.
    AssignToUndefined { var: Var, loc: Loc },
    /// A heap variable is used where a scalar is required (arithmetic,
    /// conditions, call arguments).
    HeapInScalarContext { var: Var, loc: Loc },
    /// A scalar variable is used where a buffer is required.
    ScalarInHeapContext { var: Var, loc: Loc },
    /// Output to an undeclared channel.
    UnknownChannel { channel: String, loc: Loc },
    /// Call to an unknown function.
    UnknownFunction { func: String, loc: Loc },
    /// Call with the wrong number of arguments.
    ArityMismatch {
        /// Callee name.
        func: String,
        /// Declared parameter count.
        expected: usize,
        /// Supplied argument count.
        got: usize,
        /// Call site.
        loc: Loc,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::NoMain => write!(f, "program has no main function"),
            IrError::DuplicateFunction(n) => write!(f, "duplicate function {n}"),
            IrError::UndefinedVar { var, loc } => write!(f, "{loc}: undefined variable {var}"),
            IrError::Rebinding { var, loc } => write!(f, "{loc}: rebinding of {var}"),
            IrError::AssignToUndefined { var, loc } => {
                write!(f, "{loc}: assignment to undefined {var}")
            }
            IrError::HeapInScalarContext { var, loc } => {
                write!(f, "{loc}: buffer {var} used where a scalar is required")
            }
            IrError::ScalarInHeapContext { var, loc } => {
                write!(f, "{loc}: scalar {var} used where a buffer is required")
            }
            IrError::UnknownChannel { channel, loc } => {
                write!(f, "{loc}: unknown channel {channel}")
            }
            IrError::UnknownFunction { func, loc } => {
                write!(f, "{loc}: unknown function {func}")
            }
            IrError::ArityMismatch {
                func,
                expected,
                got,
                loc,
            } => {
                write!(f, "{loc}: {func} takes {expected} arguments, got {got}")
            }
        }
    }
}

impl std::error::Error for IrError {}

/// The kind of value a variable holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Copyable scalar.
    Scalar,
    /// Affine heap value (buffer/vector).
    Heap,
}

impl Program {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Total number of statements across all functions (a size metric
    /// for the scaling experiments).
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If {
                        then_branch,
                        else_branch,
                        ..
                    } => 1 + count(then_branch) + count(else_branch),
                    Stmt::While { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        self.functions.iter().map(|f| count(&f.body)).sum()
    }

    /// Computes the kind of every variable in `f` (assuming the program
    /// validates). Branch-local variables are included; a name bound in
    /// both branches keeps the kind of the later binding, which is
    /// harmless for the analyses using this map.
    pub fn var_kinds(&self, f: &Function) -> BTreeMap<Var, VarKind> {
        fn walk(stmts: &[Stmt], kinds: &mut BTreeMap<Var, VarKind>) {
            for s in stmts {
                match s {
                    Stmt::Let { var, expr, .. } | Stmt::Assign { var, expr } => {
                        let k = match expr {
                            Expr::VecLit(_) => VarKind::Heap,
                            Expr::Var(src) => kinds.get(src).copied().unwrap_or(VarKind::Scalar),
                            _ => VarKind::Scalar,
                        };
                        kinds.insert(var.clone(), k);
                    }
                    Stmt::Alloc { var } => {
                        kinds.insert(var.clone(), VarKind::Heap);
                    }
                    Stmt::Read { dst, .. } => {
                        kinds.insert(dst.clone(), VarKind::Scalar);
                    }
                    Stmt::Call { dst: Some(d), .. } => {
                        kinds.insert(d.clone(), VarKind::Scalar);
                    }
                    Stmt::Declassify { dst, .. } => {
                        kinds.insert(dst.clone(), VarKind::Scalar);
                    }
                    Stmt::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        walk(then_branch, kinds);
                        walk(else_branch, kinds);
                    }
                    Stmt::While { body, .. } => {
                        walk(body, kinds);
                    }
                    _ => {}
                }
            }
        }
        let mut kinds: BTreeMap<Var, VarKind> = f
            .params
            .iter()
            .map(|(p, _)| (p.clone(), VarKind::Scalar))
            .collect();
        walk(&f.body, &mut kinds);
        kinds
    }

    /// Validates the whole program; returns per-function variable kinds
    /// for downstream analyses.
    pub fn validate(&self) -> Result<(), IrError> {
        if self.function("main").is_none() {
            return Err(IrError::NoMain);
        }
        let mut names = std::collections::HashSet::new();
        for f in &self.functions {
            if !names.insert(f.name.as_str()) {
                return Err(IrError::DuplicateFunction(f.name.clone()));
            }
        }
        for f in &self.functions {
            self.validate_function(f)?;
        }
        Ok(())
    }

    fn validate_function(&self, f: &Function) -> Result<(), IrError> {
        let mut kinds: BTreeMap<Var, VarKind> = BTreeMap::new();
        for (p, _) in &f.params {
            kinds.insert(p.clone(), VarKind::Scalar);
        }
        self.validate_block(&f.body, &mut kinds, &f.name)?;
        if let Some(ret) = &f.ret {
            let loc = Loc(format!("{}.ret", f.name));
            self.expr_kind(ret, &kinds, &loc, true)?;
        }
        Ok(())
    }

    /// Determines an expression's kind; `require_scalar` additionally
    /// rejects heap results (conditions, arithmetic contexts).
    fn expr_kind(
        &self,
        e: &Expr,
        kinds: &BTreeMap<Var, VarKind>,
        loc: &Loc,
        require_scalar: bool,
    ) -> Result<VarKind, IrError> {
        let kind = match e {
            Expr::Const(_) => VarKind::Scalar,
            Expr::VecLit(_) => VarKind::Heap,
            Expr::Var(v) => *kinds.get(v).ok_or_else(|| IrError::UndefinedVar {
                var: v.clone(),
                loc: loc.clone(),
            })?,
            Expr::Bin(_, l, r) => {
                for side in [l, r] {
                    if self.expr_kind(side, kinds, loc, true)? == VarKind::Heap {
                        unreachable!("require_scalar below rejects heap operands");
                    }
                }
                VarKind::Scalar
            }
        };
        if require_scalar && kind == VarKind::Heap {
            let var = match e {
                Expr::Var(v) => v.clone(),
                _ => "<vec literal>".to_string(),
            };
            return Err(IrError::HeapInScalarContext {
                var,
                loc: loc.clone(),
            });
        }
        Ok(kind)
    }

    fn validate_block(
        &self,
        stmts: &[Stmt],
        kinds: &mut BTreeMap<Var, VarKind>,
        path: &str,
    ) -> Result<(), IrError> {
        for (i, s) in stmts.iter().enumerate() {
            let loc = Loc(format!("{path}[{i}]"));
            match s {
                Stmt::Let { var, expr, .. } => {
                    if kinds.contains_key(var) {
                        return Err(IrError::Rebinding {
                            var: var.clone(),
                            loc,
                        });
                    }
                    let k = self.expr_kind(expr, kinds, &loc, false)?;
                    kinds.insert(var.clone(), k);
                }
                Stmt::Assign { var, expr } => {
                    let Some(&vk) = kinds.get(var) else {
                        return Err(IrError::AssignToUndefined {
                            var: var.clone(),
                            loc,
                        });
                    };
                    let ek = self.expr_kind(expr, kinds, &loc, false)?;
                    if vk != ek {
                        return match ek {
                            VarKind::Heap => Err(IrError::HeapInScalarContext {
                                var: var.clone(),
                                loc,
                            }),
                            VarKind::Scalar => Err(IrError::ScalarInHeapContext {
                                var: var.clone(),
                                loc,
                            }),
                        };
                    }
                }
                Stmt::Alloc { var } => {
                    if kinds.contains_key(var) {
                        return Err(IrError::Rebinding {
                            var: var.clone(),
                            loc,
                        });
                    }
                    kinds.insert(var.clone(), VarKind::Heap);
                }
                Stmt::Append { obj, src } => {
                    match kinds.get(obj) {
                        None => {
                            return Err(IrError::UndefinedVar {
                                var: obj.clone(),
                                loc,
                            });
                        }
                        Some(VarKind::Scalar) => {
                            return Err(IrError::ScalarInHeapContext {
                                var: obj.clone(),
                                loc,
                            });
                        }
                        Some(VarKind::Heap) => {}
                    }
                    if kinds.get(src).is_none() {
                        return Err(IrError::UndefinedVar {
                            var: src.clone(),
                            loc,
                        });
                    }
                }
                Stmt::Read { dst, obj } => {
                    match kinds.get(obj) {
                        None => {
                            return Err(IrError::UndefinedVar {
                                var: obj.clone(),
                                loc,
                            });
                        }
                        Some(VarKind::Scalar) => {
                            return Err(IrError::ScalarInHeapContext {
                                var: obj.clone(),
                                loc,
                            });
                        }
                        Some(VarKind::Heap) => {}
                    }
                    if kinds.contains_key(dst) {
                        return Err(IrError::Rebinding {
                            var: dst.clone(),
                            loc,
                        });
                    }
                    kinds.insert(dst.clone(), VarKind::Scalar);
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    self.expr_kind(cond, kinds, &loc, true)?;
                    // Bindings inside branches are branch-local; analyses
                    // and validation agree on that scoping.
                    let mut then_kinds = kinds.clone();
                    self.validate_block(then_branch, &mut then_kinds, &format!("{loc}.then"))?;
                    let mut else_kinds = kinds.clone();
                    self.validate_block(else_branch, &mut else_kinds, &format!("{loc}.else"))?;
                }
                Stmt::While { cond, body } => {
                    self.expr_kind(cond, kinds, &loc, true)?;
                    let mut body_kinds = kinds.clone();
                    self.validate_block(body, &mut body_kinds, &format!("{loc}.body"))?;
                }
                Stmt::Declassify { dst, expr } => {
                    self.expr_kind(expr, kinds, &loc, true)?;
                    if kinds.contains_key(dst) {
                        return Err(IrError::Rebinding {
                            var: dst.clone(),
                            loc,
                        });
                    }
                    kinds.insert(dst.clone(), VarKind::Scalar);
                }
                Stmt::Output { channel, arg } => {
                    if !self.channels.contains_key(channel) {
                        return Err(IrError::UnknownChannel {
                            channel: channel.clone(),
                            loc,
                        });
                    }
                    // Outputting a buffer is allowed (printing the buffer).
                    self.expr_kind(arg, kinds, &loc, false)?;
                }
                Stmt::Call { dst, func, args } => {
                    let Some(callee) = self.function(func) else {
                        return Err(IrError::UnknownFunction {
                            func: func.clone(),
                            loc,
                        });
                    };
                    if callee.params.len() != args.len() {
                        return Err(IrError::ArityMismatch {
                            func: func.clone(),
                            expected: callee.params.len(),
                            got: args.len(),
                            loc,
                        });
                    }
                    for a in args {
                        self.expr_kind(a, kinds, &loc, true)?;
                    }
                    if let Some(d) = dst {
                        if kinds.contains_key(d) {
                            return Err(IrError::Rebinding {
                                var: d.clone(),
                                loc,
                            });
                        }
                        kinds.insert(d.clone(), VarKind::Scalar);
                    }
                }
            }
        }
        Ok(())
    }
}

/// A small builder for programs in tests and examples.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Starts an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares an output channel with a confidentiality bound.
    pub fn channel(mut self, name: impl Into<String>, bound: Label) -> Self {
        self.program.channels.insert(name.into(), bound);
        self
    }

    /// Adds a function.
    pub fn function(mut self, f: Function) -> Self {
        self.program.functions.push(f);
        self
    }

    /// Adds `main` with the given body.
    pub fn main(self, body: Vec<Stmt>) -> Self {
        self.function(Function {
            name: "main".into(),
            params: vec![],
            authority: Label::PUBLIC,
            body,
            ret: None,
        })
    }

    /// Finishes and validates the program.
    pub fn build(self) -> Result<Program, IrError> {
        self.program.validate()?;
        Ok(self.program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Expr {
        Expr::Var(name.into())
    }

    #[test]
    fn valid_minimal_program() {
        let p = ProgramBuilder::new()
            .channel("term", Label::PUBLIC)
            .main(vec![
                Stmt::Let {
                    var: "x".into(),
                    expr: Expr::Const(1),
                    label: None,
                },
                Stmt::Output {
                    channel: "term".into(),
                    arg: v("x"),
                },
            ])
            .build()
            .unwrap();
        assert_eq!(p.stmt_count(), 2);
    }

    #[test]
    fn missing_main_rejected() {
        let e = ProgramBuilder::new().build().unwrap_err();
        assert_eq!(e, IrError::NoMain);
    }

    #[test]
    fn duplicate_function_rejected() {
        let f = Function {
            name: "main".into(),
            params: vec![],
            authority: Label::PUBLIC,
            body: vec![],
            ret: None,
        };
        let e = ProgramBuilder::new()
            .function(f.clone())
            .function(f)
            .build()
            .unwrap_err();
        assert_eq!(e, IrError::DuplicateFunction("main".into()));
    }

    #[test]
    fn undefined_var_rejected() {
        let e = ProgramBuilder::new()
            .channel("term", Label::PUBLIC)
            .main(vec![Stmt::Output {
                channel: "term".into(),
                arg: v("ghost"),
            }])
            .build()
            .unwrap_err();
        assert!(matches!(e, IrError::UndefinedVar { var, .. } if var == "ghost"));
    }

    #[test]
    fn rebinding_rejected() {
        let e = ProgramBuilder::new()
            .main(vec![
                Stmt::Let {
                    var: "x".into(),
                    expr: Expr::Const(1),
                    label: None,
                },
                Stmt::Let {
                    var: "x".into(),
                    expr: Expr::Const(2),
                    label: None,
                },
            ])
            .build()
            .unwrap_err();
        assert!(matches!(e, IrError::Rebinding { var, .. } if var == "x"));
    }

    #[test]
    fn heap_in_arithmetic_rejected() {
        let e = ProgramBuilder::new()
            .main(vec![
                Stmt::Let {
                    var: "v".into(),
                    expr: Expr::VecLit(vec![1]),
                    label: None,
                },
                Stmt::Let {
                    var: "y".into(),
                    expr: Expr::bin(BinOp::Add, v("v"), Expr::Const(1)),
                    label: None,
                },
            ])
            .build()
            .unwrap_err();
        assert!(matches!(e, IrError::HeapInScalarContext { .. }));
    }

    #[test]
    fn heap_condition_rejected() {
        let e = ProgramBuilder::new()
            .main(vec![
                Stmt::Alloc { var: "b".into() },
                Stmt::If {
                    cond: v("b"),
                    then_branch: vec![],
                    else_branch: vec![],
                },
            ])
            .build()
            .unwrap_err();
        assert!(matches!(e, IrError::HeapInScalarContext { .. }));
    }

    #[test]
    fn append_into_scalar_rejected() {
        let e = ProgramBuilder::new()
            .main(vec![
                Stmt::Let {
                    var: "x".into(),
                    expr: Expr::Const(1),
                    label: None,
                },
                Stmt::Let {
                    var: "y".into(),
                    expr: Expr::Const(2),
                    label: None,
                },
                Stmt::Append {
                    obj: "x".into(),
                    src: "y".into(),
                },
            ])
            .build()
            .unwrap_err();
        assert!(matches!(e, IrError::ScalarInHeapContext { var, .. } if var == "x"));
    }

    #[test]
    fn unknown_channel_rejected() {
        let e = ProgramBuilder::new()
            .main(vec![Stmt::Output {
                channel: "nope".into(),
                arg: Expr::Const(0),
            }])
            .build()
            .unwrap_err();
        assert!(matches!(e, IrError::UnknownChannel { channel, .. } if channel == "nope"));
    }

    #[test]
    fn unknown_function_and_arity() {
        let e = ProgramBuilder::new()
            .main(vec![Stmt::Call {
                dst: None,
                func: "f".into(),
                args: vec![],
            }])
            .build()
            .unwrap_err();
        assert!(matches!(e, IrError::UnknownFunction { .. }));

        let f = Function {
            name: "f".into(),
            params: vec![("a".into(), None)],
            authority: Label::PUBLIC,
            body: vec![],
            ret: Some(Expr::Var("a".into())),
        };
        let e = ProgramBuilder::new()
            .function(f)
            .main(vec![Stmt::Call {
                dst: None,
                func: "f".into(),
                args: vec![],
            }])
            .build()
            .unwrap_err();
        assert!(matches!(
            e,
            IrError::ArityMismatch {
                expected: 1,
                got: 0,
                ..
            }
        ));
    }

    #[test]
    fn branch_locals_do_not_escape() {
        let e = ProgramBuilder::new()
            .channel("term", Label::PUBLIC)
            .main(vec![
                Stmt::Let {
                    var: "c".into(),
                    expr: Expr::Const(1),
                    label: None,
                },
                Stmt::If {
                    cond: v("c"),
                    then_branch: vec![Stmt::Let {
                        var: "inner".into(),
                        expr: Expr::Const(1),
                        label: None,
                    }],
                    else_branch: vec![],
                },
                Stmt::Output {
                    channel: "term".into(),
                    arg: v("inner"),
                },
            ])
            .build()
            .unwrap_err();
        assert!(matches!(e, IrError::UndefinedVar { var, .. } if var == "inner"));
    }

    #[test]
    fn assign_kind_mismatch_rejected() {
        let e = ProgramBuilder::new()
            .main(vec![
                Stmt::Let {
                    var: "x".into(),
                    expr: Expr::Const(1),
                    label: None,
                },
                Stmt::Assign {
                    var: "x".into(),
                    expr: Expr::VecLit(vec![1]),
                },
            ])
            .build()
            .unwrap_err();
        assert!(matches!(e, IrError::HeapInScalarContext { .. }));
    }

    #[test]
    fn stmt_count_nested() {
        let p = ProgramBuilder::new()
            .main(vec![
                Stmt::Let {
                    var: "c".into(),
                    expr: Expr::Const(1),
                    label: None,
                },
                Stmt::While {
                    cond: v("c"),
                    body: vec![Stmt::If {
                        cond: v("c"),
                        then_branch: vec![Stmt::Assign {
                            var: "c".into(),
                            expr: Expr::Const(0),
                        }],
                        else_branch: vec![],
                    }],
                },
            ])
            .build()
            .unwrap();
        assert_eq!(p.stmt_count(), 4);
    }

    #[test]
    fn expr_vars_collects_all() {
        let e = Expr::bin(BinOp::Add, v("a"), Expr::bin(BinOp::Mul, v("b"), v("a")));
        assert_eq!(e.vars(), vec!["a", "b", "a"]);
    }

    #[test]
    fn error_display() {
        let e = IrError::UndefinedVar {
            var: "x".into(),
            loc: Loc("main[0]".into()),
        };
        assert_eq!(e.to_string(), "main[0]: undefined variable x");
    }
}
