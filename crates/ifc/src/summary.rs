//! Compositional analysis via function summaries.
//!
//! "Further improvements can be achieved through compositional reasoning:
//! in the absence of aliasing, the effect of every function on security
//! labels is confined to its input arguments and can be summarized by
//! analyzing the code of the function in isolation from the rest of the
//! program." (§4)
//!
//! A [`Summary`] records, for one function analyzed *once* in isolation:
//!
//! - which parameters the return value depends on (plus any constant
//!   label picked up from annotations inside the function), and
//! - for every output statement reachable in the function (directly or
//!   through callees), which parameters flow into it and to which
//!   channel.
//!
//! The abstract value here is a [`SymLabel`]: a concrete label component
//! joined with a parameter-dependency bitmask. Instantiating a summary at
//! a call site substitutes the caller's argument labels into the mask —
//! no re-analysis of the callee. The whole-program verdict is then just
//! the instantiation of `main`'s summary, and a differential test checks
//! it agrees with the monolithic interpreter of [`crate::interp`].

use crate::interp::Violation;
use crate::ir::{Expr, Function, Loc, Program, Stmt, Var};
use crate::label::Label;
use std::collections::BTreeMap;
use std::fmt;

/// The summarization abstract value: a concrete label joined with a set
/// of parameter dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SymLabel {
    /// Labels from annotations and other non-parametric sources.
    pub concrete: Label,
    /// Bit `i` set ⇔ the value depends on parameter `i`.
    pub deps: u64,
}

impl SymLabel {
    /// The public, dependency-free bottom.
    pub const BOTTOM: SymLabel = SymLabel {
        concrete: Label::PUBLIC,
        deps: 0,
    };

    /// A value that is exactly parameter `i`.
    pub fn param(i: usize) -> SymLabel {
        assert!(i < 64, "at most 64 parameters are summarizable");
        SymLabel {
            concrete: Label::PUBLIC,
            deps: 1 << i,
        }
    }

    /// A constant concrete label.
    pub fn concrete(label: Label) -> SymLabel {
        SymLabel {
            concrete: label,
            deps: 0,
        }
    }

    /// Pointwise join.
    pub fn join(self, other: SymLabel) -> SymLabel {
        SymLabel {
            concrete: self.concrete.join(other.concrete),
            deps: self.deps | other.deps,
        }
    }

    /// Substitutes actual argument labels for parameter dependencies.
    pub fn instantiate(&self, args: &[Label]) -> Label {
        let mut out = self.concrete;
        for (i, &a) in args.iter().enumerate() {
            if self.deps & (1 << i) != 0 {
                out = out.join(a);
            }
        }
        out
    }
}

/// One potentially-leaking output site inside a summarized function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputSite {
    /// The channel written to.
    pub channel: String,
    /// What flows there.
    pub label: SymLabel,
    /// Where (callee-relative path).
    pub loc: Loc,
}

/// The label behaviour of one function, computed once.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    /// The return value's label as a function of the parameters.
    pub ret: SymLabel,
    /// All reachable output statements (including those in callees,
    /// already instantiated into this function's parameter space).
    pub outputs: Vec<OutputSite>,
}

/// Errors from summary construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SummaryError {
    /// The call graph is recursive.
    Recursion {
        /// A function on the cycle.
        func: String,
    },
    /// A function has more parameters than the dependency mask holds.
    TooManyParams {
        /// The offending function.
        func: String,
    },
}

impl fmt::Display for SummaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SummaryError::Recursion { func } => {
                write!(f, "recursive call chain through {func}")
            }
            SummaryError::TooManyParams { func } => {
                write!(f, "{func} has more than 64 parameters")
            }
        }
    }
}

impl std::error::Error for SummaryError {}

/// All function summaries of a program.
#[derive(Debug, Default)]
pub struct SummaryTable {
    summaries: BTreeMap<String, Summary>,
}

impl SummaryTable {
    /// Builds summaries bottom-up over the call graph.
    pub fn build(program: &Program) -> Result<SummaryTable, SummaryError> {
        let mut table = SummaryTable::default();
        let mut in_progress: Vec<String> = Vec::new();
        for f in &program.functions {
            build_one(program, f, &mut table, &mut in_progress)?;
        }
        Ok(table)
    }

    /// The summary for `func`, if present.
    pub fn get(&self, func: &str) -> Option<&Summary> {
        self.summaries.get(func)
    }

    /// Number of summarized functions.
    pub fn len(&self) -> usize {
        self.summaries.len()
    }

    /// True when no function has been summarized.
    pub fn is_empty(&self) -> bool {
        self.summaries.is_empty()
    }
}

fn build_one(
    program: &Program,
    f: &Function,
    table: &mut SummaryTable,
    in_progress: &mut Vec<String>,
) -> Result<(), SummaryError> {
    if table.summaries.contains_key(&f.name) {
        return Ok(());
    }
    if in_progress.contains(&f.name) {
        return Err(SummaryError::Recursion {
            func: f.name.clone(),
        });
    }
    if f.params.len() > 64 {
        return Err(SummaryError::TooManyParams {
            func: f.name.clone(),
        });
    }
    in_progress.push(f.name.clone());
    // Summarize callees first (bottom-up).
    collect_callees(&f.body, program, table, in_progress)?;

    let mut env: BTreeMap<Var, SymLabel> = f
        .params
        .iter()
        .enumerate()
        .map(|(i, (p, ann))| {
            let base = SymLabel::param(i);
            let with_ann = ann.map_or(base, |l| base.join(SymLabel::concrete(l)));
            (p.clone(), with_ann)
        })
        .collect();
    let mut outputs = Vec::new();
    sym_block(
        &f.body,
        &mut env,
        SymLabel::BOTTOM,
        &f.name,
        table,
        f.authority,
        &mut outputs,
        true,
    );
    let ret = f
        .ret
        .as_ref()
        .map(|e| sym_expr(e, &env))
        .unwrap_or(SymLabel::BOTTOM);
    in_progress.pop();
    table
        .summaries
        .insert(f.name.clone(), Summary { ret, outputs });
    Ok(())
}

fn collect_callees(
    stmts: &[Stmt],
    program: &Program,
    table: &mut SummaryTable,
    in_progress: &mut Vec<String>,
) -> Result<(), SummaryError> {
    for s in stmts {
        match s {
            Stmt::Call { func, .. } => {
                let callee = program.function(func).expect("validated program");
                build_one(program, callee, table, in_progress)?;
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_callees(then_branch, program, table, in_progress)?;
                collect_callees(else_branch, program, table, in_progress)?;
            }
            Stmt::While { body, .. } => {
                collect_callees(body, program, table, in_progress)?;
            }
            _ => {}
        }
    }
    Ok(())
}

fn sym_expr(e: &Expr, env: &BTreeMap<Var, SymLabel>) -> SymLabel {
    match e {
        Expr::Const(_) | Expr::VecLit(_) => SymLabel::BOTTOM,
        Expr::Var(v) => env.get(v).copied().unwrap_or(SymLabel::BOTTOM),
        Expr::Bin(_, l, r) => sym_expr(l, env).join(sym_expr(r, env)),
    }
}

#[allow(clippy::too_many_arguments)]
fn sym_block(
    stmts: &[Stmt],
    env: &mut BTreeMap<Var, SymLabel>,
    pc: SymLabel,
    path: &str,
    table: &SummaryTable,
    authority: Label,
    outputs: &mut Vec<OutputSite>,
    record: bool,
) {
    for (i, s) in stmts.iter().enumerate() {
        let loc = Loc(format!("{path}[{i}]"));
        match s {
            Stmt::Let { var, expr, label } => {
                let computed = sym_expr(expr, env);
                let l = label.map_or(computed, |ann| computed.join(SymLabel::concrete(ann)));
                env.insert(var.clone(), l.join(pc));
            }
            Stmt::Assign { var, expr } => {
                env.insert(var.clone(), sym_expr(expr, env).join(pc));
            }
            Stmt::Alloc { var } => {
                env.insert(var.clone(), pc);
            }
            Stmt::Append { obj, src } => {
                let s_l = env.get(src).copied().unwrap_or(SymLabel::BOTTOM);
                let o_l = env.get(obj).copied().unwrap_or(SymLabel::BOTTOM);
                env.insert(obj.clone(), o_l.join(s_l).join(pc));
            }
            Stmt::Read { dst, obj } => {
                let l = env.get(obj).copied().unwrap_or(SymLabel::BOTTOM);
                env.insert(dst.clone(), l.join(pc));
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let pc2 = pc.join(sym_expr(cond, env));
                let outer: Vec<Var> = env.keys().cloned().collect();
                let mut t = env.clone();
                sym_block(
                    then_branch,
                    &mut t,
                    pc2,
                    &format!("{loc}.then"),
                    table,
                    authority,
                    outputs,
                    record,
                );
                let mut e = env.clone();
                sym_block(
                    else_branch,
                    &mut e,
                    pc2,
                    &format!("{loc}.else"),
                    table,
                    authority,
                    outputs,
                    record,
                );
                for var in outer {
                    let tl = t.get(&var).copied().unwrap_or(SymLabel::BOTTOM);
                    let el = e.get(&var).copied().unwrap_or(SymLabel::BOTTOM);
                    env.insert(var, tl.join(el));
                }
            }
            Stmt::While { cond, body } => {
                let outer: Vec<Var> = env.keys().cloned().collect();
                for _ in 0..200 {
                    let pc2 = pc.join(sym_expr(cond, env));
                    let mut body_env = env.clone();
                    let mut scratch = Vec::new();
                    sym_block(
                        body,
                        &mut body_env,
                        pc2,
                        &format!("{loc}.body"),
                        table,
                        authority,
                        &mut scratch,
                        false,
                    );
                    let mut changed = false;
                    for var in &outer {
                        let before = env.get(var).copied().unwrap_or(SymLabel::BOTTOM);
                        let after = body_env.get(var).copied().unwrap_or(SymLabel::BOTTOM);
                        let joined = before.join(after);
                        if joined != before {
                            env.insert(var.clone(), joined);
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                let pc2 = pc.join(sym_expr(cond, env));
                let mut body_env = env.clone();
                sym_block(
                    body,
                    &mut body_env,
                    pc2,
                    &format!("{loc}.body"),
                    table,
                    authority,
                    outputs,
                    record,
                );
            }
            Stmt::Declassify { dst, expr } => {
                // Conservative: strip authority atoms from the concrete
                // component; parameter dependencies cannot be stripped at
                // summary time (their labels are unknown), so they stay.
                let raw = sym_expr(expr, env);
                let stripped = SymLabel {
                    concrete: Label::from_bits(raw.concrete.bits() & !authority.bits()),
                    deps: raw.deps,
                };
                env.insert(dst.clone(), stripped.join(pc));
            }
            Stmt::Output { channel, arg } => {
                if record {
                    outputs.push(OutputSite {
                        channel: channel.clone(),
                        label: sym_expr(arg, env).join(pc),
                        loc,
                    });
                }
            }
            Stmt::Call { dst, func, args } => {
                // Apply the callee's summary — the whole point: no
                // re-analysis, just substitution.
                let summary = table.get(func).expect("callees summarized bottom-up");
                let arg_labels: Vec<SymLabel> =
                    args.iter().map(|a| sym_expr(a, env).join(pc)).collect();
                if record {
                    for site in &summary.outputs {
                        outputs.push(OutputSite {
                            channel: site.channel.clone(),
                            label: instantiate_sym(site.label, &arg_labels).join(pc),
                            loc: Loc(format!("{loc}->{}", site.loc)),
                        });
                    }
                }
                if let Some(d) = dst {
                    let ret = instantiate_sym(summary.ret, &arg_labels).join(pc);
                    env.insert(d.clone(), ret);
                }
            }
        }
    }
}

/// Substitutes caller-side symbolic argument labels into a callee-side
/// symbolic label.
fn instantiate_sym(l: SymLabel, args: &[SymLabel]) -> SymLabel {
    let mut out = SymLabel::concrete(l.concrete);
    for (i, &a) in args.iter().enumerate() {
        if l.deps & (1 << i) != 0 {
            out = out.join(a);
        }
    }
    out
}

/// Whole-program verification by summary instantiation: builds all
/// summaries, then instantiates `main`'s with its annotated entry labels.
pub fn analyze_with_summaries(program: &Program) -> Result<Vec<Violation>, SummaryError> {
    let table = SummaryTable::build(program)?;
    let main = program
        .function("main")
        .expect("validated program has main");
    let entry: Vec<Label> = main
        .params
        .iter()
        .map(|(_, l)| l.unwrap_or(Label::PUBLIC))
        .collect();
    let summary = table.get("main").expect("main was summarized");
    let mut violations = Vec::new();
    for site in &summary.outputs {
        let label = site.label.instantiate(&entry);
        let bound = *program
            .channels
            .get(&site.channel)
            .expect("validated program declares its channels");
        if !label.flows_to(bound) {
            violations.push(Violation {
                loc: site.loc.clone(),
                channel: site.channel.clone(),
                label,
                bound,
            });
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp;
    use crate::parse::parse;

    #[test]
    fn sym_label_algebra() {
        let p0 = SymLabel::param(0);
        let p1 = SymLabel::param(1);
        let c = SymLabel::concrete(Label::SECRET);
        let j = p0.join(p1).join(c);
        assert_eq!(j.deps, 0b11);
        assert_eq!(j.concrete, Label::SECRET);
        assert_eq!(j.join(j), j, "join is idempotent");
        // Instantiation substitutes argument labels.
        let l = j.instantiate(&[Label::atom(5), Label::PUBLIC]);
        assert_eq!(l, Label::SECRET.join(Label::atom(5)));
    }

    #[test]
    fn identity_function_summary() {
        let p = parse(
            "channel t public;
             fn id(a) { return a; }
             fn main() { let r = call id(1); output t, r; }",
        )
        .unwrap();
        let table = SummaryTable::build(&p).unwrap();
        let s = table.get("id").unwrap();
        assert_eq!(s.ret, SymLabel::param(0));
        assert!(s.outputs.is_empty());
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn leaky_callee_summary_has_output_site() {
        let p = parse(
            "channel t public;
             fn leak(a) { output t, a; }
             fn main() { let s = 1 label secret; call leak(s); }",
        )
        .unwrap();
        let table = SummaryTable::build(&p).unwrap();
        let s = table.get("leak").unwrap();
        assert_eq!(s.outputs.len(), 1);
        assert_eq!(s.outputs[0].label.deps, 1);
        // Whole-program check finds the violation with a call-path loc.
        let vs = analyze_with_summaries(&p).unwrap();
        assert_eq!(vs.len(), 1);
        assert!(vs[0].loc.0.contains("->"), "{:?}", vs[0].loc);
    }

    #[test]
    fn nested_calls_compose() {
        let p = parse(
            "channel t public;
             fn inner(x) { return x + 1; }
             fn outer(y) { let r = call inner(y); return r * 2; }
             fn main() {
                 let s = 1 label secret;
                 let r = call outer(s);
                 output t, r;
             }",
        )
        .unwrap();
        let vs = analyze_with_summaries(&p).unwrap();
        assert_eq!(vs.len(), 1, "secret flows through two levels of calls");
    }

    #[test]
    fn annotation_inside_callee_is_constant_component() {
        let p = parse(
            "channel t public;
             fn gen() { let s = 7 label secret; return s; }
             fn main() { let r = call gen(); output t, r; }",
        )
        .unwrap();
        let table = SummaryTable::build(&p).unwrap();
        assert_eq!(
            table.get("gen").unwrap().ret,
            SymLabel::concrete(Label::SECRET)
        );
        assert_eq!(analyze_with_summaries(&p).unwrap().len(), 1);
    }

    #[test]
    fn recursion_detected() {
        let p = parse(
            "fn a() { call b(); }
             fn b() { call a(); }
             fn main() { call a(); }",
        )
        .unwrap();
        let e = SummaryTable::build(&p).unwrap_err();
        assert!(matches!(e, SummaryError::Recursion { .. }));
    }

    #[test]
    fn implicit_flow_through_callee_pc() {
        // The callee outputs under a branch on its parameter.
        let p = parse(
            "channel t public;
             fn maybe_ping(c) { if c { output t, 1; } }
             fn main() {
                 let s = 1 label secret;
                 call maybe_ping(s);
             }",
        )
        .unwrap();
        let vs = analyze_with_summaries(&p).unwrap();
        assert_eq!(
            vs.len(),
            1,
            "pc-dependency on the parameter must be summarized"
        );
    }

    /// Differential test: on call-heavy programs, summary-based analysis
    /// agrees with the monolithic interpreter statement-for-statement.
    #[test]
    fn agrees_with_monolithic_interpreter() {
        for (i, src) in [
            "channel t public; channel v secret;
             fn f(a, b) { output v, a; return a + b; }
             fn main() {
                 let s = 1 label secret;
                 let x = 2;
                 let r1 = call f(s, x);
                 let r2 = call f(x, x);
                 output t, r1;
                 output t, r2;
             }",
            "channel t public;
             fn double(x) { return x + x; }
             fn main() {
                 let p = 3;
                 let r = call double(p);
                 output t, r;
                 let s = 4 label secret;
                 if s < 5 { output t, 7; }
             }",
            "channel t public;
             fn noisy(a) { while a { a = a - 1; } output t, a; }
             fn main() { let s = 2 label secret; call noisy(s); call noisy(0); }",
        ]
        .iter()
        .enumerate()
        {
            let p = parse(src).unwrap();
            let mono = interp::analyze(&p).unwrap();
            let comp = analyze_with_summaries(&p).unwrap();
            assert_eq!(
                mono.len(),
                comp.len(),
                "program {i}: monolithic={mono:?} compositional={comp:?}"
            );
            for (m, c) in mono.iter().zip(&comp) {
                assert_eq!(m.channel, c.channel, "program {i}");
                assert_eq!(m.label, c.label, "program {i}");
            }
        }
    }

    #[test]
    fn summary_is_reused_not_recomputed() {
        // Build a program where `leaf` is called by many intermediates;
        // the table holds exactly one summary per function.
        let mut src = String::from("channel t public;\nfn leaf(x) { return x; }\n");
        for i in 0..10 {
            src.push_str(&format!(
                "fn mid{i}(x) {{ let r = call leaf(x); return r; }}\n"
            ));
        }
        src.push_str("fn main() {\n");
        for i in 0..10 {
            src.push_str(&format!("let r{i} = call mid{i}({i});\n"));
        }
        src.push_str("output t, r0;\n}\n");
        let p = parse(&src).unwrap();
        let table = SummaryTable::build(&p).unwrap();
        assert_eq!(table.len(), 12);
        assert!(!table.is_empty());
    }
}
