//! The verification driver — the SMACK-substitute front door.
//!
//! [`verify`] runs the Rust-mode pipeline the paper describes: the
//! ownership discipline first (a program that uses moved values never
//! reaches the label analysis, exactly as rustc rejects it before any
//! IFC tooling runs), then the label abstract interpretation. The result
//! is a [`Verdict`] with a renderable [`Report`], playing the role of
//! SMACK's verification output in the paper's workflow ("SMACK
//! discovered the injected bug, thereby increasing our confidence").

pub use crate::interp::Violation;
use crate::interp::{self, InterpError};
use crate::ir::Program;
use crate::ownership::{self, OwnershipError};
use crate::parse::{self, ParseError};
use std::fmt;

/// The outcome of verifying a program.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// No ownership errors and every output respects its channel bound.
    Safe,
    /// The program is not valid Rust-mode code: it uses moved values.
    /// Label analysis is not run (the compiler would have stopped here).
    OwnershipRejected(Vec<OwnershipError>),
    /// Ownership-clean, but information leaks were found.
    Leaky(Vec<Violation>),
    /// The analysis could not complete (e.g. recursion).
    AnalysisFailed(InterpError),
}

impl Verdict {
    /// True only for [`Verdict::Safe`].
    pub fn is_safe(&self) -> bool {
        matches!(self, Verdict::Safe)
    }
}

/// Runs ownership checking then label analysis on a validated program.
pub fn verify(program: &Program) -> Verdict {
    let ownership_errors = ownership::check_program(program);
    if !ownership_errors.is_empty() {
        return Verdict::OwnershipRejected(ownership_errors);
    }
    match interp::analyze(program) {
        Ok(violations) if violations.is_empty() => Verdict::Safe,
        Ok(violations) => Verdict::Leaky(violations),
        Err(e) => Verdict::AnalysisFailed(e),
    }
}

/// Parses and verifies program text.
pub fn verify_source(src: &str) -> Result<Verdict, ParseError> {
    let program = parse::parse(src)?;
    Ok(verify(&program))
}

/// A human-readable verification report.
#[derive(Debug, Clone)]
pub struct Report {
    /// The verdict being rendered.
    pub verdict: Verdict,
    /// Statements analyzed (a size measure for context).
    pub statements: usize,
}

impl Report {
    /// Builds a report for `program`.
    pub fn for_program(program: &Program) -> Report {
        Report {
            verdict: verify(program),
            statements: program.stmt_count(),
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "verified {} statements", self.statements)?;
        match &self.verdict {
            Verdict::Safe => writeln!(f, "result: SAFE — all channel bounds respected"),
            Verdict::OwnershipRejected(errors) => {
                writeln!(f, "result: REJECTED — ownership violations:")?;
                for e in errors {
                    writeln!(f, "  {e}")?;
                }
                Ok(())
            }
            Verdict::Leaky(violations) => {
                writeln!(f, "result: UNSAFE — information leaks:")?;
                for v in violations {
                    writeln!(f, "  {v}")?;
                }
                Ok(())
            }
            Verdict::AnalysisFailed(e) => writeln!(f, "result: ERROR — {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_program() {
        let v = verify_source("channel t public; fn main() { let x = 1; output t, x; }").unwrap();
        assert!(v.is_safe());
    }

    #[test]
    fn leaky_program() {
        let v = verify_source(
            "channel t public;
             fn main() { let s = 1 label secret; output t, s; }",
        )
        .unwrap();
        let Verdict::Leaky(vs) = v else {
            panic!("expected leak, got {v:?}");
        };
        assert_eq!(vs.len(), 1);
    }

    #[test]
    fn ownership_rejected_before_labels() {
        // This program both uses-after-move AND leaks; the verdict is the
        // ownership rejection, mirroring compilation order.
        let v = verify_source(
            "channel t public;
             fn main() {
                 let sink = alloc;
                 let s = vec[1] label secret;
                 append sink, s;
                 output t, s;
             }",
        )
        .unwrap();
        let Verdict::OwnershipRejected(errors) = v else {
            panic!("expected ownership rejection, got {v:?}");
        };
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].var, "s");
    }

    #[test]
    fn analysis_failure_surfaces() {
        let v = verify_source("fn main() { call main(); }").unwrap();
        assert!(matches!(v, Verdict::AnalysisFailed(_)));
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(verify_source("fn main() {").is_err());
    }

    #[test]
    fn report_rendering() {
        let p = parse::parse(
            "channel t public;
             fn main() { let s = 1 label secret; output t, s; }",
        )
        .unwrap();
        let r = Report::for_program(&p);
        let text = r.to_string();
        assert!(text.contains("UNSAFE"), "{text}");
        assert!(text.contains("verified 2 statements"), "{text}");

        let safe = parse::parse("channel t public; fn main() { output t, 1; }").unwrap();
        let text = Report::for_program(&safe).to_string();
        assert!(text.contains("SAFE"), "{text}");
    }

    #[test]
    fn report_renders_ownership_rejection() {
        let p = parse::parse(
            "channel t public;
             fn main() {
                 let sink = alloc;
                 let v = vec[1];
                 append sink, v;
                 output t, v;
             }",
        )
        .unwrap();
        let text = Report::for_program(&p).to_string();
        assert!(text.contains("REJECTED"), "{text}");
        assert!(text.contains("after it was moved"), "{text}");
    }
}
