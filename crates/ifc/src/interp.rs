//! The label abstract interpreter (move mode).
//!
//! "We represent the value of each variable in the abstract domain by its
//! security label. ... Arithmetic expressions over secure values are
//! abstracted by computing the upper bound of their arguments. An
//! auxiliary program counter variable is introduced to track the flow of
//! information via branching on labeled variables." (§4)
//!
//! Because heap values are uniquely owned in move mode, a buffer's label
//! lives with the one variable that owns it — there is no points-to
//! relation, no alias sets, nothing to resolve. That is the paper's
//! entire performance argument and it is visible in the shape of this
//! file: the transfer function for `append` is a single map update.
//!
//! Loops run to a label fixpoint (labels only grow in a finite lattice,
//! so convergence is guaranteed); violations are recorded in a final
//! pass over the converged state so each faulty statement is reported
//! once, with its stable label.

use crate::ir::{Expr, Function, Loc, Program, Stmt, Var};
use crate::label::Label;
use std::collections::BTreeMap;
use std::fmt;

/// The abstract state: each variable's security label. For heap
/// variables this is the label of the buffer's *content*.
pub type LabelState = BTreeMap<Var, Label>;

/// A channel-bound violation: the verified property failed at `loc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The offending statement.
    pub loc: Loc,
    /// The channel written to.
    pub channel: String,
    /// The label of the written data (incl. pc taint).
    pub label: Label,
    /// The channel's declared bound.
    pub bound: Label,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: output of {} data to channel {} (bound {})",
            self.loc, self.label, self.channel, self.bound
        )
    }
}

/// Analysis failures (as opposed to property violations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The call graph is recursive; summaries or inlining would not
    /// terminate. (The paper's prototype had the same restriction — its
    /// abstract programs were loop-bounded for SMACK.)
    Recursion {
        /// The function that called itself (possibly indirectly).
        func: String,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Recursion { func } => {
                write!(f, "recursive call chain through {func} is not supported")
            }
        }
    }
}

impl std::error::Error for InterpError {}

struct Ctx<'p> {
    program: &'p Program,
    violations: Vec<Violation>,
    /// Call stack for recursion detection.
    stack: Vec<String>,
    /// Authority of the function currently being interpreted (for
    /// declassification).
    authority: Label,
    /// When false (fixpoint warm-up iterations), skip recording
    /// violations; the converged pass records them.
    record: bool,
}

/// Runs the abstract interpretation of `program` starting at `main`,
/// with annotated entry labels. Returns the violations found.
///
/// The program must already validate.
pub fn analyze(program: &Program) -> Result<Vec<Violation>, InterpError> {
    let main = program
        .function("main")
        .expect("validated program has main");
    let mut ctx = Ctx {
        program,
        violations: Vec::new(),
        stack: Vec::new(),
        authority: main.authority,
        record: true,
    };
    let mut env: LabelState = main
        .params
        .iter()
        .map(|(p, l)| (p.clone(), l.unwrap_or(Label::PUBLIC)))
        .collect();
    interpret_function(main, &mut env, Label::PUBLIC, &mut ctx)?;
    Ok(ctx.violations)
}

/// Analyzes `main` and also returns the final abstract state — useful in
/// tests and for the secure-store walkthrough.
pub fn analyze_with_state(program: &Program) -> Result<(Vec<Violation>, LabelState), InterpError> {
    let main = program
        .function("main")
        .expect("validated program has main");
    let mut ctx = Ctx {
        program,
        violations: Vec::new(),
        stack: Vec::new(),
        authority: main.authority,
        record: true,
    };
    let mut env: LabelState = main
        .params
        .iter()
        .map(|(p, l)| (p.clone(), l.unwrap_or(Label::PUBLIC)))
        .collect();
    interpret_function(main, &mut env, Label::PUBLIC, &mut ctx)?;
    Ok((ctx.violations, env))
}

fn interpret_function(
    f: &Function,
    env: &mut LabelState,
    pc: Label,
    ctx: &mut Ctx<'_>,
) -> Result<Label, InterpError> {
    if ctx.stack.iter().any(|s| s == &f.name) {
        return Err(InterpError::Recursion {
            func: f.name.clone(),
        });
    }
    ctx.stack.push(f.name.clone());
    let saved_authority = ctx.authority;
    ctx.authority = f.authority;
    interpret_block(&f.body, env, pc, &f.name, ctx)?;
    ctx.authority = saved_authority;
    let ret = f
        .ret
        .as_ref()
        .map(|e| expr_label(e, env).join(pc))
        .unwrap_or(Label::PUBLIC);
    ctx.stack.pop();
    Ok(ret)
}

/// The label of an expression: the join of its parts.
pub fn expr_label(e: &Expr, env: &LabelState) -> Label {
    match e {
        Expr::Const(_) | Expr::VecLit(_) => Label::PUBLIC,
        Expr::Var(v) => env.get(v).copied().unwrap_or(Label::PUBLIC),
        Expr::Bin(_, l, r) => expr_label(l, env).join(expr_label(r, env)),
    }
}

fn interpret_block(
    stmts: &[Stmt],
    env: &mut LabelState,
    pc: Label,
    path: &str,
    ctx: &mut Ctx<'_>,
) -> Result<(), InterpError> {
    for (i, s) in stmts.iter().enumerate() {
        let loc = Loc(format!("{path}[{i}]"));
        match s {
            Stmt::Let { var, expr, label } => {
                let computed = expr_label(expr, env);
                let annotated = label.map_or(computed, |ann| ann.join(computed));
                env.insert(var.clone(), annotated.join(pc));
            }
            Stmt::Assign { var, expr } => {
                env.insert(var.clone(), expr_label(expr, env).join(pc));
            }
            Stmt::Alloc { var } => {
                env.insert(var.clone(), pc);
            }
            Stmt::Append { obj, src } => {
                let src_label = env.get(src).copied().unwrap_or(Label::PUBLIC);
                let obj_label = env.get(obj).copied().unwrap_or(Label::PUBLIC);
                // The one-line transfer function unique ownership buys:
                // no alias set to update, just this variable's label.
                env.insert(obj.clone(), obj_label.join(src_label).join(pc));
            }
            Stmt::Read { dst, obj } => {
                let obj_label = env.get(obj).copied().unwrap_or(Label::PUBLIC);
                env.insert(dst.clone(), obj_label.join(pc));
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                // Implicit flows: both branches execute under a pc raised
                // by the condition's label.
                let pc2 = pc.join(expr_label(cond, env));
                let outer: Vec<Var> = env.keys().cloned().collect();
                let mut then_env = env.clone();
                interpret_block(then_branch, &mut then_env, pc2, &format!("{loc}.then"), ctx)?;
                let mut else_env = env.clone();
                interpret_block(else_branch, &mut else_env, pc2, &format!("{loc}.else"), ctx)?;
                // Join the branch states on the variables that survive.
                for var in outer {
                    let t = then_env.get(&var).copied().unwrap_or(Label::PUBLIC);
                    let e = else_env.get(&var).copied().unwrap_or(Label::PUBLIC);
                    env.insert(var, t.join(e));
                }
            }
            Stmt::While { cond, body } => {
                // Fixpoint: iterate the body transfer function until the
                // outer state stabilizes. Violations are suppressed during
                // warm-up and recorded in one converged pass.
                let outer: Vec<Var> = env.keys().cloned().collect();
                let was_recording = ctx.record;
                ctx.record = false;
                for _ in 0..130 {
                    let pc2 = pc.join(expr_label(cond, env));
                    let mut body_env = env.clone();
                    interpret_block(body, &mut body_env, pc2, &format!("{loc}.body"), ctx)?;
                    let mut changed = false;
                    for var in &outer {
                        let before = env.get(var).copied().unwrap_or(Label::PUBLIC);
                        let after = body_env.get(var).copied().unwrap_or(Label::PUBLIC);
                        let joined = before.join(after);
                        if joined != before {
                            env.insert(var.clone(), joined);
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                ctx.record = was_recording;
                // Converged pass: record violations inside the body once.
                let pc2 = pc.join(expr_label(cond, env));
                let mut body_env = env.clone();
                interpret_block(body, &mut body_env, pc2, &format!("{loc}.body"), ctx)?;
            }
            Stmt::Declassify { dst, expr } => {
                // Robust declassification: the decision to declassify
                // must itself not be controlled by data outside the
                // authority; otherwise report it like a leak.
                if ctx.record && !pc.flows_to(ctx.authority) {
                    ctx.violations.push(Violation {
                        loc: loc.clone(),
                        channel: format!("<declassify {dst}>"),
                        label: pc,
                        bound: ctx.authority,
                    });
                }
                // Strip the authority's atoms from the value *as observed
                // here* — pc influence within the authority is part of
                // what is being released; anything beyond it survives
                // (and was flagged above).
                let observed = expr_label(expr, env).join(pc);
                let stripped = Label::from_bits(observed.bits() & !ctx.authority.bits());
                env.insert(dst.clone(), stripped);
            }
            Stmt::Output { channel, arg } => {
                let label = expr_label(arg, env).join(pc);
                let bound = *ctx
                    .program
                    .channels
                    .get(channel)
                    .expect("validated program declares its channels");
                if ctx.record && !label.flows_to(bound) {
                    ctx.violations.push(Violation {
                        loc,
                        channel: channel.clone(),
                        label,
                        bound,
                    });
                }
            }
            Stmt::Call { dst, func, args } => {
                let callee = ctx
                    .program
                    .function(func)
                    .expect("validated program resolves calls");
                let mut callee_env: LabelState = callee
                    .params
                    .iter()
                    .zip(args)
                    .map(|((p, ann), a)| {
                        let base = expr_label(a, env).join(pc);
                        (p.clone(), ann.map_or(base, |l| l.join(base)))
                    })
                    .collect();
                let ret = interpret_function(callee, &mut callee_env, pc, ctx)?;
                if let Some(d) = dst {
                    env.insert(d.clone(), ret.join(pc));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Function, ProgramBuilder};

    fn v(name: &str) -> Expr {
        Expr::Var(name.into())
    }

    fn secret_let(name: &str) -> Stmt {
        Stmt::Let {
            var: name.into(),
            expr: Expr::Const(42),
            label: Some(Label::SECRET),
        }
    }

    fn build(body: Vec<Stmt>) -> Program {
        ProgramBuilder::new()
            .channel("term", Label::PUBLIC)
            .channel("vault", Label::SECRET)
            .main(body)
            .build()
            .unwrap()
    }

    #[test]
    fn public_to_public_is_safe() {
        let p = build(vec![
            Stmt::Let {
                var: "x".into(),
                expr: Expr::Const(1),
                label: None,
            },
            Stmt::Output {
                channel: "term".into(),
                arg: v("x"),
            },
        ]);
        assert!(analyze(&p).unwrap().is_empty());
    }

    #[test]
    fn secret_to_public_violates() {
        let p = build(vec![
            secret_let("s"),
            Stmt::Output {
                channel: "term".into(),
                arg: v("s"),
            },
        ]);
        let vs = analyze(&p).unwrap();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].channel, "term");
        assert_eq!(vs[0].label, Label::SECRET);
        assert_eq!(vs[0].bound, Label::PUBLIC);
        assert_eq!(vs[0].loc.0, "main[1]");
    }

    #[test]
    fn secret_to_secret_channel_is_safe() {
        let p = build(vec![
            secret_let("s"),
            Stmt::Output {
                channel: "vault".into(),
                arg: v("s"),
            },
        ]);
        assert!(analyze(&p).unwrap().is_empty());
    }

    #[test]
    fn taint_propagates_through_arithmetic() {
        let p = build(vec![
            secret_let("s"),
            Stmt::Let {
                var: "x".into(),
                expr: Expr::Const(1),
                label: None,
            },
            Stmt::Let {
                var: "y".into(),
                expr: Expr::bin(BinOp::Add, v("s"), v("x")),
                label: None,
            },
            Stmt::Output {
                channel: "term".into(),
                arg: v("y"),
            },
        ]);
        assert_eq!(analyze(&p).unwrap().len(), 1);
    }

    /// The paper's main buffer scenario: append non-secret then secret
    /// data, printing the buffer leaks (line 16).
    #[test]
    fn buffer_becomes_tainted_on_append() {
        let p = build(vec![
            Stmt::Alloc { var: "buf".into() },
            Stmt::Let {
                var: "nonsec".into(),
                expr: Expr::VecLit(vec![1, 2, 3]),
                label: None,
            },
            secret_let("sec"),
            Stmt::Append {
                obj: "buf".into(),
                src: "nonsec".into(),
            },
            Stmt::Output {
                channel: "term".into(),
                arg: v("buf"),
            }, // still fine here
            Stmt::Append {
                obj: "buf".into(),
                src: "sec".into(),
            },
            Stmt::Output {
                channel: "term".into(),
                arg: v("buf"),
            }, // leaks
        ]);
        let vs = analyze(&p).unwrap();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].loc.0, "main[6]");
    }

    #[test]
    fn implicit_flow_through_branch() {
        // if (secret) { x = 1 } else { x = 0 }; output(term, x)
        let p = build(vec![
            secret_let("s"),
            Stmt::Let {
                var: "x".into(),
                expr: Expr::Const(0),
                label: None,
            },
            Stmt::If {
                cond: v("s"),
                then_branch: vec![Stmt::Assign {
                    var: "x".into(),
                    expr: Expr::Const(1),
                }],
                else_branch: vec![],
            },
            Stmt::Output {
                channel: "term".into(),
                arg: v("x"),
            },
        ]);
        let vs = analyze(&p).unwrap();
        assert_eq!(vs.len(), 1, "implicit flow must be caught");
    }

    #[test]
    fn output_inside_secret_branch_is_implicit_leak() {
        let p = build(vec![
            secret_let("s"),
            Stmt::If {
                cond: v("s"),
                then_branch: vec![Stmt::Output {
                    channel: "term".into(),
                    arg: Expr::Const(1),
                }],
                else_branch: vec![],
            },
        ]);
        let vs = analyze(&p).unwrap();
        assert_eq!(vs.len(), 1, "outputting under a secret pc leaks one bit");
    }

    #[test]
    fn branch_join_keeps_untouched_vars_clean() {
        let p = build(vec![
            secret_let("s"),
            Stmt::Let {
                var: "clean".into(),
                expr: Expr::Const(7),
                label: None,
            },
            Stmt::If {
                cond: v("s"),
                then_branch: vec![],
                else_branch: vec![],
            },
            Stmt::Output {
                channel: "term".into(),
                arg: v("clean"),
            },
        ]);
        assert!(analyze(&p).unwrap().is_empty());
    }

    #[test]
    fn loop_fixpoint_converges_and_taints() {
        // x starts public; the loop mixes s into x transitively:
        // while (c) { t = x + s; x = t }
        let p = build(vec![
            secret_let("s"),
            Stmt::Let {
                var: "x".into(),
                expr: Expr::Const(0),
                label: None,
            },
            Stmt::Let {
                var: "c".into(),
                expr: Expr::Const(1),
                label: None,
            },
            Stmt::While {
                cond: v("c"),
                body: vec![
                    Stmt::Let {
                        var: "t".into(),
                        expr: Expr::bin(BinOp::Add, v("x"), v("s")),
                        label: None,
                    },
                    Stmt::Assign {
                        var: "x".into(),
                        expr: v("t"),
                    },
                ],
            },
            Stmt::Output {
                channel: "term".into(),
                arg: v("x"),
            },
        ]);
        let vs = analyze(&p).unwrap();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].loc.0, "main[4]");
    }

    #[test]
    fn loop_violations_reported_once() {
        let p = build(vec![
            secret_let("s"),
            Stmt::Let {
                var: "c".into(),
                expr: Expr::Const(1),
                label: None,
            },
            Stmt::While {
                cond: v("c"),
                body: vec![Stmt::Output {
                    channel: "term".into(),
                    arg: v("s"),
                }],
            },
        ]);
        let vs = analyze(&p).unwrap();
        assert_eq!(vs.len(), 1, "one report per faulty statement, got {vs:?}");
    }

    #[test]
    fn secret_loop_condition_taints_body_writes() {
        let p = build(vec![
            secret_let("s"),
            Stmt::Let {
                var: "x".into(),
                expr: Expr::Const(0),
                label: None,
            },
            Stmt::While {
                cond: v("s"),
                body: vec![Stmt::Assign {
                    var: "x".into(),
                    expr: Expr::Const(1),
                }],
            },
            Stmt::Output {
                channel: "term".into(),
                arg: v("x"),
            },
        ]);
        assert_eq!(analyze(&p).unwrap().len(), 1);
    }

    #[test]
    fn calls_propagate_labels_through_return() {
        let id = Function {
            name: "id".into(),
            params: vec![("a".into(), None)],
            authority: Label::PUBLIC,
            body: vec![],
            ret: Some(v("a")),
        };
        let p = ProgramBuilder::new()
            .channel("term", Label::PUBLIC)
            .function(id)
            .main(vec![
                secret_let("s"),
                Stmt::Call {
                    dst: Some("r".into()),
                    func: "id".into(),
                    args: vec![v("s")],
                },
                Stmt::Output {
                    channel: "term".into(),
                    arg: v("r"),
                },
            ])
            .build()
            .unwrap();
        assert_eq!(analyze(&p).unwrap().len(), 1);
    }

    #[test]
    fn callee_outputs_are_checked() {
        let leaky = Function {
            name: "leak".into(),
            params: vec![("a".into(), None)],
            authority: Label::PUBLIC,
            body: vec![Stmt::Output {
                channel: "term".into(),
                arg: v("a"),
            }],
            ret: None,
        };
        let p = ProgramBuilder::new()
            .channel("term", Label::PUBLIC)
            .function(leaky)
            .main(vec![
                secret_let("s"),
                Stmt::Call {
                    dst: None,
                    func: "leak".into(),
                    args: vec![v("s")],
                },
            ])
            .build()
            .unwrap();
        let vs = analyze(&p).unwrap();
        assert_eq!(vs.len(), 1);
        assert!(vs[0].loc.0.starts_with("leak["), "{:?}", vs[0].loc);
    }

    #[test]
    fn recursion_is_reported() {
        let f = Function {
            name: "f".into(),
            params: vec![],
            authority: Label::PUBLIC,
            body: vec![Stmt::Call {
                dst: None,
                func: "f".into(),
                args: vec![],
            }],
            ret: None,
        };
        let p = ProgramBuilder::new()
            .function(f)
            .main(vec![Stmt::Call {
                dst: None,
                func: "f".into(),
                args: vec![],
            }])
            .build()
            .unwrap();
        assert_eq!(
            analyze(&p).unwrap_err(),
            InterpError::Recursion { func: "f".into() }
        );
    }

    #[test]
    fn annotations_on_entry_params() {
        let p = ProgramBuilder::new()
            .channel("term", Label::PUBLIC)
            .function(Function {
                name: "main".into(),
                params: vec![("input".into(), Some(Label::SECRET))],
                authority: Label::PUBLIC,
                body: vec![Stmt::Output {
                    channel: "term".into(),
                    arg: v("input"),
                }],
                ret: None,
            })
            .build()
            .unwrap();
        assert_eq!(analyze(&p).unwrap().len(), 1);
    }

    #[test]
    fn final_state_reflects_labels() {
        let p = build(vec![
            secret_let("s"),
            Stmt::Let {
                var: "x".into(),
                expr: Expr::Const(1),
                label: None,
            },
        ]);
        let (vs, state) = analyze_with_state(&p).unwrap();
        assert!(vs.is_empty());
        assert_eq!(state["s"], Label::SECRET);
        assert_eq!(state["x"], Label::PUBLIC);
    }

    #[test]
    fn violation_display() {
        let viol = Violation {
            loc: Loc("main[6]".into()),
            channel: "term".into(),
            label: Label::SECRET,
            bound: Label::PUBLIC,
        };
        assert_eq!(
            viol.to_string(),
            "main[6]: output of secret data to channel term (bound public)"
        );
    }
}
