//! A concrete interpreter with dynamic taint.
//!
//! Runs programs for real — integer arithmetic, buffers, calls, bounded
//! loops — while propagating labels on *values* (dynamic taint along the
//! executed path, plus the taken branch's pc). Its role is to anchor the
//! static analysis:
//!
//! - **soundness direction**: dynamic labels only track the executed
//!   path, so they are a lower bound on the static abstraction. If the
//!   static verifier says *Safe*, then on every concrete run, every
//!   output's dynamic label must flow to its channel bound — a property
//!   test in this module checks exactly that over generated programs and
//!   random inputs;
//! - the executor also powers end-to-end demos: verify a program, then
//!   actually run it.

use crate::ir::{BinOp, Expr, Function, Loc, Program, Stmt, Var};
use crate::label::Label;
use std::collections::BTreeMap;
use std::fmt;

/// A runtime value: concrete data plus its dynamic label.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A scalar.
    Int(i64, Label),
    /// A buffer (vector contents, one label for the whole buffer).
    Buf(Vec<i64>, Label),
}

impl Value {
    /// The value's dynamic label.
    pub fn label(&self) -> Label {
        match self {
            Value::Int(_, l) | Value::Buf(_, l) => *l,
        }
    }

    fn as_int(&self) -> i64 {
        match self {
            Value::Int(v, _) => *v,
            Value::Buf(items, _) => items.iter().sum(),
        }
    }
}

/// One observed output.
#[derive(Debug, Clone, PartialEq)]
pub struct Emission {
    /// The channel written to.
    pub channel: String,
    /// The concrete value (buffers flattened to their contents).
    pub data: Vec<i64>,
    /// The dynamic label at the write, pc included.
    pub label: Label,
    /// Where the write happened.
    pub loc: Loc,
}

/// Runtime failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The step budget was exhausted (runaway loop).
    StepBudget,
    /// A moved buffer was touched (the static ownership checker rejects
    /// such programs; this guards direct executor use).
    MovedValue {
        /// The offending variable.
        var: Var,
    },
    /// Recursive call at runtime.
    Recursion {
        /// The re-entered function.
        func: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::StepBudget => write!(f, "step budget exhausted"),
            ExecError::MovedValue { var } => write!(f, "use of moved value {var}"),
            ExecError::Recursion { func } => write!(f, "recursive call to {func}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Variable slots: `None` marks a moved-out buffer.
type Env = BTreeMap<Var, Option<Value>>;

struct Machine<'p> {
    program: &'p Program,
    emissions: Vec<Emission>,
    steps: u64,
    budget: u64,
    call_stack: Vec<String>,
}

/// Executes `main` with the given scalar arguments (labels taken from the
/// parameter annotations). Returns everything written to output channels.
pub fn execute(program: &Program, args: &[i64]) -> Result<Vec<Emission>, ExecError> {
    execute_with_budget(program, args, 200_000)
}

/// [`execute`] with an explicit step budget.
pub fn execute_with_budget(
    program: &Program,
    args: &[i64],
    budget: u64,
) -> Result<Vec<Emission>, ExecError> {
    let main = program
        .function("main")
        .expect("validated program has main");
    let mut m = Machine {
        program,
        emissions: Vec::new(),
        steps: 0,
        budget,
        call_stack: Vec::new(),
    };
    let mut env: Env = main
        .params
        .iter()
        .enumerate()
        .map(|(i, (p, ann))| {
            let v = args.get(i).copied().unwrap_or(0);
            (p.clone(), Some(Value::Int(v, ann.unwrap_or(Label::PUBLIC))))
        })
        .collect();
    m.run_function(main, &mut env, Label::PUBLIC)?;
    Ok(m.emissions)
}

impl Machine<'_> {
    fn tick(&mut self) -> Result<(), ExecError> {
        self.steps += 1;
        if self.steps > self.budget {
            return Err(ExecError::StepBudget);
        }
        Ok(())
    }

    fn run_function(&mut self, f: &Function, env: &mut Env, pc: Label) -> Result<Value, ExecError> {
        if self.call_stack.iter().any(|s| s == &f.name) {
            return Err(ExecError::Recursion {
                func: f.name.clone(),
            });
        }
        self.call_stack.push(f.name.clone());
        self.run_block(&f.body, env, pc, &f.name, f.authority)?;
        let ret = match &f.ret {
            Some(e) => self.eval(e, env)?,
            None => Value::Int(0, Label::PUBLIC),
        };
        self.call_stack.pop();
        Ok(ret)
    }

    fn eval(&mut self, e: &Expr, env: &Env) -> Result<Value, ExecError> {
        Ok(match e {
            Expr::Const(n) => Value::Int(*n, Label::PUBLIC),
            Expr::VecLit(items) => Value::Buf(items.clone(), Label::PUBLIC),
            Expr::Var(v) => match env.get(v) {
                Some(Some(val)) => val.clone(),
                Some(None) => return Err(ExecError::MovedValue { var: v.clone() }),
                None => Value::Int(0, Label::PUBLIC),
            },
            Expr::Bin(op, l, r) => {
                let lv = self.eval(l, env)?;
                let rv = self.eval(r, env)?;
                let label = lv.label().join(rv.label());
                let (a, b) = (lv.as_int(), rv.as_int());
                let out = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Eq => i64::from(a == b),
                    BinOp::Lt => i64::from(a < b),
                };
                Value::Int(out, label)
            }
        })
    }

    fn run_block(
        &mut self,
        stmts: &[Stmt],
        env: &mut Env,
        pc: Label,
        path: &str,
        authority: Label,
    ) -> Result<(), ExecError> {
        for (i, s) in stmts.iter().enumerate() {
            self.tick()?;
            let loc = Loc(format!("{path}[{i}]"));
            match s {
                Stmt::Let { var, expr, label } => {
                    let mut v = self.eval(expr, env)?;
                    if let Some(ann) = label {
                        v = match v {
                            Value::Int(n, l) => Value::Int(n, l.join(*ann)),
                            Value::Buf(b, l) => Value::Buf(b, l.join(*ann)),
                        };
                    }
                    // Binding a bare heap variable moves it.
                    self.maybe_move_source(expr, env);
                    env.insert(var.clone(), Some(taint(v, pc)));
                }
                Stmt::Assign { var, expr } => {
                    let v = self.eval(expr, env)?;
                    self.maybe_move_source(expr, env);
                    env.insert(var.clone(), Some(taint(v, pc)));
                }
                Stmt::Alloc { var } => {
                    env.insert(var.clone(), Some(Value::Buf(Vec::new(), pc)));
                }
                Stmt::Append { obj, src } => {
                    let src_val = match env.get(src) {
                        Some(Some(v)) => v.clone(),
                        Some(None) => return Err(ExecError::MovedValue { var: src.clone() }),
                        None => Value::Int(0, Label::PUBLIC),
                    };
                    // Consume heap sources (move semantics).
                    if matches!(src_val, Value::Buf(..)) {
                        env.insert(src.clone(), None);
                    }
                    let Some(Some(Value::Buf(items, label))) = env.get_mut(obj) else {
                        return Err(ExecError::MovedValue { var: obj.clone() });
                    };
                    match src_val {
                        Value::Buf(mut more, l) => {
                            items.append(&mut more);
                            *label = label.join(l).join(pc);
                        }
                        Value::Int(n, l) => {
                            items.push(n);
                            *label = label.join(l).join(pc);
                        }
                    }
                }
                Stmt::Read { dst, obj } => {
                    let v = match env.get(obj) {
                        Some(Some(Value::Buf(items, l))) => {
                            Value::Int(items.iter().sum(), l.join(pc))
                        }
                        Some(Some(Value::Int(n, l))) => Value::Int(*n, l.join(pc)),
                        Some(None) => return Err(ExecError::MovedValue { var: obj.clone() }),
                        None => Value::Int(0, pc),
                    };
                    env.insert(dst.clone(), Some(v));
                }
                Stmt::Declassify { dst, expr } => {
                    let v = self.eval(expr, env)?;
                    let observed = v.label().join(pc);
                    let stripped = Label::from_bits(observed.bits() & !authority.bits());
                    env.insert(dst.clone(), Some(Value::Int(v.as_int(), stripped)));
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let c = self.eval(cond, env)?;
                    let pc2 = pc.join(c.label());
                    let branch = if c.as_int() != 0 {
                        then_branch
                    } else {
                        else_branch
                    };
                    let tag = if c.as_int() != 0 { "then" } else { "else" };
                    self.run_block(branch, env, pc2, &format!("{loc}.{tag}"), authority)?;
                }
                Stmt::While { cond, body } => loop {
                    self.tick()?;
                    let c = self.eval(cond, env)?;
                    if c.as_int() == 0 {
                        break;
                    }
                    let pc2 = pc.join(c.label());
                    self.run_block(body, env, pc2, &format!("{loc}.body"), authority)?;
                },
                Stmt::Output { channel, arg } => {
                    let v = self.eval(arg, env)?;
                    let data = match &v {
                        Value::Int(n, _) => vec![*n],
                        Value::Buf(items, _) => items.clone(),
                    };
                    self.emissions.push(Emission {
                        channel: channel.clone(),
                        data,
                        label: v.label().join(pc),
                        loc,
                    });
                }
                Stmt::Call { dst, func, args } => {
                    let callee = self.program.function(func).expect("validated program");
                    let mut callee_env: Env = BTreeMap::new();
                    for ((p, ann), a) in callee.params.iter().zip(args) {
                        let mut v = self.eval(a, env)?;
                        if let Some(l) = ann {
                            v = Value::Int(v.as_int(), v.label().join(*l));
                        }
                        callee_env.insert(p.clone(), Some(taint(v, pc)));
                    }
                    let ret = self.run_function(callee, &mut callee_env, pc)?;
                    if let Some(d) = dst {
                        env.insert(d.clone(), Some(taint(ret, pc)));
                    }
                }
            }
        }
        Ok(())
    }

    /// Bare heap-variable right-hand sides move their source.
    fn maybe_move_source(&self, expr: &Expr, env: &mut Env) {
        if let Expr::Var(src) = expr {
            if matches!(env.get(src), Some(Some(Value::Buf(..)))) {
                env.insert(src.clone(), None);
            }
        }
    }
}

fn taint(v: Value, pc: Label) -> Value {
    match v {
        Value::Int(n, l) => Value::Int(n, l.join(pc)),
        Value::Buf(b, l) => Value::Buf(b, l.join(pc)),
    }
}

/// Checks one run's emissions against the channel bounds: the dynamic
/// counterpart of the static verifier's property.
pub fn dynamic_violations(program: &Program, emissions: &[Emission]) -> Vec<Emission> {
    emissions
        .iter()
        .filter(|e| {
            let bound = program
                .channels
                .get(&e.channel)
                .copied()
                .unwrap_or(Label::PUBLIC);
            !e.label.flows_to(bound)
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::verify::{verify, Verdict};
    use proptest::prelude::*;

    #[test]
    fn arithmetic_and_output() {
        let p = parse(
            "channel t public;
             fn main() { let x = 2 + 3 * 4; output t, x; }",
        )
        .unwrap();
        let out = execute(&p, &[]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].data, vec![14]);
        assert_eq!(out[0].label, Label::PUBLIC);
    }

    #[test]
    fn buffers_append_and_read() {
        let p = parse(
            "channel t public;
             fn main() {
                 let buf = alloc;
                 let v = vec[1, 2, 3];
                 append buf, v;
                 let sum = read buf;
                 output t, sum;
                 output t, buf;
             }",
        )
        .unwrap();
        let out = execute(&p, &[]).unwrap();
        assert_eq!(out[0].data, vec![6]);
        assert_eq!(out[1].data, vec![1, 2, 3]);
    }

    #[test]
    fn taint_follows_data_and_pc() {
        let p = parse(
            "channel t public;
             fn main(secret_in label secret) {
                 let doubled = secret_in * 2;
                 output t, doubled;
                 if secret_in { output t, 1; }
             }",
        )
        .unwrap();
        let out = execute(&p, &[21]).unwrap();
        assert_eq!(out[0].data, vec![42]);
        assert_eq!(out[0].label, Label::SECRET, "explicit flow");
        assert_eq!(
            out[1].label,
            Label::SECRET,
            "implicit flow via taken branch"
        );
        assert_eq!(dynamic_violations(&p, &out).len(), 2);
    }

    #[test]
    fn loops_execute_and_terminate() {
        let p = parse(
            "channel t public;
             fn main(n) {
                 let acc = 0;
                 let i = 0;
                 while i < n { acc = acc + i; i = i + 1; }
                 output t, acc;
             }",
        )
        .unwrap();
        let out = execute(&p, &[5]).unwrap();
        assert_eq!(out[0].data, vec![10]);
    }

    #[test]
    fn runaway_loop_hits_budget() {
        let p = parse("fn main() { let c = 1; while c { c = 1; } }").unwrap();
        assert_eq!(
            execute_with_budget(&p, &[], 1_000).unwrap_err(),
            ExecError::StepBudget
        );
    }

    #[test]
    fn calls_pass_values_and_labels() {
        let p = parse(
            "channel t public;
             fn double(x) { return x + x; }
             fn main(s label secret) {
                 let r = call double(s);
                 output t, r;
             }",
        )
        .unwrap();
        let out = execute(&p, &[7]).unwrap();
        assert_eq!(out[0].data, vec![14]);
        assert_eq!(out[0].label, Label::SECRET);
    }

    #[test]
    fn declassify_strips_at_runtime() {
        let p = parse(
            "channel t public;
             fn main() authority secret {
                 let s = 99 label secret;
                 let d = declassify s;
                 output t, d;
             }",
        )
        .unwrap();
        let out = execute(&p, &[]).unwrap();
        assert_eq!(out[0].data, vec![99]);
        assert_eq!(out[0].label, Label::PUBLIC);
        assert!(dynamic_violations(&p, &out).is_empty());
    }

    #[test]
    fn moved_buffer_is_gone_at_runtime_too() {
        // Built directly (the static checker would reject this source).
        use crate::ir::ProgramBuilder;
        let p = ProgramBuilder::new()
            .channel("t", Label::PUBLIC)
            .main(vec![
                Stmt::Alloc { var: "a".into() },
                Stmt::Alloc { var: "b".into() },
                Stmt::Append {
                    obj: "b".into(),
                    src: "a".into(),
                },
                Stmt::Output {
                    channel: "t".into(),
                    arg: Expr::Var("a".into()),
                },
            ])
            .build()
            .unwrap();
        assert_eq!(
            execute(&p, &[]).unwrap_err(),
            ExecError::MovedValue { var: "a".into() }
        );
    }

    #[test]
    fn recursion_detected_at_runtime() {
        let p = parse("fn main() { call main(); }").unwrap();
        assert!(matches!(execute(&p, &[]), Err(ExecError::Recursion { .. })));
    }

    /// The anchor property: static Safe ⟹ no dynamic violation, on the
    /// paper's own examples with concrete inputs.
    #[test]
    fn static_safe_implies_dynamic_safe_on_store() {
        let p = crate::examples::secure_store_source();
        assert!(verify(&p).is_safe());
        for input in [0i64, 1, -3, 42] {
            let out = execute(&p, &[input]).unwrap();
            assert!(
                dynamic_violations(&p, &out).is_empty(),
                "input {input}: {out:?}"
            );
        }
        // And the buggy store leaks dynamically on the non-privileged path.
        let buggy = crate::examples::secure_store_buggy_source();
        let out = execute(&buggy, &[0]).unwrap();
        assert!(!dynamic_violations(&buggy, &out).is_empty());
    }

    proptest! {
        /// Soundness over generated programs: whenever the static verdict
        /// is Safe, no concrete run produces a dynamic violation.
        #[test]
        fn static_safe_implies_dynamic_safe(
            n in 1usize..40,
            seed in any::<i64>(),
            which in 0u8..3,
        ) {
            let p = match which {
                0 => crate::progen::straightline(n),
                1 => crate::progen::call_diamond((n % 6) + 1),
                _ => crate::progen::rebind_churn((n % 10) + 1),
            };
            if let Verdict::Safe = verify(&p) {
                let out = execute_with_budget(&p, &[seed], 500_000).unwrap();
                prop_assert!(dynamic_violations(&p, &out).is_empty());
            }
        }

        /// The executor is total on generated programs (no panics, only
        /// typed errors).
        #[test]
        fn executor_is_total(n in 1usize..30, a in any::<i64>(), b in any::<i64>()) {
            let p = crate::progen::call_diamond((n % 8) + 1);
            let _ = execute_with_budget(&p, &[a, b], 200_000);
        }
    }
}
