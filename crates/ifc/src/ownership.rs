//! The ownership (move) checker — the borrow-checker stand-in.
//!
//! In Rust mode, heap values are affine: passing a buffer to `append`
//! consumes it, and binding a heap variable to a new name moves it. This
//! pass rejects any later use of a moved variable, which is exactly how
//! the compiler kills the paper's line-17 exploit: "line 17 is rejected
//! by the compiler, as it attempts to access the nonsec variable, whose
//! ownership was transferred to the append method in line 14."
//!
//! The checker is conservative in the same places Rust is:
//!
//! - a variable moved in *either* branch of an `if` is unusable after it;
//! - a variable defined outside a loop must not be moved inside the body
//!   (the second iteration would observe it moved).

use crate::ir::{Expr, Function, Loc, Program, Stmt, Var, VarKind};
use std::collections::BTreeMap;
use std::fmt;

/// An ownership violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnershipError {
    /// The variable used after its value was moved away.
    pub var: Var,
    /// Where the offending use is.
    pub use_loc: Loc,
    /// Where the value was moved.
    pub moved_at: Loc,
}

impl fmt::Display for OwnershipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: use of {} after it was moved at {}",
            self.use_loc, self.var, self.moved_at
        )
    }
}

impl std::error::Error for OwnershipError {}

/// Per-variable ownership state.
#[derive(Debug, Clone, PartialEq)]
enum Own {
    /// Scalar: copyable, never moves.
    Scalar,
    /// Heap value, currently owned here.
    Live,
    /// Heap value moved away at the recorded location.
    Moved(Loc),
}

/// Checks every function of the program; returns all violations (empty =
/// ownership-clean).
///
/// The program must already validate (see [`Program::validate`]).
pub fn check_program(program: &Program) -> Vec<OwnershipError> {
    let mut errors = Vec::new();
    for f in &program.functions {
        check_function(f, &mut errors);
    }
    errors
}

fn check_function(f: &Function, errors: &mut Vec<OwnershipError>) {
    let mut env: BTreeMap<Var, Own> = BTreeMap::new();
    for (p, _) in &f.params {
        env.insert(p.clone(), Own::Scalar);
    }
    check_block(&f.body, &mut env, &f.name, errors);
    if let Some(ret) = &f.ret {
        let loc = Loc(format!("{}.ret", f.name));
        use_expr(ret, &env, &loc, errors);
    }
}

fn kind_of_expr(e: &Expr, env: &BTreeMap<Var, Own>) -> VarKind {
    match e {
        Expr::Const(_) | Expr::Bin(..) => VarKind::Scalar,
        Expr::VecLit(_) => VarKind::Heap,
        Expr::Var(v) => match env.get(v) {
            Some(Own::Scalar) => VarKind::Scalar,
            _ => VarKind::Heap,
        },
    }
}

/// Records a *read* (borrow/copy) of every variable in `e`.
fn use_expr(e: &Expr, env: &BTreeMap<Var, Own>, loc: &Loc, errors: &mut Vec<OwnershipError>) {
    for v in e.vars() {
        if let Some(Own::Moved(moved_at)) = env.get(v) {
            errors.push(OwnershipError {
                var: v.to_string(),
                use_loc: loc.clone(),
                moved_at: moved_at.clone(),
            });
        }
    }
}

/// Records a *move* of `v` if it is a live heap value; reading a moved
/// value is reported as an error.
fn move_var(v: &Var, env: &mut BTreeMap<Var, Own>, loc: &Loc, errors: &mut Vec<OwnershipError>) {
    match env.get(v) {
        Some(Own::Live) => {
            env.insert(v.clone(), Own::Moved(loc.clone()));
        }
        Some(Own::Moved(moved_at)) => {
            errors.push(OwnershipError {
                var: v.clone(),
                use_loc: loc.clone(),
                moved_at: moved_at.clone(),
            });
        }
        // Scalars copy; undefined vars were caught by validation.
        Some(Own::Scalar) | None => {}
    }
}

fn check_block(
    stmts: &[Stmt],
    env: &mut BTreeMap<Var, Own>,
    path: &str,
    errors: &mut Vec<OwnershipError>,
) {
    for (i, s) in stmts.iter().enumerate() {
        let loc = Loc(format!("{path}[{i}]"));
        match s {
            Stmt::Let { var, expr, .. } => {
                use_expr_shallow(expr, env, &loc, errors);
                // A heap RHS that is a bare variable moves it.
                if let Expr::Var(src) = expr {
                    if kind_of_expr(expr, env) == VarKind::Heap {
                        move_var(src, env, &loc, errors);
                    }
                }
                let own = match kind_of_expr(expr, env) {
                    VarKind::Scalar => Own::Scalar,
                    VarKind::Heap => Own::Live,
                };
                env.insert(var.clone(), own);
            }
            Stmt::Assign { var, expr } => {
                use_expr_shallow(expr, env, &loc, errors);
                if let Expr::Var(src) = expr {
                    if kind_of_expr(expr, env) == VarKind::Heap {
                        move_var(src, env, &loc, errors);
                    }
                }
                // Reassignment makes the target live again (the old value
                // is dropped).
                if matches!(env.get(var), Some(Own::Moved(_)) | Some(Own::Live)) {
                    env.insert(var.clone(), Own::Live);
                }
            }
            Stmt::Alloc { var } => {
                env.insert(var.clone(), Own::Live);
            }
            Stmt::Append { obj, src } => {
                // `obj` is borrowed mutably: must not be moved.
                if let Some(Own::Moved(moved_at)) = env.get(obj) {
                    errors.push(OwnershipError {
                        var: obj.clone(),
                        use_loc: loc.clone(),
                        moved_at: moved_at.clone(),
                    });
                }
                // `src` is consumed (the paper's `append` takes `mut v` by
                // value) — scalars copy, heap values move.
                move_var(src, env, &loc, errors);
            }
            Stmt::Read { dst, obj } => {
                if let Some(Own::Moved(moved_at)) = env.get(obj) {
                    errors.push(OwnershipError {
                        var: obj.clone(),
                        use_loc: loc.clone(),
                        moved_at: moved_at.clone(),
                    });
                }
                env.insert(dst.clone(), Own::Scalar);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                use_expr(cond, env, &loc, errors);
                let outer: Vec<Var> = env.keys().cloned().collect();
                let mut then_env = env.clone();
                check_block(then_branch, &mut then_env, &format!("{loc}.then"), errors);
                let mut else_env = env.clone();
                check_block(else_branch, &mut else_env, &format!("{loc}.else"), errors);
                // A variable moved on either path is moved afterwards.
                for var in outer {
                    let moved = [&then_env, &else_env]
                        .iter()
                        .find_map(|e| match e.get(&var) {
                            Some(Own::Moved(at)) => Some(at.clone()),
                            _ => None,
                        });
                    if let Some(at) = moved {
                        env.insert(var, Own::Moved(at));
                    }
                }
            }
            Stmt::While { cond, body } => {
                use_expr(cond, env, &loc, errors);
                let outer: Vec<Var> = env.keys().cloned().collect();
                let mut body_env = env.clone();
                check_block(body, &mut body_env, &format!("{loc}.body"), errors);
                // Moving an outer variable inside a loop body is an error
                // in its own right: iteration two would use a moved value.
                for var in outer {
                    if let Some(Own::Moved(at)) = body_env.get(&var) {
                        errors.push(OwnershipError {
                            var: var.clone(),
                            use_loc: Loc(format!("{loc}.body")),
                            moved_at: at.clone(),
                        });
                        env.insert(var, Own::Moved(at.clone()));
                    }
                }
            }
            Stmt::Declassify { dst, expr } => {
                use_expr(expr, env, &loc, errors);
                env.insert(dst.clone(), Own::Scalar);
            }
            Stmt::Output { arg, .. } => {
                // Output borrows its argument (like println!), so using a
                // moved variable here is the paper's line-16/17 error.
                use_expr(arg, env, &loc, errors);
            }
            Stmt::Call { dst, args, .. } => {
                for a in args {
                    use_expr(a, env, &loc, errors);
                }
                if let Some(d) = dst {
                    env.insert(d.clone(), Own::Scalar);
                }
            }
        }
    }
}

/// Like [`use_expr`] but skips a bare `Var` at the top level — those are
/// handled by the caller as moves (for heap) or copies (for scalars).
fn use_expr_shallow(
    e: &Expr,
    env: &BTreeMap<Var, Own>,
    loc: &Loc,
    errors: &mut Vec<OwnershipError>,
) {
    match e {
        Expr::Var(_) => { /* handled by the caller */ }
        other => use_expr(other, env, loc, errors),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, ProgramBuilder};
    use crate::label::Label;

    fn v(name: &str) -> Expr {
        Expr::Var(name.into())
    }

    fn check(body: Vec<Stmt>) -> Vec<OwnershipError> {
        let p = ProgramBuilder::new()
            .channel("term", Label::PUBLIC)
            .main(body)
            .build()
            .unwrap();
        check_program(&p)
    }

    #[test]
    fn scalars_copy_freely() {
        let errs = check(vec![
            Stmt::Let {
                var: "x".into(),
                expr: Expr::Const(1),
                label: None,
            },
            Stmt::Let {
                var: "y".into(),
                expr: v("x"),
                label: None,
            },
            Stmt::Output {
                channel: "term".into(),
                arg: v("x"),
            },
            Stmt::Output {
                channel: "term".into(),
                arg: v("y"),
            },
        ]);
        assert!(errs.is_empty(), "{errs:?}");
    }

    /// The paper's intro example: `take(v1)` then `println!(v1)` errors,
    /// `borrow(&v2)` then `println!(v2)` is fine. Our `append` plays the
    /// role of `take`, `output` the role of the borrowing `println!`.
    #[test]
    fn use_after_move_detected() {
        let errs = check(vec![
            Stmt::Alloc { var: "sink".into() },
            Stmt::Let {
                var: "v1".into(),
                expr: Expr::VecLit(vec![1, 2, 3]),
                label: None,
            },
            Stmt::Append {
                obj: "sink".into(),
                src: "v1".into(),
            }, // take(v1)
            Stmt::Output {
                channel: "term".into(),
                arg: v("v1"),
            }, // ERROR
        ]);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].var, "v1");
        assert_eq!(errs[0].use_loc.0, "main[3]");
        assert_eq!(errs[0].moved_at.0, "main[2]");
    }

    #[test]
    fn borrow_in_output_is_fine() {
        let errs = check(vec![
            Stmt::Let {
                var: "v2".into(),
                expr: Expr::VecLit(vec![1]),
                label: None,
            },
            Stmt::Output {
                channel: "term".into(),
                arg: v("v2"),
            },
            Stmt::Output {
                channel: "term".into(),
                arg: v("v2"),
            },
        ]);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn rebind_moves_heap_value() {
        let errs = check(vec![
            Stmt::Let {
                var: "a".into(),
                expr: Expr::VecLit(vec![1]),
                label: None,
            },
            Stmt::Let {
                var: "b".into(),
                expr: v("a"),
                label: None,
            },
            Stmt::Output {
                channel: "term".into(),
                arg: v("a"),
            },
        ]);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].var, "a");
    }

    #[test]
    fn double_move_detected() {
        let errs = check(vec![
            Stmt::Alloc { var: "s1".into() },
            Stmt::Alloc { var: "s2".into() },
            Stmt::Let {
                var: "x".into(),
                expr: Expr::VecLit(vec![1]),
                label: None,
            },
            Stmt::Append {
                obj: "s1".into(),
                src: "x".into(),
            },
            Stmt::Append {
                obj: "s2".into(),
                src: "x".into(),
            },
        ]);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].use_loc.0, "main[4]");
    }

    #[test]
    fn move_in_one_branch_poisons_after() {
        let errs = check(vec![
            Stmt::Alloc { var: "sink".into() },
            Stmt::Let {
                var: "x".into(),
                expr: Expr::VecLit(vec![1]),
                label: None,
            },
            Stmt::Let {
                var: "c".into(),
                expr: Expr::Const(1),
                label: None,
            },
            Stmt::If {
                cond: v("c"),
                then_branch: vec![Stmt::Append {
                    obj: "sink".into(),
                    src: "x".into(),
                }],
                else_branch: vec![],
            },
            Stmt::Output {
                channel: "term".into(),
                arg: v("x"),
            },
        ]);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].var, "x");
        assert_eq!(errs[0].use_loc.0, "main[4]");
    }

    #[test]
    fn move_in_loop_body_of_outer_var_detected() {
        let errs = check(vec![
            Stmt::Alloc { var: "sink".into() },
            Stmt::Let {
                var: "x".into(),
                expr: Expr::VecLit(vec![1]),
                label: None,
            },
            Stmt::Let {
                var: "c".into(),
                expr: Expr::Const(1),
                label: None,
            },
            Stmt::While {
                cond: v("c"),
                body: vec![Stmt::Append {
                    obj: "sink".into(),
                    src: "x".into(),
                }],
            },
        ]);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert_eq!(errs[0].var, "x");
    }

    #[test]
    fn loop_local_moves_are_fine() {
        let errs = check(vec![
            Stmt::Alloc { var: "sink".into() },
            Stmt::Let {
                var: "c".into(),
                expr: Expr::Const(1),
                label: None,
            },
            Stmt::While {
                cond: v("c"),
                body: vec![
                    Stmt::Let {
                        var: "tmp".into(),
                        expr: Expr::VecLit(vec![1]),
                        label: None,
                    },
                    Stmt::Append {
                        obj: "sink".into(),
                        src: "tmp".into(),
                    },
                ],
            },
        ]);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn reassignment_revives_variable() {
        let errs = check(vec![
            Stmt::Alloc { var: "sink".into() },
            Stmt::Let {
                var: "x".into(),
                expr: Expr::VecLit(vec![1]),
                label: None,
            },
            Stmt::Append {
                obj: "sink".into(),
                src: "x".into(),
            },
            Stmt::Assign {
                var: "x".into(),
                expr: Expr::VecLit(vec![2]),
            },
            Stmt::Output {
                channel: "term".into(),
                arg: v("x"),
            },
        ]);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn append_into_moved_buffer_detected() {
        let errs = check(vec![
            Stmt::Alloc { var: "a".into() },
            Stmt::Alloc { var: "b".into() },
            Stmt::Let {
                var: "x".into(),
                expr: v("a"),
                label: None,
            }, // moves a
            Stmt::Let {
                var: "y".into(),
                expr: Expr::VecLit(vec![1]),
                label: None,
            },
            Stmt::Append {
                obj: "a".into(),
                src: "y".into(),
            }, // ERROR: a moved
        ]);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].var, "a");
        // b and x untouched
        let _ = errs;
    }

    #[test]
    fn scalar_args_never_move() {
        let errs = check(vec![
            Stmt::Let {
                var: "x".into(),
                expr: Expr::Const(1),
                label: None,
            },
            Stmt::Let {
                var: "y".into(),
                expr: Expr::bin(BinOp::Add, v("x"), v("x")),
                label: None,
            },
            Stmt::Output {
                channel: "term".into(),
                arg: v("x"),
            },
            Stmt::Output {
                channel: "term".into(),
                arg: v("y"),
            },
        ]);
        assert!(errs.is_empty());
    }

    #[test]
    fn error_display() {
        let e = OwnershipError {
            var: "nonsec".into(),
            use_loc: Loc("main[8]".into()),
            moved_at: Loc("main[5]".into()),
        };
        assert_eq!(
            e.to_string(),
            "main[8]: use of nonsec after it was moved at main[5]"
        );
    }
}
