//! Randomized differential testing of the IFC toolchain.
//!
//! A proptest strategy generates *well-formed* programs (scoped
//! variables, declared channels, stratified calls so the call graph is
//! acyclic), then checks the cross-cutting laws:
//!
//! 1. generated programs validate;
//! 2. the pretty-printer's output re-parses to an analysis-equivalent
//!    program (print is a fixpoint of parse∘print);
//! 3. monolithic interpretation and compositional summaries agree on
//!    ownership-clean scalar programs;
//! 4. static *Safe* implies no dynamic violation on concrete runs
//!    (dynamic taint under-approximates the static abstraction);
//! 5. every analysis is total — no panics on any generated input.

use proptest::prelude::*;
use rbs_ifc::exec;
use rbs_ifc::interp;
use rbs_ifc::ir::{BinOp, Expr, Function, Program, Stmt};
use rbs_ifc::label::Label;
use rbs_ifc::parse;
use rbs_ifc::pretty::print_program;
use rbs_ifc::summary;
use rbs_ifc::verify::{verify, Verdict};

/// Scalar-only statement generator over a fixed variable universe
/// (`v0..v5` pre-declared), with channels `pub_ch` (public) and
/// `sec_ch` (secret) and callee functions `g0`/`g1` available.
fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let var = (0usize..6).prop_map(|i| format!("v{i}"));
    let expr = arb_expr();
    let leaf = prop_oneof![
        (var.clone(), expr.clone()).prop_map(|(var, expr)| Stmt::Assign { var, expr }),
        (expr.clone(), prop_oneof![Just("pub_ch"), Just("sec_ch")]).prop_map(|(arg, ch)| {
            Stmt::Output {
                channel: ch.to_string(),
                arg,
            }
        }),
        (
            var.clone(),
            prop_oneof![Just("g0"), Just("g1")],
            expr.clone()
        )
            .prop_map(|(_, func, arg)| Stmt::Call {
                dst: None,
                func: func.to_string(),
                args: vec![arg],
            },),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let nested = prop_oneof![
        (
            arb_expr(),
            proptest::collection::vec(arb_stmt(depth - 1), 0..3),
            proptest::collection::vec(arb_stmt(depth - 1), 0..3),
        )
            .prop_map(|(cond, then_branch, else_branch)| Stmt::If {
                cond,
                then_branch,
                else_branch
            }),
        leaf.clone(),
    ];
    prop_oneof![3 => leaf, 1 => nested].boxed()
}

fn arb_expr() -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(Expr::Const),
        (0usize..6).prop_map(|i| Expr::Var(format!("v{i}"))),
    ];
    leaf.prop_recursive(2, 12, 2, |inner| {
        (
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::Eq),
                Just(BinOp::Lt)
            ],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, l, r)| Expr::bin(op, l, r))
    })
    .boxed()
}

/// A complete generated program: pre-declared locals (some secret),
/// two callees, and a generated body.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(arb_stmt(2), 1..10),
        proptest::collection::vec(any::<bool>(), 6),
    )
        .prop_map(|(generated, secret_mask)| {
            let mut body = Vec::new();
            for (i, secret) in secret_mask.iter().enumerate() {
                body.push(Stmt::Let {
                    var: format!("v{i}"),
                    expr: Expr::Const(i as i64),
                    label: secret.then_some(Label::SECRET),
                });
            }
            body.extend(generated);

            let g0 = Function {
                name: "g0".into(),
                params: vec![("x".into(), None)],
                authority: Label::PUBLIC,
                body: vec![Stmt::Output {
                    channel: "sec_ch".into(),
                    arg: Expr::Var("x".into()),
                }],
                ret: Some(Expr::Var("x".into())),
            };
            let g1 = Function {
                name: "g1".into(),
                params: vec![("x".into(), None)],
                authority: Label::PUBLIC,
                body: vec![],
                ret: Some(Expr::bin(BinOp::Add, Expr::Var("x".into()), Expr::Const(1))),
            };
            let main = Function {
                name: "main".into(),
                params: vec![],
                authority: Label::PUBLIC,
                body,
                ret: None,
            };
            let mut p = Program::default();
            p.channels.insert("pub_ch".into(), Label::PUBLIC);
            p.channels.insert("sec_ch".into(), Label::SECRET);
            p.functions.push(g0);
            p.functions.push(g1);
            p.functions.push(main);
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Law 1: the generator only produces valid programs.
    #[test]
    fn generated_programs_validate(p in arb_program()) {
        prop_assert!(p.validate().is_ok());
    }

    /// Law 2: print∘parse∘print is print, and the verdict is stable
    /// across the round trip.
    #[test]
    fn pretty_roundtrip(p in arb_program()) {
        let text = print_program(&p);
        let reparsed = parse::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
        prop_assert_eq!(print_program(&reparsed), text.clone());
        prop_assert_eq!(
            verify(&p).is_safe(),
            verify(&reparsed).is_safe(),
            "verdict changed across round trip:\n{}", text
        );
    }

    /// Law 3: monolithic and compositional analyses agree exactly on
    /// scalar programs.
    #[test]
    fn monolithic_equals_compositional(p in arb_program()) {
        let mono = interp::analyze(&p).expect("acyclic by construction");
        let comp = summary::analyze_with_summaries(&p).expect("acyclic by construction");
        prop_assert_eq!(mono.len(), comp.len(), "{:?} vs {:?}", mono, comp);
        for (m, c) in mono.iter().zip(&comp) {
            prop_assert_eq!(&m.channel, &c.channel);
            prop_assert_eq!(m.label, c.label);
        }
    }

    /// Law 4: static Safe ⟹ dynamically clean, for any generated program
    /// and any concrete seed.
    #[test]
    fn static_safe_implies_dynamic_safe(p in arb_program(), seed in any::<i64>()) {
        if let Verdict::Safe = verify(&p) {
            let emissions = exec::execute_with_budget(&p, &[seed], 300_000)
                .expect("generated programs are loop-free and non-recursive");
            let dyn_violations = exec::dynamic_violations(&p, &emissions);
            prop_assert!(
                dyn_violations.is_empty(),
                "static Safe but dynamic leak: {:?}\n{}",
                dyn_violations,
                print_program(&p)
            );
        }
    }

    /// Law 5: totality of every pass (parse of printed text included).
    #[test]
    fn all_passes_are_total(p in arb_program(), seed in any::<i64>()) {
        let _ = verify(&p);
        let _ = rbs_ifc::alias::analyze_alias(&p);
        let _ = rbs_ifc::alias::analyze_naive(&p);
        let _ = rbs_ifc::ownership::check_program(&p);
        let _ = exec::execute_with_budget(&p, &[seed], 300_000);
    }
}
