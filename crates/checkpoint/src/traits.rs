//! The [`Checkpointable`] trait and its inductive impls.
//!
//! The paper's compiler plugin "inductively generates an implementation
//! of this trait for types comprised of scalar values and references to
//! other checkpointable types". The impls here are that induction,
//! hand-rolled once for the standard building blocks: scalars, strings,
//! tuples, arrays, `Box`, `Option`, `Vec`, `VecDeque`, maps, `RefCell`
//! and `Mutex`. User structs get theirs from
//! [`checkpointable!`](crate::checkpointable), and the aliased cases live
//! in [`crate::ckrc`]/[`crate::ckarc`].

use crate::ctx::{CheckpointCtx, RestoreCtx};
use crate::snapshot::{mismatch, Snapshot, SnapshotError};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// A type whose values can be checkpointed to a [`Snapshot`] and
/// restored from one.
///
/// Unique ownership makes the default story trivial: traverse fields,
/// recurse. Only aliased nodes (`CkRc`/`CkArc`) interact with the
/// context's dedup machinery.
pub trait Checkpointable: Sized {
    /// Copies this value into a snapshot.
    fn checkpoint(&self, ctx: &mut CheckpointCtx) -> Snapshot;

    /// Reconstructs a value from `snap`.
    fn restore(snap: &Snapshot, ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Checkpointable for $t {
            fn checkpoint(&self, _ctx: &mut CheckpointCtx) -> Snapshot {
                Snapshot::UInt(u64::from(*self))
            }
            fn restore(snap: &Snapshot, _ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
                match snap {
                    Snapshot::UInt(v) => <$t>::try_from(*v).map_err(|_| {
                        SnapshotError::TypeMismatch { expected: stringify!($t), found: "uint out of range" }
                    }),
                    other => Err(mismatch(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Checkpointable for $t {
            fn checkpoint(&self, _ctx: &mut CheckpointCtx) -> Snapshot {
                Snapshot::Int(i64::from(*self))
            }
            fn restore(snap: &Snapshot, _ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
                match snap {
                    Snapshot::Int(v) => <$t>::try_from(*v).map_err(|_| {
                        SnapshotError::TypeMismatch { expected: stringify!($t), found: "int out of range" }
                    }),
                    other => Err(mismatch(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64);

impl Checkpointable for usize {
    fn checkpoint(&self, _ctx: &mut CheckpointCtx) -> Snapshot {
        Snapshot::UInt(*self as u64)
    }

    fn restore(snap: &Snapshot, _ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        match snap {
            Snapshot::UInt(v) => usize::try_from(*v).map_err(|_| SnapshotError::TypeMismatch {
                expected: "usize",
                found: "uint out of range",
            }),
            other => Err(mismatch("usize", other)),
        }
    }
}

impl Checkpointable for bool {
    fn checkpoint(&self, _ctx: &mut CheckpointCtx) -> Snapshot {
        Snapshot::Bool(*self)
    }

    fn restore(snap: &Snapshot, _ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        match snap {
            Snapshot::Bool(b) => Ok(*b),
            other => Err(mismatch("bool", other)),
        }
    }
}

impl Checkpointable for char {
    fn checkpoint(&self, _ctx: &mut CheckpointCtx) -> Snapshot {
        Snapshot::Char(*self)
    }

    fn restore(snap: &Snapshot, _ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        match snap {
            Snapshot::Char(c) => Ok(*c),
            other => Err(mismatch("char", other)),
        }
    }
}

impl Checkpointable for f64 {
    fn checkpoint(&self, _ctx: &mut CheckpointCtx) -> Snapshot {
        Snapshot::Float(*self)
    }

    fn restore(snap: &Snapshot, _ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        match snap {
            Snapshot::Float(v) => Ok(*v),
            other => Err(mismatch("f64", other)),
        }
    }
}

impl Checkpointable for f32 {
    fn checkpoint(&self, _ctx: &mut CheckpointCtx) -> Snapshot {
        Snapshot::Float(f64::from(*self))
    }

    fn restore(snap: &Snapshot, _ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        match snap {
            Snapshot::Float(v) => Ok(*v as f32),
            other => Err(mismatch("f32", other)),
        }
    }
}

impl Checkpointable for () {
    fn checkpoint(&self, _ctx: &mut CheckpointCtx) -> Snapshot {
        Snapshot::Unit
    }

    fn restore(snap: &Snapshot, _ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        match snap {
            Snapshot::Unit => Ok(()),
            other => Err(mismatch("unit", other)),
        }
    }
}

impl Checkpointable for String {
    fn checkpoint(&self, _ctx: &mut CheckpointCtx) -> Snapshot {
        Snapshot::Str(self.clone())
    }

    fn restore(snap: &Snapshot, _ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        match snap {
            Snapshot::Str(s) => Ok(s.clone()),
            other => Err(mismatch("string", other)),
        }
    }
}

impl Checkpointable for Vec<u8> {
    fn checkpoint(&self, _ctx: &mut CheckpointCtx) -> Snapshot {
        Snapshot::Bytes(self.clone())
    }

    fn restore(snap: &Snapshot, _ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        match snap {
            Snapshot::Bytes(b) => Ok(b.clone()),
            other => Err(mismatch("bytes", other)),
        }
    }
}

/// Non-`u8` vectors (the `u8` case is specialized to [`Snapshot::Bytes`]
/// above; overlapping impls are avoided by this macro listing types, and
/// a generic fallback via a helper for arbitrary element types).
macro_rules! impl_vec_like {
    ($($elem:ty),*) => {$(
        impl Checkpointable for Vec<$elem> {
            fn checkpoint(&self, ctx: &mut CheckpointCtx) -> Snapshot {
                Snapshot::Seq(self.iter().map(|e| e.checkpoint(ctx)).collect())
            }
            fn restore(snap: &Snapshot, ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
                match snap {
                    Snapshot::Seq(items) => {
                        items.iter().map(|s| Checkpointable::restore(s, ctx)).collect()
                    }
                    other => Err(mismatch("vec", other)),
                }
            }
        }
    )*};
}

// Rust has no specialization on stable, so `Vec<T>` cannot be generic
// while `Vec<u8>` is special-cased. [`VecOf`] below is the generic
// escape hatch; these are the common concrete instantiations.
impl_vec_like!(u16, u32, u64, i8, i16, i32, i64, usize, bool, f32, f64, String);

/// A generic vector wrapper for element types not covered by the
/// concrete `Vec<T>` impls (e.g. vectors of user structs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VecOf<T>(pub Vec<T>);

impl<T: Checkpointable> Checkpointable for VecOf<T> {
    fn checkpoint(&self, ctx: &mut CheckpointCtx) -> Snapshot {
        Snapshot::Seq(self.0.iter().map(|e| e.checkpoint(ctx)).collect())
    }

    fn restore(snap: &Snapshot, ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        match snap {
            Snapshot::Seq(items) => Ok(VecOf(
                items
                    .iter()
                    .map(|s| T::restore(s, ctx))
                    .collect::<Result<_, _>>()?,
            )),
            other => Err(mismatch("vec", other)),
        }
    }
}

impl<T: Checkpointable> Checkpointable for VecDeque<T> {
    fn checkpoint(&self, ctx: &mut CheckpointCtx) -> Snapshot {
        Snapshot::Seq(self.iter().map(|e| e.checkpoint(ctx)).collect())
    }

    fn restore(snap: &Snapshot, ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        match snap {
            Snapshot::Seq(items) => items.iter().map(|s| T::restore(s, ctx)).collect(),
            other => Err(mismatch("deque", other)),
        }
    }
}

impl<T: Checkpointable> Checkpointable for Option<T> {
    fn checkpoint(&self, ctx: &mut CheckpointCtx) -> Snapshot {
        Snapshot::Opt(self.as_ref().map(|v| Box::new(v.checkpoint(ctx))))
    }

    fn restore(snap: &Snapshot, ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        match snap {
            Snapshot::Opt(None) => Ok(None),
            Snapshot::Opt(Some(inner)) => Ok(Some(T::restore(inner, ctx)?)),
            other => Err(mismatch("option", other)),
        }
    }
}

impl<T: Checkpointable> Checkpointable for Box<T> {
    fn checkpoint(&self, ctx: &mut CheckpointCtx) -> Snapshot {
        // A Box is a unique owner: traverse straight through, no dedup
        // machinery — the sentence §5 is built on.
        (**self).checkpoint(ctx)
    }

    fn restore(snap: &Snapshot, ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        Ok(Box::new(T::restore(snap, ctx)?))
    }
}

impl<A: Checkpointable, B: Checkpointable> Checkpointable for (A, B) {
    fn checkpoint(&self, ctx: &mut CheckpointCtx) -> Snapshot {
        Snapshot::Seq(vec![self.0.checkpoint(ctx), self.1.checkpoint(ctx)])
    }

    fn restore(snap: &Snapshot, ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        match snap {
            Snapshot::Seq(items) if items.len() == 2 => {
                Ok((A::restore(&items[0], ctx)?, B::restore(&items[1], ctx)?))
            }
            Snapshot::Seq(items) => Err(SnapshotError::WrongLength {
                expected: 2,
                got: items.len(),
            }),
            other => Err(mismatch("pair", other)),
        }
    }
}

impl<A: Checkpointable, B: Checkpointable, C: Checkpointable> Checkpointable for (A, B, C) {
    fn checkpoint(&self, ctx: &mut CheckpointCtx) -> Snapshot {
        Snapshot::Seq(vec![
            self.0.checkpoint(ctx),
            self.1.checkpoint(ctx),
            self.2.checkpoint(ctx),
        ])
    }

    fn restore(snap: &Snapshot, ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        match snap {
            Snapshot::Seq(items) if items.len() == 3 => Ok((
                A::restore(&items[0], ctx)?,
                B::restore(&items[1], ctx)?,
                C::restore(&items[2], ctx)?,
            )),
            Snapshot::Seq(items) => Err(SnapshotError::WrongLength {
                expected: 3,
                got: items.len(),
            }),
            other => Err(mismatch("triple", other)),
        }
    }
}

impl<T: Checkpointable, const N: usize> Checkpointable for [T; N] {
    fn checkpoint(&self, ctx: &mut CheckpointCtx) -> Snapshot {
        Snapshot::Seq(self.iter().map(|e| e.checkpoint(ctx)).collect())
    }

    fn restore(snap: &Snapshot, ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        match snap {
            Snapshot::Seq(items) if items.len() == N => {
                let v: Vec<T> = items
                    .iter()
                    .map(|s| T::restore(s, ctx))
                    .collect::<Result<_, _>>()?;
                v.try_into().map_err(|_| SnapshotError::WrongLength {
                    expected: N,
                    got: usize::MAX,
                })
            }
            Snapshot::Seq(items) => Err(SnapshotError::WrongLength {
                expected: N,
                got: items.len(),
            }),
            other => Err(mismatch("array", other)),
        }
    }
}

impl<K, V> Checkpointable for BTreeMap<K, V>
where
    K: Checkpointable + Ord,
    V: Checkpointable,
{
    fn checkpoint(&self, ctx: &mut CheckpointCtx) -> Snapshot {
        Snapshot::Map(
            self.iter()
                .map(|(k, v)| (k.checkpoint(ctx), v.checkpoint(ctx)))
                .collect(),
        )
    }

    fn restore(snap: &Snapshot, ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        match snap {
            Snapshot::Map(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::restore(k, ctx)?, V::restore(v, ctx)?)))
                .collect(),
            other => Err(mismatch("map", other)),
        }
    }
}

impl<K, V> Checkpointable for HashMap<K, V>
where
    K: Checkpointable + Eq + std::hash::Hash,
    V: Checkpointable,
{
    fn checkpoint(&self, ctx: &mut CheckpointCtx) -> Snapshot {
        Snapshot::Map(
            self.iter()
                .map(|(k, v)| (k.checkpoint(ctx), v.checkpoint(ctx)))
                .collect(),
        )
    }

    fn restore(snap: &Snapshot, ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        match snap {
            Snapshot::Map(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::restore(k, ctx)?, V::restore(v, ctx)?)))
                .collect(),
            other => Err(mismatch("map", other)),
        }
    }
}

impl<T: Checkpointable> Checkpointable for std::cell::RefCell<T> {
    fn checkpoint(&self, ctx: &mut CheckpointCtx) -> Snapshot {
        self.borrow().checkpoint(ctx)
    }

    fn restore(snap: &Snapshot, ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        Ok(std::cell::RefCell::new(T::restore(snap, ctx)?))
    }
}

/// "When write aliasing is essential ... single ownership can be
/// enforced dynamically by additionally wrapping the object with the
/// Mutex type" (§2) — checkpointing locks the mutex, giving a consistent
/// per-object snapshot even while other threads use the structure.
impl<T: Checkpointable> Checkpointable for parking_lot::Mutex<T> {
    fn checkpoint(&self, ctx: &mut CheckpointCtx) -> Snapshot {
        self.lock().checkpoint(ctx)
    }

    fn restore(snap: &Snapshot, ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        Ok(parking_lot::Mutex::new(T::restore(snap, ctx)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::{checkpoint, restore};

    fn roundtrip<T: Checkpointable + PartialEq + std::fmt::Debug>(v: T) {
        let cp = checkpoint(&v);
        let back: T = restore(&cp).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-5i32);
        roundtrip(i64::MIN);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip('λ');
        roundtrip(1.5f64);
        roundtrip(());
    }

    #[test]
    fn f32_roundtrips_through_f64() {
        roundtrip(1.25f32);
    }

    #[test]
    fn strings_and_bytes() {
        roundtrip(String::from("firewall"));
        roundtrip(vec![1u8, 2, 3]);
        // Vec<u8> takes the compact Bytes form.
        let cp = checkpoint(&vec![1u8, 2]);
        assert_eq!(cp.root, Snapshot::Bytes(vec![1, 2]));
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(vec![String::from("a"), String::from("b")]);
        roundtrip(VecDeque::from([1i64, 2, 3]));
        roundtrip(Some(7u32));
        roundtrip(Option::<u32>::None);
        roundtrip(Box::new(5u8));
        roundtrip((1u8, String::from("x")));
        roundtrip((1u8, 2u16, 3u32));
        roundtrip([1u64, 2, 3]);
        roundtrip(BTreeMap::from([(1u32, String::from("one"))]));
        roundtrip(HashMap::from([(String::from("k"), 9i64)]));
        roundtrip(VecOf(vec![(1u8, 2u8), (3, 4)]));
    }

    #[test]
    fn nested_structures() {
        roundtrip(VecOf(vec![vec![1u32], vec![2, 3]]));
        roundtrip(Some(Box::new((1u8, vec![2u32, 3]))));
    }

    #[test]
    fn out_of_range_uint_rejected() {
        let cp = checkpoint(&300u64);
        assert!(matches!(
            restore::<u8>(&cp),
            Err(SnapshotError::TypeMismatch { expected: "u8", .. })
        ));
    }

    #[test]
    fn out_of_range_int_rejected() {
        let cp = checkpoint(&-200i64);
        assert!(restore::<i8>(&cp).is_err());
    }

    #[test]
    fn wrong_arity_tuple_rejected() {
        let cp = checkpoint(&(1u8, 2u8, 3u8));
        assert_eq!(
            restore::<(u8, u8)>(&cp).unwrap_err(),
            SnapshotError::WrongLength {
                expected: 2,
                got: 3
            }
        );
    }

    #[test]
    fn wrong_array_length_rejected() {
        let cp = checkpoint(&[1u32, 2]);
        assert_eq!(
            restore::<[u32; 3]>(&cp).unwrap_err(),
            SnapshotError::WrongLength {
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    fn refcell_and_mutex() {
        let cell = std::cell::RefCell::new(5u32);
        let cp = checkpoint(&cell);
        let back: std::cell::RefCell<u32> = restore(&cp).unwrap();
        assert_eq!(*back.borrow(), 5);

        let m = parking_lot::Mutex::new(String::from("locked"));
        let cp = checkpoint(&m);
        let back: parking_lot::Mutex<String> = restore(&cp).unwrap();
        assert_eq!(*back.lock(), "locked");
    }

    #[test]
    fn mutation_after_checkpoint_does_not_affect_snapshot() {
        let mut v = vec![1u32, 2, 3];
        let cp = checkpoint(&v);
        v.push(4);
        let back: Vec<u32> = restore(&cp).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }
}
