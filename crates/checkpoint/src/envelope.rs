//! Sealed snapshot envelopes: integrity metadata around the wire format.
//!
//! The codec ([`crate::codec`]) turns checkpoints into bytes; an
//! *envelope* makes those bytes safe to trust after a crash. Each
//! envelope carries a monotonic epoch, the logical tick and item count
//! of the state it holds, a declared payload length, and an FNV-1a
//! checksum footer over everything before it. Verification happens
//! before a single payload byte is parsed, so a truncated or corrupted
//! snapshot is *detected* — surfaced as a typed [`RestoreError`] — and
//! never restored into a domain as garbage.
//!
//! Envelopes come in two kinds: `Full` (a complete checkpoint) and
//! `Delta` (an incremental [`Delta`](crate::diff::Delta) against an
//! earlier full envelope, identified by `base_epoch`). The
//! [`store`](crate::store) pairs them into restorable units.

use crate::codec::{self, CodecError};
use crate::ctx::Checkpoint;
use crate::diff::{Delta, DiffError};
use crate::snapshot::SnapshotError;
use std::fmt;

const MAGIC: &[u8; 4] = b"RBSE";
/// Envelope wire-format version. Bumped to 2 when the header grew the
/// state-schema varint (live-upgrade support); an envelope sealed by a
/// different format version is rejected with
/// [`RestoreError::VersionMismatch`] — found and expected versions
/// attached — before any metadata is parsed.
pub const VERSION: u8 = 2;
const KIND_FULL: u8 = 0;
const KIND_DELTA: u8 = 1;
/// Bytes of the checksum footer.
const FOOTER_LEN: usize = 8;
/// Magic + version + kind: the fixed-width part of the header.
const FIXED_HEADER_LEN: usize = 6;

/// Why a snapshot could not be restored.
///
/// Every failure mode of the verify → decode → apply chain is a typed
/// variant; none of them panic. The supervisor's fallback chain matches
/// on nothing finer than "this snapshot is unusable", but reports carry
/// [`RestoreError::kind`] so corrupted-snapshot events are attributable.
#[derive(Debug, Clone, PartialEq)]
pub enum RestoreError {
    /// Too short to even hold a header and footer.
    Truncated,
    /// Bad magic or unknown envelope kind.
    BadHeader,
    /// The envelope was sealed by a different wire-format version. Kept
    /// distinct from [`RestoreError::BadHeader`] so an upgrade path can
    /// tell "foreign format" from "garbage": the envelope is intact
    /// (its checksum verified), just written by other code.
    VersionMismatch {
        /// Version byte the envelope carries.
        found: u8,
        /// Version this build understands ([`VERSION`]).
        expected: u8,
    },
    /// The declared payload length does not match the bytes present.
    LengthMismatch {
        /// Length the header declared.
        declared: usize,
        /// Payload bytes actually present.
        actual: usize,
    },
    /// The footer checksum does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the footer.
        stored: u64,
        /// Checksum computed over the content.
        computed: u64,
    },
    /// The payload failed to decode (possible only when the envelope was
    /// sealed around bad bytes — a flipped bit is caught by the checksum
    /// first).
    Codec(CodecError),
    /// The decoded checkpoint failed to restore into a value.
    Snapshot(SnapshotError),
    /// The delta did not fit its base checkpoint.
    Diff(DiffError),
    /// A delta envelope was paired with a full envelope of a different
    /// epoch than the one it was diffed against.
    EpochMismatch {
        /// Base epoch the delta requires.
        required: u64,
        /// Epoch of the full envelope it was applied to.
        found: u64,
    },
    /// No snapshot exists to restore from (empty store).
    MissingSnapshot,
}

impl RestoreError {
    /// Stable short name (used in reports and JSON).
    pub fn kind(&self) -> &'static str {
        match self {
            RestoreError::Truncated => "truncated",
            RestoreError::BadHeader => "bad-header",
            RestoreError::VersionMismatch { .. } => "version-mismatch",
            RestoreError::LengthMismatch { .. } => "length-mismatch",
            RestoreError::ChecksumMismatch { .. } => "checksum-mismatch",
            RestoreError::Codec(_) => "codec",
            RestoreError::Snapshot(_) => "snapshot",
            RestoreError::Diff(_) => "diff",
            RestoreError::EpochMismatch { .. } => "epoch-mismatch",
            RestoreError::MissingSnapshot => "missing-snapshot",
        }
    }
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Truncated => write!(f, "envelope truncated"),
            RestoreError::BadHeader => write!(f, "bad envelope magic or kind"),
            RestoreError::VersionMismatch { found, expected } => {
                write!(
                    f,
                    "envelope format version {found}, this build reads {expected}"
                )
            }
            RestoreError::LengthMismatch { declared, actual } => {
                write!(f, "payload length {declared} declared, {actual} present")
            }
            RestoreError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum {stored:#018x} stored, {computed:#018x} computed"
                )
            }
            RestoreError::Codec(e) => write!(f, "payload decode: {e}"),
            RestoreError::Snapshot(e) => write!(f, "restore: {e}"),
            RestoreError::Diff(e) => write!(f, "delta apply: {e}"),
            RestoreError::EpochMismatch { required, found } => {
                write!(f, "delta needs base epoch {required}, found {found}")
            }
            RestoreError::MissingSnapshot => write!(f, "no snapshot to restore"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<CodecError> for RestoreError {
    fn from(e: CodecError) -> Self {
        RestoreError::Codec(e)
    }
}

impl From<SnapshotError> for RestoreError {
    fn from(e: SnapshotError) -> Self {
        RestoreError::Snapshot(e)
    }
}

impl From<DiffError> for RestoreError {
    fn from(e: DiffError) -> Self {
        RestoreError::Diff(e)
    }
}

/// Metadata describing one sealed envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Monotonic sequence number assigned by the store.
    pub epoch: u64,
    /// Epoch of the full envelope this one builds on; equals `epoch`
    /// for full envelopes.
    pub base_epoch: u64,
    /// Logical supervision tick the state was captured on.
    pub tick: u64,
    /// State items (rules, flows) the snapshot holds, as reported by the
    /// owner — the unit of state-loss accounting.
    pub items: u64,
    /// State-schema version of the pipeline that exported this snapshot
    /// (the owner's declared layout generation, not the envelope format
    /// version). Restore paths compare it against the target pipeline's
    /// schema and route mismatches through a
    /// [`StateMigrator`](crate::migrate::StateMigrator) instead of
    /// restoring a layout the new code no longer understands.
    pub schema: u32,
}

impl SnapshotMeta {
    /// True when this envelope is an incremental delta.
    pub fn is_delta(&self) -> bool {
        self.base_epoch != self.epoch
    }
}

/// A verified envelope's payload.
#[derive(Debug, Clone)]
pub enum Payload {
    /// A complete checkpoint.
    Full(Checkpoint),
    /// An incremental delta against the `base_epoch` full envelope.
    Delta(Delta),
}

/// 64-bit FNV-1a. Not cryptographic — the threat model is bit rot and
/// torn writes, not an adversary — but any single-bit flip anywhere in
/// the content provably changes the hash (xor then multiply-by-odd-prime
/// are both bijections of the running state).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn seal(kind: u8, meta: SnapshotMeta, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 48);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(kind);
    codec::write_varint(&mut out, meta.epoch);
    codec::write_varint(&mut out, meta.base_epoch);
    codec::write_varint(&mut out, meta.tick);
    codec::write_varint(&mut out, meta.items);
    codec::write_varint(&mut out, u64::from(meta.schema));
    codec::write_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Seals a full checkpoint into an envelope. Serialization runs through
/// [`codec::encode`], so the `CheckpointEncode` chaos site fires here.
pub fn seal_full(meta: SnapshotMeta, cp: &Checkpoint) -> Vec<u8> {
    seal(KIND_FULL, meta, &codec::encode(cp))
}

/// Seals an incremental delta into an envelope. Serialization runs
/// through [`codec::encode_delta`], so the `CheckpointEncode` chaos site
/// fires here too.
pub fn seal_delta(meta: SnapshotMeta, delta: &Delta) -> Vec<u8> {
    seal(KIND_DELTA, meta, &codec::encode_delta(delta))
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, RestoreError> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let b = *bytes.get(*pos).ok_or(RestoreError::Truncated)?;
        *pos += 1;
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(RestoreError::Codec(CodecError::VarintOverflow))
}

/// Verifies and opens one envelope: checksum first, then header, then
/// payload decode. Total — arbitrary bytes produce an error, never a
/// panic and never a wrong value.
pub fn open(bytes: &[u8]) -> Result<(SnapshotMeta, Payload), RestoreError> {
    if bytes.len() < FIXED_HEADER_LEN + FOOTER_LEN {
        return Err(RestoreError::Truncated);
    }
    let (content, footer) = bytes.split_at(bytes.len() - FOOTER_LEN);
    let stored = u64::from_le_bytes(footer.try_into().expect("footer is 8 bytes"));
    let computed = fnv1a(content);
    if stored != computed {
        return Err(RestoreError::ChecksumMismatch { stored, computed });
    }
    if &content[..4] != MAGIC {
        return Err(RestoreError::BadHeader);
    }
    if content[4] != VERSION {
        return Err(RestoreError::VersionMismatch {
            found: content[4],
            expected: VERSION,
        });
    }
    let kind = content[5];
    let mut pos = FIXED_HEADER_LEN;
    let epoch = read_varint(content, &mut pos)?;
    let base_epoch = read_varint(content, &mut pos)?;
    let tick = read_varint(content, &mut pos)?;
    let items = read_varint(content, &mut pos)?;
    let schema = u32::try_from(read_varint(content, &mut pos)?)
        .map_err(|_| RestoreError::Codec(CodecError::VarintOverflow))?;
    let declared =
        usize::try_from(read_varint(content, &mut pos)?).map_err(|_| RestoreError::Truncated)?;
    let payload = &content[pos..];
    if payload.len() != declared {
        return Err(RestoreError::LengthMismatch {
            declared,
            actual: payload.len(),
        });
    }
    let meta = SnapshotMeta {
        epoch,
        base_epoch,
        tick,
        items,
        schema,
    };
    let payload = match kind {
        KIND_FULL if base_epoch == epoch => Payload::Full(codec::decode(payload)?),
        KIND_DELTA if base_epoch != epoch => Payload::Delta(codec::decode_delta(payload)?),
        _ => return Err(RestoreError::BadHeader),
    };
    Ok((meta, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::checkpoint;
    use crate::diff::diff;

    fn meta(epoch: u64) -> SnapshotMeta {
        SnapshotMeta {
            epoch,
            base_epoch: epoch,
            tick: 10,
            items: 3,
            schema: 7,
        }
    }

    #[test]
    fn full_envelope_roundtrips() {
        let cp = checkpoint(&vec![1u32, 2, 3]);
        let bytes = seal_full(meta(5), &cp);
        let (m, payload) = open(&bytes).unwrap();
        assert_eq!(m, meta(5));
        assert!(!m.is_delta());
        let Payload::Full(back) = payload else {
            panic!("expected full payload")
        };
        assert_eq!(back.root, cp.root);
    }

    #[test]
    fn delta_envelope_roundtrips() {
        let a = checkpoint(&vec![1u32, 2, 3]);
        let b = checkpoint(&vec![1u32, 9, 3]);
        let d = diff(&a, &b);
        let m = SnapshotMeta {
            epoch: 6,
            base_epoch: 5,
            tick: 11,
            items: 3,
            schema: 2,
        };
        let bytes = seal_delta(m, &d);
        let (back_meta, payload) = open(&bytes).unwrap();
        assert_eq!(back_meta, m);
        assert!(back_meta.is_delta());
        let Payload::Delta(back) = payload else {
            panic!("expected delta payload")
        };
        assert_eq!(back, d);
    }

    #[test]
    fn every_single_byte_truncation_detected() {
        let bytes = seal_full(meta(1), &checkpoint(&String::from("state")));
        for cut in 0..bytes.len() {
            assert!(open(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn every_single_bit_flip_detected() {
        let bytes = seal_full(meta(1), &checkpoint(&vec![7u64, 8, 9]));
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut tampered = bytes.clone();
                tampered[i] ^= 1 << bit;
                assert!(
                    open(&tampered).is_err(),
                    "flip of bit {bit} in byte {i} must be detected"
                );
            }
        }
    }

    #[test]
    fn kind_and_base_epoch_must_agree() {
        // A "full" envelope whose base_epoch differs is malformed even
        // when its checksum is intact.
        let cp = checkpoint(&1u32);
        let m = SnapshotMeta {
            epoch: 2,
            base_epoch: 1,
            tick: 0,
            items: 0,
            schema: 0,
        };
        let bytes = seal(KIND_FULL, m, &codec::encode(&cp));
        assert_eq!(open(&bytes).unwrap_err(), RestoreError::BadHeader);
    }

    #[test]
    fn foreign_version_is_typed_not_garbage() {
        // A structurally intact envelope stamped with a different format
        // version: reseal the checksum so only the version byte differs.
        let mut bytes = seal_full(meta(1), &checkpoint(&vec![1u8, 2]));
        bytes[4] = VERSION + 1;
        let content_len = bytes.len() - FOOTER_LEN;
        let checksum = fnv1a(&bytes[..content_len]).to_le_bytes();
        bytes[content_len..].copy_from_slice(&checksum);
        assert_eq!(
            open(&bytes).unwrap_err(),
            RestoreError::VersionMismatch {
                found: VERSION + 1,
                expected: VERSION,
            }
        );
    }

    #[test]
    fn error_kinds_are_stable() {
        assert_eq!(RestoreError::Truncated.kind(), "truncated");
        assert_eq!(
            RestoreError::ChecksumMismatch {
                stored: 0,
                computed: 1
            }
            .kind(),
            "checksum-mismatch"
        );
        assert_eq!(RestoreError::MissingSnapshot.kind(), "missing-snapshot");
        assert_eq!(
            RestoreError::VersionMismatch {
                found: 9,
                expected: VERSION
            }
            .kind(),
            "version-mismatch"
        );
    }
}
