//! [`CkArc`]: the thread-safe alias-aware shared pointer.
//!
//! §5 notes the `Rc` treatment "can be extended similarly" to `Arc`;
//! this is that extension. The epoch mark is an `(epoch, shared_id)`
//! pair behind a tiny mutex (uncontended in the common single-checkpoint
//! case). Runs never trust marks from other epochs, so concurrent
//! checkpoint runs cannot corrupt each other — a cross-run interleaving
//! at worst costs an extra copy (losing one dedup opportunity within one
//! run), never a wrong snapshot. Combined with the `Mutex<T>` impl from
//! [`crate::traits`], this is the paper's "efficient and thread-safe"
//! checkpointing of shared mutable state.

use crate::ctx::{CheckpointCtx, DedupMode, RestoreCtx};
use crate::snapshot::{mismatch, Snapshot, SnapshotError};
use crate::traits::Checkpointable;
use parking_lot::Mutex;
use std::ops::Deref;
use std::sync::Arc;

struct CkArcNode<T> {
    /// `(epoch, shared_id)` of the last run that copied this node,
    /// updated under the (uncontended in the common case) mark lock.
    mark: Mutex<(u64, usize)>,
    value: T,
}

/// A thread-safe shared pointer whose targets checkpoint once per run
/// regardless of alias count.
pub struct CkArc<T> {
    inner: Arc<CkArcNode<T>>,
}

impl<T> CkArc<T> {
    /// Wraps `value` in a new shared allocation.
    pub fn new(value: T) -> Self {
        Self {
            inner: Arc::new(CkArcNode {
                mark: Mutex::new((0, 0)),
                value,
            }),
        }
    }

    /// True when both pointers alias the same allocation.
    pub fn ptr_eq(a: &CkArc<T>, b: &CkArc<T>) -> bool {
        Arc::ptr_eq(&a.inner, &b.inner)
    }

    /// Number of live aliases.
    pub fn strong_count(this: &CkArc<T>) -> usize {
        Arc::strong_count(&this.inner)
    }

    /// The allocation's address (the [`DedupMode::AddressSet`] key).
    pub fn as_ptr_addr(this: &CkArc<T>) -> usize {
        Arc::as_ptr(&this.inner) as *const () as usize
    }
}

impl<T> Clone for CkArc<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Deref for CkArc<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner.value
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for CkArc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("CkArc").field(&self.inner.value).finish()
    }
}

impl<T: PartialEq> PartialEq for CkArc<T> {
    fn eq(&self, other: &Self) -> bool {
        self.inner.value == other.inner.value
    }
}

impl<T: Checkpointable + 'static> Checkpointable for CkArc<T> {
    fn checkpoint(&self, ctx: &mut CheckpointCtx) -> Snapshot {
        match ctx.mode() {
            DedupMode::EpochFlag => {
                {
                    let mark = self.inner.mark.lock();
                    if mark.0 == ctx.epoch() {
                        ctx.stats.shared_hits += 1;
                        return Snapshot::Shared(mark.1);
                    }
                }
                let id = ctx.alloc_shared();
                *self.inner.mark.lock() = (ctx.epoch(), id);
                ctx.stats.shared_copied += 1;
                let snap = self.inner.value.checkpoint(ctx);
                ctx.fill_shared(id, snap);
                Snapshot::Shared(id)
            }
            DedupMode::AddressSet => {
                let addr = CkArc::as_ptr_addr(self);
                if let Some(id) = ctx.address_lookup(addr) {
                    ctx.stats.shared_hits += 1;
                    return Snapshot::Shared(id);
                }
                let id = ctx.alloc_shared();
                ctx.address_insert(addr, id);
                ctx.stats.shared_copied += 1;
                let snap = self.inner.value.checkpoint(ctx);
                ctx.fill_shared(id, snap);
                Snapshot::Shared(id)
            }
            DedupMode::None => {
                ctx.stats.duplicate_copies += 1;
                self.inner.value.checkpoint(ctx)
            }
        }
    }

    fn restore(snap: &Snapshot, ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        match snap {
            Snapshot::Shared(id) => {
                if let Some(arc) = ctx.rebuilt_handle::<Arc<CkArcNode<T>>>(*id)? {
                    return Ok(CkArc { inner: arc });
                }
                ctx.begin_rebuild(*id)?;
                let inner_snap = ctx.shared_snapshot(*id)?;
                let value = T::restore(inner_snap, ctx)?;
                let arc = Arc::new(CkArcNode {
                    mark: Mutex::new((0, 0)),
                    value,
                });
                ctx.finish_rebuild(*id, Arc::clone(&arc));
                Ok(CkArc { inner: arc })
            }
            other => Ok(CkArc::new(T::restore(other, ctx)?)),
        }
    }
}

impl<T: Checkpointable + 'static> Checkpointable for Vec<CkArc<T>> {
    fn checkpoint(&self, ctx: &mut CheckpointCtx) -> Snapshot {
        Snapshot::Seq(self.iter().map(|e| e.checkpoint(ctx)).collect())
    }

    fn restore(snap: &Snapshot, ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        match snap {
            Snapshot::Seq(items) => items.iter().map(|s| CkArc::restore(s, ctx)).collect(),
            other => Err(mismatch("vec", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::{checkpoint, checkpoint_with_mode, restore};

    #[test]
    fn basic_identity() {
        let a = CkArc::new(5u32);
        let b = a.clone();
        assert_eq!(*b, 5);
        assert!(CkArc::ptr_eq(&a, &b));
        assert_eq!(CkArc::strong_count(&a), 2);
        assert_eq!(format!("{a:?}"), "CkArc(5)");
    }

    #[test]
    fn aliases_dedup() {
        let a = CkArc::new(String::from("shared"));
        let v = vec![a.clone(), a.clone(), a];
        let cp = checkpoint(&v);
        assert_eq!(cp.stats.shared_copied, 1);
        assert_eq!(cp.stats.shared_hits, 2);
        let back: Vec<CkArc<String>> = restore(&cp).unwrap();
        assert!(CkArc::ptr_eq(&back[0], &back[2]));
    }

    #[test]
    fn all_three_modes_behave() {
        let a = CkArc::new(9u64);
        let v = vec![a.clone(), a];
        let flag = checkpoint(&v);
        let addr = checkpoint_with_mode(&v, DedupMode::AddressSet);
        let naive = checkpoint_with_mode(&v, DedupMode::None);
        assert_eq!(flag.shared, addr.shared);
        assert_eq!(naive.stats.duplicate_copies, 2);
    }

    #[test]
    fn shared_mutable_state_via_mutex() {
        // The paper's "thread-safe" claim: Arc<Mutex<T>>-style shared
        // mutable state, checkpointed consistently.
        let counter = CkArc::new(parking_lot::Mutex::new(0u64));
        let v = vec![counter.clone(), counter.clone()];
        *v[0].lock() = 42;
        let cp = checkpoint(&v);
        assert_eq!(cp.stats.shared_copied, 1);
        let back: Vec<CkArc<parking_lot::Mutex<u64>>> = restore(&cp).unwrap();
        assert_eq!(*back[1].lock(), 42);
        assert!(CkArc::ptr_eq(&back[0], &back[1]));
    }

    #[test]
    fn checkpoint_while_other_threads_mutate() {
        // Writers mutate shared cells while a checkpoint runs; the run
        // must complete and contain internally-consistent per-cell
        // values (each cell's lock is held during its copy).
        let cells: Vec<CkArc<parking_lot::Mutex<u64>>> = (0..16)
            .map(|_| CkArc::new(parking_lot::Mutex::new(0)))
            .collect();
        let shared = cells.clone();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer_stop = std::sync::Arc::clone(&stop);
        let writer = std::thread::spawn(move || {
            let mut i = 0u64;
            while !writer_stop.load(std::sync::atomic::Ordering::Relaxed) {
                *shared[(i % 16) as usize].lock() = i;
                i += 1;
            }
        });
        for _ in 0..50 {
            let cp = checkpoint(&cells);
            assert_eq!(cp.stats.shared_copied, 16);
            let back: Vec<CkArc<parking_lot::Mutex<u64>>> = restore(&cp).unwrap();
            assert_eq!(back.len(), 16);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn concurrent_checkpoints_of_shared_structure() {
        // Two threads checkpoint the same structure simultaneously; each
        // run has its own epoch, so both must dedup correctly.
        let node = CkArc::new(vec![1u64, 2, 3]);
        let v = std::sync::Arc::new(vec![node.clone(), node]);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let v = std::sync::Arc::clone(&v);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let cp = checkpoint(&*v);
                        // Either the run saw its own mark (1 copy + 1 hit)
                        // or a concurrent run overwrote the mark mid-way
                        // (2 copies, still a *correct* snapshot).
                        let total = cp.stats.shared_copied + cp.stats.shared_hits;
                        assert_eq!(total, 2);
                        assert!(cp.stats.shared_copied >= 1);
                        let back: Vec<CkArc<Vec<u64>>> = restore(&cp).unwrap();
                        assert_eq!(*back[0], vec![1, 2, 3]);
                        assert_eq!(*back[1], vec![1, 2, 3]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn send_sync_bounds() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CkArc<u64>>();
        assert_send_sync::<CkArc<parking_lot::Mutex<Vec<u8>>>>();
    }
}
