//! [`CkRc`]: the alias-aware, checkpoint-capable shared pointer.
//!
//! `Rc` is where Rust makes aliasing explicit in the type, and therefore
//! the exact place §5 hangs the dedup logic: "we provide a custom
//! implementation of Checkpointable for Rc ..., which sets an internal
//! flag the first time checkpoint() is called on the object and checks
//! this flag to avoid creating additional copies when graph traversal
//! hits the object again via a different alias."
//!
//! The "flag" here is an epoch mark `(epoch, shared_id)`: comparing it to
//! the running checkpoint's epoch both detects "already copied in this
//! run" and remembers *where* the copy went, with no global visited-set.
//! Stale marks from previous runs are harmless because every run uses a
//! fresh epoch.

use crate::ctx::{CheckpointCtx, DedupMode, RestoreCtx};
use crate::snapshot::{mismatch, Snapshot, SnapshotError};
use crate::traits::Checkpointable;
use std::cell::Cell;
use std::ops::Deref;
use std::rc::Rc;

struct CkNode<T> {
    /// `(epoch, shared_id)` of the last checkpoint run that copied this
    /// node. Epoch 0 never matches a real run.
    mark: Cell<(u64, usize)>,
    value: T,
}

/// A single-threaded shared pointer whose targets checkpoint once per
/// run regardless of how many aliases reach them.
pub struct CkRc<T> {
    inner: Rc<CkNode<T>>,
}

impl<T> CkRc<T> {
    /// Wraps `value` in a new shared allocation.
    pub fn new(value: T) -> Self {
        Self {
            inner: Rc::new(CkNode {
                mark: Cell::new((0, 0)),
                value,
            }),
        }
    }

    /// True when both pointers alias the same allocation.
    pub fn ptr_eq(a: &CkRc<T>, b: &CkRc<T>) -> bool {
        Rc::ptr_eq(&a.inner, &b.inner)
    }

    /// Number of live aliases.
    pub fn strong_count(this: &CkRc<T>) -> usize {
        Rc::strong_count(&this.inner)
    }

    /// The allocation's address, used as the key by
    /// [`DedupMode::AddressSet`].
    pub fn as_ptr_addr(this: &CkRc<T>) -> usize {
        Rc::as_ptr(&this.inner) as *const () as usize
    }
}

impl<T> Clone for CkRc<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Deref for CkRc<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner.value
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for CkRc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("CkRc").field(&self.inner.value).finish()
    }
}

impl<T: PartialEq> PartialEq for CkRc<T> {
    fn eq(&self, other: &Self) -> bool {
        self.inner.value == other.inner.value
    }
}

impl<T: Checkpointable + 'static> Checkpointable for CkRc<T> {
    fn checkpoint(&self, ctx: &mut CheckpointCtx) -> Snapshot {
        match ctx.mode() {
            DedupMode::EpochFlag => {
                let (epoch, id) = self.inner.mark.get();
                if epoch == ctx.epoch() {
                    // Second (or later) alias in this run: O(1) hit.
                    ctx.stats.shared_hits += 1;
                    return Snapshot::Shared(id);
                }
                let id = ctx.alloc_shared();
                // Mark *before* recursing so diamond patterns converge.
                self.inner.mark.set((ctx.epoch(), id));
                ctx.stats.shared_copied += 1;
                let snap = self.inner.value.checkpoint(ctx);
                ctx.fill_shared(id, snap);
                Snapshot::Shared(id)
            }
            DedupMode::AddressSet => {
                // The conventional-language emulation: a global map from
                // object address to copy, consulted per node.
                let addr = CkRc::as_ptr_addr(self);
                if let Some(id) = ctx.address_lookup(addr) {
                    ctx.stats.shared_hits += 1;
                    return Snapshot::Shared(id);
                }
                let id = ctx.alloc_shared();
                ctx.address_insert(addr, id);
                ctx.stats.shared_copied += 1;
                let snap = self.inner.value.checkpoint(ctx);
                ctx.fill_shared(id, snap);
                Snapshot::Shared(id)
            }
            DedupMode::None => {
                // Figure 3b: traverse like a unique owner, duplicating
                // the target once per alias.
                ctx.stats.duplicate_copies += 1;
                self.inner.value.checkpoint(ctx)
            }
        }
    }

    fn restore(snap: &Snapshot, ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        match snap {
            Snapshot::Shared(id) => {
                if let Some(rc) = ctx.rebuilt_handle::<Rc<CkNode<T>>>(*id)? {
                    return Ok(CkRc { inner: rc });
                }
                ctx.begin_rebuild(*id)?;
                let inner_snap = ctx.shared_snapshot(*id)?;
                let value = T::restore(inner_snap, ctx)?;
                let rc = Rc::new(CkNode {
                    mark: Cell::new((0, 0)),
                    value,
                });
                ctx.finish_rebuild(*id, Rc::clone(&rc));
                Ok(CkRc { inner: rc })
            }
            // A checkpoint taken without dedup inlined the value; restore
            // it as a fresh, unshared allocation.
            other => Ok(CkRc::new(T::restore(other, ctx)?)),
        }
    }
}

// Vectors of shared pointers are the common shape for rule tables.
impl<T: Checkpointable + 'static> Checkpointable for Vec<CkRc<T>> {
    fn checkpoint(&self, ctx: &mut CheckpointCtx) -> Snapshot {
        Snapshot::Seq(self.iter().map(|e| e.checkpoint(ctx)).collect())
    }

    fn restore(snap: &Snapshot, ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        match snap {
            Snapshot::Seq(items) => items.iter().map(|s| CkRc::restore(s, ctx)).collect(),
            other => Err(mismatch("vec", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::{checkpoint, checkpoint_with_mode, restore};

    #[test]
    fn deref_and_identity() {
        let a = CkRc::new(5u32);
        let b = a.clone();
        assert_eq!(*a, 5);
        assert!(CkRc::ptr_eq(&a, &b));
        assert_eq!(CkRc::strong_count(&a), 2);
        assert!(!CkRc::ptr_eq(&a, &CkRc::new(5)));
        assert_eq!(a, CkRc::new(5), "PartialEq compares values");
    }

    #[test]
    fn single_alias_checkpoints_once() {
        let a = CkRc::new(1u32);
        let cp = checkpoint(&a);
        assert_eq!(cp.root, Snapshot::Shared(0));
        assert_eq!(cp.shared, vec![Snapshot::UInt(1)]);
        assert_eq!(cp.stats.shared_copied, 1);
        assert_eq!(cp.stats.shared_hits, 0);
    }

    #[test]
    fn aliases_dedup_with_epoch_flag() {
        let a = CkRc::new(String::from("rule"));
        let v = vec![a.clone(), a.clone(), a];
        let cp = checkpoint(&v);
        assert_eq!(cp.stats.shared_copied, 1);
        assert_eq!(cp.stats.shared_hits, 2);
        assert_eq!(cp.shared.len(), 1);
        assert_eq!(cp.stats.address_lookups, 0, "epoch flag needs no map");
    }

    #[test]
    fn consecutive_runs_use_fresh_epochs() {
        let a = CkRc::new(7u32);
        let v = vec![a.clone(), a];
        let first = checkpoint(&v);
        let second = checkpoint(&v);
        // Both runs must dedup identically; a stale mark from run 1 must
        // not fool run 2.
        assert_eq!(first.stats.shared_copied, 1);
        assert_eq!(second.stats.shared_copied, 1);
        assert_eq!(second.stats.shared_hits, 1);
    }

    #[test]
    fn address_set_mode_same_result_more_lookups() {
        let a = CkRc::new(1u64);
        let v = vec![a.clone(), a.clone(), a];
        let flag = checkpoint(&v);
        let addr = checkpoint_with_mode(&v, DedupMode::AddressSet);
        assert_eq!(flag.shared, addr.shared);
        assert_eq!(flag.root, addr.root);
        assert_eq!(addr.stats.shared_hits, 2);
        assert!(addr.stats.address_lookups >= 3, "per-node map traffic");
    }

    #[test]
    fn none_mode_duplicates_figure_3b() {
        let rule = CkRc::new(vec![0u8; 4096]);
        let v = vec![rule.clone(), rule.clone(), rule];
        let dedup = checkpoint(&v);
        let naive = checkpoint_with_mode(&v, DedupMode::None);
        assert_eq!(naive.stats.duplicate_copies, 3);
        assert!(naive.shared.is_empty());
        // The naive checkpoint is ~3x the size of the deduped one.
        assert!(
            naive.approx_bytes() > 2 * dedup.approx_bytes(),
            "naive={} dedup={}",
            naive.approx_bytes(),
            dedup.approx_bytes()
        );
    }

    #[test]
    fn restore_rebuilds_sharing() {
        let a = CkRc::new(String::from("shared"));
        let v = vec![a.clone(), a];
        let cp = checkpoint(&v);
        let back: Vec<CkRc<String>> = restore(&cp).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(*back[0], "shared");
        assert!(
            CkRc::ptr_eq(&back[0], &back[1]),
            "restored aliases must share"
        );
        assert_eq!(CkRc::strong_count(&back[0]), 2);
    }

    #[test]
    fn restore_from_naive_checkpoint_loses_sharing() {
        let a = CkRc::new(3u32);
        let v = vec![a.clone(), a];
        let cp = checkpoint_with_mode(&v, DedupMode::None);
        let back: Vec<CkRc<u32>> = restore(&cp).unwrap();
        assert_eq!(*back[0], 3);
        assert!(
            !CkRc::ptr_eq(&back[0], &back[1]),
            "sharing was destroyed at checkpoint time"
        );
    }

    /// The diamond of Figure 3a: two paths to the same rule.
    #[test]
    fn diamond_graph_single_copy() {
        let rule = CkRc::new(String::from("allow"));
        let left = CkRc::new(vec![rule.clone()]);
        let right = CkRc::new(vec![rule]);
        let root = (left, right);
        let cp = checkpoint(&root);
        // Three shared nodes total: left, right, rule — rule copied once.
        assert_eq!(cp.shared.len(), 3);
        assert_eq!(cp.stats.shared_copied, 3);
        assert_eq!(cp.stats.shared_hits, 1);
        type Side = CkRc<Vec<CkRc<String>>>;
        let back: (Side, Side) = restore(&cp).unwrap();
        assert!(CkRc::ptr_eq(&back.0[0], &back.1[0]));
    }

    #[test]
    fn deep_nesting_roundtrip() {
        let leaf = CkRc::new(1u64);
        let mid: Vec<CkRc<u64>> = vec![leaf.clone(), leaf.clone(), leaf];
        let cp = checkpoint(&mid);
        assert_eq!(cp.stats.shared_copied, 1);
        let back: Vec<CkRc<u64>> = restore(&cp).unwrap();
        assert!(CkRc::ptr_eq(&back[0], &back[2]));
    }

    #[test]
    fn mutation_between_checkpoints_seen_by_next_run() {
        let cell = CkRc::new(std::cell::RefCell::new(1u32));
        let cp1 = checkpoint(&cell);
        *cell.borrow_mut() = 2;
        let cp2 = checkpoint(&cell);
        let b1: CkRc<std::cell::RefCell<u32>> = restore(&cp1).unwrap();
        let b2: CkRc<std::cell::RefCell<u32>> = restore(&cp2).unwrap();
        assert_eq!(*b1.borrow(), 1);
        assert_eq!(*b2.borrow(), 2);
    }

    #[test]
    fn debug_formats_value() {
        let a = CkRc::new(5u32);
        assert_eq!(format!("{a:?}"), "CkRc(5)");
    }
}
