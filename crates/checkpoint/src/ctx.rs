//! Checkpoint and restore drivers.
//!
//! [`CheckpointCtx`] carries the traversal state: the shared-node table,
//! the dedup policy ([`DedupMode`]), and cost counters. The default mode
//! is the paper's epoch flag; [`DedupMode::AddressSet`] emulates what a
//! conventional language must do (a global visited-pointer map), and
//! [`DedupMode::None`] is the naïve traversal of Figure 3b. All three
//! produce a checkpoint of the same structure — the experiment compares
//! their costs and copy counts.

use crate::snapshot::{Snapshot, SnapshotError};
use crate::traits::Checkpointable;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// How aliased (`CkRc`/`CkArc`) nodes are deduplicated during traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DedupMode {
    /// The paper's mechanism: an epoch mark inside the shared pointer,
    /// checked and set in O(1) with no auxiliary structure.
    #[default]
    EpochFlag,
    /// The conventional-language emulation: a global map from pointer
    /// address to shared-table id, consulted on every shared node.
    AddressSet,
    /// No dedup: every alias duplicates its target (Figure 3b). The
    /// result is a tree-shaped snapshot with redundant copies; restore
    /// cannot reconstruct sharing.
    None,
}

/// Cost and effect counters for one checkpoint run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Shared nodes whose content was actually copied.
    pub shared_copied: u64,
    /// Alias hits answered without copying (dedup successes).
    pub shared_hits: u64,
    /// Redundant copies produced (only in [`DedupMode::None`]).
    pub duplicate_copies: u64,
    /// Address-map operations performed (only in
    /// [`DedupMode::AddressSet`]).
    pub address_lookups: u64,
}

/// A completed checkpoint: the root snapshot plus the shared-node table
/// it refers into.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The root value's snapshot.
    pub root: Snapshot,
    /// Contents of shared nodes, indexed by [`Snapshot::Shared`].
    pub shared: Vec<Snapshot>,
    /// What the traversal did and what it cost.
    pub stats: CheckpointStats,
}

impl Checkpoint {
    /// Total snapshot nodes, root plus shared table — the "size" of the
    /// checkpoint for the Figure 3 comparison.
    pub fn total_nodes(&self) -> usize {
        self.root.node_count() + self.shared.iter().map(Snapshot::node_count).sum::<usize>()
    }

    /// Approximate heap bytes of the whole checkpoint.
    pub fn approx_bytes(&self) -> usize {
        self.root.approx_bytes()
            + self
                .shared
                .iter()
                .map(Snapshot::approx_bytes)
                .sum::<usize>()
    }
}

/// Global epoch counter: each checkpoint run gets a fresh epoch so marks
/// from earlier runs are never mistaken for this run's.
static EPOCH: AtomicU64 = AtomicU64::new(1);

/// Traversal state passed to every [`Checkpointable::checkpoint`] call.
pub struct CheckpointCtx {
    epoch: u64,
    mode: DedupMode,
    shared: Vec<Option<Snapshot>>,
    address_map: HashMap<usize, usize>,
    /// Exposed counters.
    pub stats: CheckpointStats,
}

impl CheckpointCtx {
    fn new(mode: DedupMode) -> Self {
        Self {
            epoch: EPOCH.fetch_add(1, Ordering::Relaxed),
            mode,
            shared: Vec::new(),
            address_map: HashMap::new(),
            stats: CheckpointStats::default(),
        }
    }

    /// This run's epoch (compared against `CkRc` marks).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The active dedup mode.
    pub fn mode(&self) -> DedupMode {
        self.mode
    }

    /// Reserves a shared-table slot, returning its id. The caller must
    /// fill it with [`CheckpointCtx::fill_shared`] after snapshotting the
    /// node's content (two-phase so self-referential marks are set before
    /// recursion).
    pub fn alloc_shared(&mut self) -> usize {
        self.shared.push(None);
        self.shared.len() - 1
    }

    /// Fills a previously allocated slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot was already filled (a driver bug, not a data
    /// condition).
    pub fn fill_shared(&mut self, id: usize, snap: Snapshot) {
        assert!(self.shared[id].is_none(), "shared slot {id} filled twice");
        self.shared[id] = Some(snap);
    }

    /// Address-map lookup for [`DedupMode::AddressSet`]: returns the
    /// existing id for `addr`, if any, counting the lookup.
    pub fn address_lookup(&mut self, addr: usize) -> Option<usize> {
        self.stats.address_lookups += 1;
        self.address_map.get(&addr).copied()
    }

    /// Records `addr` as checkpointed into slot `id`.
    pub fn address_insert(&mut self, addr: usize, id: usize) {
        self.stats.address_lookups += 1;
        self.address_map.insert(addr, id);
    }

    fn finish(self, root: Snapshot) -> Checkpoint {
        Checkpoint {
            root,
            shared: self
                .shared
                .into_iter()
                .map(|s| s.expect("every allocated shared slot is filled before finish"))
                .collect(),
            stats: self.stats,
        }
    }
}

/// Checkpoints `value` with the default (epoch flag) dedup.
pub fn checkpoint<T: Checkpointable>(value: &T) -> Checkpoint {
    checkpoint_with_mode(value, DedupMode::EpochFlag)
}

/// Runs a custom traversal as a checkpoint driver.
///
/// For composite roots that are not a single `Checkpointable` value —
/// e.g. a pipeline snapshotting each stateful stage into one shared
/// table — the closure builds the root snapshot itself, calling
/// [`Checkpointable::checkpoint`] on whichever pieces it owns. All
/// pieces share one epoch and one shared-node table, so aliasing across
/// pieces deduplicates exactly as within one value.
pub fn checkpoint_scope(
    mode: DedupMode,
    f: impl FnOnce(&mut CheckpointCtx) -> Snapshot,
) -> Checkpoint {
    let mut ctx = CheckpointCtx::new(mode);
    let root = f(&mut ctx);
    ctx.finish(root)
}

/// The restore-side dual of [`checkpoint_scope`]: hands the closure the
/// root snapshot and a [`RestoreCtx`] over the checkpoint's shared
/// table, so a composite driver can rebuild its pieces with sharing
/// intact.
pub fn restore_scope<R>(
    cp: &Checkpoint,
    f: impl FnOnce(&Snapshot, &mut RestoreCtx<'_>) -> Result<R, SnapshotError>,
) -> Result<R, SnapshotError> {
    let mut ctx = RestoreCtx::new(&cp.shared);
    f(&cp.root, &mut ctx)
}

/// Checkpoints `value` under an explicit [`DedupMode`].
pub fn checkpoint_with_mode<T: Checkpointable>(value: &T, mode: DedupMode) -> Checkpoint {
    let mut ctx = CheckpointCtx::new(mode);
    let root = value.checkpoint(&mut ctx);
    ctx.finish(root)
}

/// One shared node's rebuild state during restore.
enum Slot {
    Empty,
    InProgress,
    Done(Box<dyn Any>),
}

/// State passed to every [`Checkpointable::restore`] call.
pub struct RestoreCtx<'a> {
    shared: &'a [Snapshot],
    rebuilt: Vec<Slot>,
}

impl<'a> RestoreCtx<'a> {
    fn new(shared: &'a [Snapshot]) -> Self {
        Self {
            shared,
            rebuilt: (0..shared.len()).map(|_| Slot::Empty).collect(),
        }
    }

    /// The snapshot stored for shared node `id`.
    pub fn shared_snapshot(&self, id: usize) -> Result<&'a Snapshot, SnapshotError> {
        self.shared
            .get(id)
            .ok_or(SnapshotError::DanglingShared { index: id })
    }

    /// Returns the already-rebuilt handle for `id`, if present.
    ///
    /// Fails with [`SnapshotError::SharedTypeConflict`] when the node was
    /// rebuilt at a different type, and with
    /// [`SnapshotError::CyclicSharing`] when the node is still being
    /// rebuilt (the snapshot encodes a reference cycle).
    pub fn rebuilt_handle<H: Clone + 'static>(
        &self,
        id: usize,
    ) -> Result<Option<H>, SnapshotError> {
        match self.rebuilt.get(id) {
            None => Err(SnapshotError::DanglingShared { index: id }),
            Some(Slot::Empty) => Ok(None),
            Some(Slot::InProgress) => Err(SnapshotError::CyclicSharing),
            Some(Slot::Done(any)) => match any.downcast_ref::<H>() {
                Some(h) => Ok(Some(h.clone())),
                None => Err(SnapshotError::SharedTypeConflict { index: id }),
            },
        }
    }

    /// Marks `id` as being rebuilt (cycle detection).
    pub fn begin_rebuild(&mut self, id: usize) -> Result<(), SnapshotError> {
        match self.rebuilt.get_mut(id) {
            None => Err(SnapshotError::DanglingShared { index: id }),
            Some(slot @ Slot::Empty) => {
                *slot = Slot::InProgress;
                Ok(())
            }
            Some(Slot::InProgress) => Err(SnapshotError::CyclicSharing),
            Some(Slot::Done(_)) => Ok(()),
        }
    }

    /// Stores the rebuilt handle for `id`.
    pub fn finish_rebuild<H: Clone + 'static>(&mut self, id: usize, handle: H) {
        self.rebuilt[id] = Slot::Done(Box::new(handle));
    }
}

/// Restores a `T` from a checkpoint, rebuilding shared structure.
///
/// Checkpoints taken under [`DedupMode::None`] restore too, but aliases
/// come back as independent copies (their sharing was lost at
/// checkpoint time — the Figure 3b failure mode).
pub fn restore<T: Checkpointable>(cp: &Checkpoint) -> Result<T, SnapshotError> {
    let mut ctx = RestoreCtx::new(&cp.shared);
    T::restore(&cp.root, &mut ctx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let cp = checkpoint(&42u64);
        assert_eq!(cp.root, Snapshot::UInt(42));
        assert!(cp.shared.is_empty());
        assert_eq!(restore::<u64>(&cp).unwrap(), 42);
    }

    #[test]
    fn epochs_are_distinct_per_run() {
        let a = CheckpointCtx::new(DedupMode::EpochFlag);
        let b = CheckpointCtx::new(DedupMode::EpochFlag);
        assert_ne!(a.epoch(), b.epoch());
    }

    #[test]
    fn total_nodes_includes_shared_table() {
        let cp = Checkpoint {
            root: Snapshot::Seq(vec![Snapshot::Shared(0)]),
            shared: vec![Snapshot::Seq(vec![Snapshot::UInt(1), Snapshot::UInt(2)])],
            stats: CheckpointStats::default(),
        };
        assert_eq!(cp.total_nodes(), 2 + 3);
        assert!(cp.approx_bytes() > 0);
    }

    #[test]
    fn restore_type_mismatch_is_error() {
        let cp = checkpoint(&42u64);
        let e = restore::<String>(&cp).unwrap_err();
        assert!(matches!(
            e,
            SnapshotError::TypeMismatch {
                expected: "string",
                ..
            }
        ));
    }

    #[test]
    fn dangling_shared_detected() {
        let cp = Checkpoint {
            root: Snapshot::Shared(3),
            shared: vec![],
            stats: CheckpointStats::default(),
        };
        let mut ctx = RestoreCtx::new(&cp.shared);
        assert_eq!(
            ctx.shared_snapshot(3).unwrap_err(),
            SnapshotError::DanglingShared { index: 3 }
        );
        assert!(ctx.begin_rebuild(3).is_err());
    }

    #[test]
    fn rebuild_slots_lifecycle() {
        let shared = vec![Snapshot::UInt(7)];
        let mut ctx = RestoreCtx::new(&shared);
        assert_eq!(ctx.rebuilt_handle::<u32>(0).unwrap(), None);
        ctx.begin_rebuild(0).unwrap();
        // Re-entering while in progress is a cycle.
        assert_eq!(
            ctx.begin_rebuild(0).unwrap_err(),
            SnapshotError::CyclicSharing
        );
        assert_eq!(
            ctx.rebuilt_handle::<u32>(0).unwrap_err(),
            SnapshotError::CyclicSharing
        );
        ctx.finish_rebuild(0, 99u32);
        assert_eq!(ctx.rebuilt_handle::<u32>(0).unwrap(), Some(99));
        // Wrong type is a conflict.
        assert_eq!(
            ctx.rebuilt_handle::<String>(0).unwrap_err(),
            SnapshotError::SharedTypeConflict { index: 0 }
        );
    }

    #[test]
    fn address_map_counts_lookups() {
        let mut ctx = CheckpointCtx::new(DedupMode::AddressSet);
        assert_eq!(ctx.address_lookup(0x1000), None);
        ctx.address_insert(0x1000, 0);
        assert_eq!(ctx.address_lookup(0x1000), Some(0));
        assert_eq!(ctx.stats.address_lookups, 3);
    }

    #[test]
    #[should_panic(expected = "filled twice")]
    fn double_fill_is_a_bug() {
        let mut ctx = CheckpointCtx::new(DedupMode::EpochFlag);
        let id = ctx.alloc_shared();
        ctx.fill_shared(id, Snapshot::Unit);
        ctx.fill_shared(id, Snapshot::Unit);
    }
}
