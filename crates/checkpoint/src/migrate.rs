//! Versioned state migration: the hook a live upgrade uses to carry
//! operator state across a schema change.
//!
//! A pipeline declares a *state schema* — an integer naming the layout
//! generation of its exported checkpoints — and every sealed snapshot
//! records the schema of the pipeline that produced it
//! ([`SnapshotMeta::schema`](crate::SnapshotMeta)). When an upgrade
//! swaps in a spec with a different schema, restoring the old snapshot
//! verbatim would hand the new code a layout it no longer understands;
//! falling back cold would destroy state an upgrade has no excuse to
//! lose. A [`StateMigrator`] is the middle path: a pure checkpoint →
//! checkpoint transformation, applied after the envelope verifies and
//! before the new pipeline imports, that reshapes old-layout state into
//! the new layout.
//!
//! Migrators are direction-aware: `can_migrate(from, to)` answers for a
//! specific ordered pair, so one migrator can support forward migration
//! only (rollback falls back to the old-schema snapshot that is still
//! buffered) or both directions. An upgrade whose schemas differ and
//! whose policy carries no capable migrator is rejected up front with a
//! typed error — before any worker is quiesced.

use crate::ctx::Checkpoint;
use std::fmt;

/// Why a checkpoint could not be migrated between schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrateError {
    /// Schema the checkpoint was captured under.
    pub from: u32,
    /// Schema the migration was asked to produce.
    pub to: u32,
    /// Stable short reason (used in reports and JSON).
    pub reason: &'static str,
}

impl fmt::Display for MigrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "migrating state schema {} -> {}: {}",
            self.from, self.to, self.reason
        )
    }
}

impl std::error::Error for MigrateError {}

/// A checkpoint-to-checkpoint schema transformation.
///
/// Implementations must be pure (no I/O, no ambient state): the upgrade
/// path may run a migrator once per worker and expects identical output
/// for identical input, which is what keeps upgrade experiments
/// byte-stable under a fixed seed.
pub trait StateMigrator: Send + Sync {
    /// Whether this migrator can transform a checkpoint captured under
    /// schema `from` into one importable under schema `to`. Asked once
    /// up front to validate the whole upgrade, and again per restore.
    fn can_migrate(&self, from: u32, to: u32) -> bool;

    /// Transforms `cp` from schema `from` to schema `to`.
    ///
    /// Called only for pairs `can_migrate` approved; returning an error
    /// anyway (e.g. the checkpoint's actual shape contradicts its
    /// declared schema) makes the restore fall through its fallback
    /// chain instead of importing garbage.
    fn migrate(&self, cp: &Checkpoint, from: u32, to: u32) -> Result<Checkpoint, MigrateError>;
}

/// A set of migrators tried in order — compose one per schema edge and
/// the first capable one handles the pair.
pub struct MigratorSet {
    migrators: Vec<std::sync::Arc<dyn StateMigrator>>,
}

impl MigratorSet {
    /// An empty set (handles nothing).
    pub fn new() -> Self {
        Self {
            migrators: Vec::new(),
        }
    }

    /// Adds a migrator; earlier entries win when several can handle the
    /// same pair.
    #[must_use]
    pub fn with(mut self, migrator: std::sync::Arc<dyn StateMigrator>) -> Self {
        self.migrators.push(migrator);
        self
    }
}

impl Default for MigratorSet {
    fn default() -> Self {
        Self::new()
    }
}

impl StateMigrator for MigratorSet {
    fn can_migrate(&self, from: u32, to: u32) -> bool {
        self.migrators.iter().any(|m| m.can_migrate(from, to))
    }

    fn migrate(&self, cp: &Checkpoint, from: u32, to: u32) -> Result<Checkpoint, MigrateError> {
        for m in &self.migrators {
            if m.can_migrate(from, to) {
                return m.migrate(cp, from, to);
            }
        }
        Err(MigrateError {
            from,
            to,
            reason: "no-migrator",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::checkpoint;
    use std::sync::Arc;

    struct Bump;
    impl StateMigrator for Bump {
        fn can_migrate(&self, from: u32, to: u32) -> bool {
            to == from + 1
        }
        fn migrate(&self, cp: &Checkpoint, _: u32, _: u32) -> Result<Checkpoint, MigrateError> {
            Ok(cp.clone())
        }
    }

    #[test]
    fn set_delegates_to_first_capable_member() {
        let set = MigratorSet::new().with(Arc::new(Bump));
        assert!(set.can_migrate(1, 2));
        assert!(!set.can_migrate(2, 1));
        let cp = checkpoint(&7u32);
        assert!(set.migrate(&cp, 1, 2).is_ok());
        let err = set.migrate(&cp, 2, 1).unwrap_err();
        assert_eq!(err.reason, "no-migrator");
        assert_eq!((err.from, err.to), (2, 1));
    }

    #[test]
    fn empty_set_handles_nothing() {
        let set = MigratorSet::default();
        assert!(!set.can_migrate(0, 1));
    }
}
