//! A compact binary wire format for checkpoints.
//!
//! Checkpoints that only live in memory cover rollback; durability and
//! migration (ship a domain's state to another process, write it to
//! disk) need bytes. The format is deliberately simple and dependency-
//! free: one tag byte per node, LEB128 varints for integers and lengths,
//! IEEE-754 bits for floats. Shared-node structure is preserved exactly,
//! so a decoded checkpoint restores with identical sharing.

use crate::ctx::{Checkpoint, CheckpointStats};
use crate::diff::{Delta, PathSeg, Replacement, Side, Target};
use crate::snapshot::Snapshot;
use std::fmt;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended mid-value.
    UnexpectedEof,
    /// An unknown tag byte.
    BadTag(u8),
    /// A varint ran over its maximum width.
    VarintOverflow,
    /// A string was not valid UTF-8.
    BadUtf8,
    /// A char value outside the Unicode scalar range.
    BadChar(u32),
    /// The magic header is missing or the version is unsupported.
    BadHeader,
    /// Input had trailing bytes after a complete checkpoint.
    TrailingBytes(usize),
    /// Nesting deeper than [`MAX_DECODE_DEPTH`] — real checkpoints never
    /// get here; corrupt input must not be allowed to overflow the
    /// decoder's stack.
    TooDeep,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "input truncated"),
            CodecError::BadTag(t) => write!(f, "unknown snapshot tag {t:#04x}"),
            CodecError::VarintOverflow => write!(f, "varint too long"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in string"),
            CodecError::BadChar(c) => write!(f, "invalid char scalar {c:#x}"),
            CodecError::BadHeader => write!(f, "bad magic or unsupported version"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after checkpoint"),
            CodecError::TooDeep => write!(f, "nesting exceeds decoder depth limit"),
        }
    }
}

impl std::error::Error for CodecError {}

const MAGIC: &[u8; 4] = b"RBSC";
const DELTA_MAGIC: &[u8; 4] = b"RBSD";
const VERSION: u8 = 1;

/// Maximum snapshot nesting the decoder accepts. Generous for real
/// structures (a full-depth IPv4 trie nests ~120 levels) yet small
/// enough that adversarial input cannot recurse the decoder off a 2 MiB
/// thread stack even with debug-sized frames.
pub const MAX_DECODE_DEPTH: usize = 512;

mod tag {
    pub const UNIT: u8 = 0x00;
    pub const BOOL_FALSE: u8 = 0x01;
    pub const BOOL_TRUE: u8 = 0x02;
    pub const UINT: u8 = 0x03;
    pub const INT: u8 = 0x04;
    pub const FLOAT: u8 = 0x05;
    pub const CHAR: u8 = 0x06;
    pub const STR: u8 = 0x07;
    pub const BYTES: u8 = 0x08;
    pub const SEQ: u8 = 0x09;
    pub const MAP: u8 = 0x0A;
    pub const OPT_NONE: u8 = 0x0B;
    pub const OPT_SOME: u8 = 0x0C;
    pub const SHARED: u8 = 0x0D;
}

/// Appends `v` as an unsigned LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zig-zag encodes a signed value then varints it.
pub fn write_varint_signed(out: &mut Vec<u8>, v: i64) {
    write_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn byte(&mut self) -> Result<u8, CodecError> {
        let b = *self.data.get(self.pos).ok_or(CodecError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::UnexpectedEof)?;
        let s = self
            .data
            .get(self.pos..end)
            .ok_or(CodecError::UnexpectedEof)?;
        self.pos = end;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(CodecError::VarintOverflow)
    }

    fn varint_signed(&mut self) -> Result<i64, CodecError> {
        let raw = self.varint()?;
        Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
    }
}

fn encode_snapshot(out: &mut Vec<u8>, snap: &Snapshot) {
    match snap {
        Snapshot::Unit => out.push(tag::UNIT),
        Snapshot::Bool(false) => out.push(tag::BOOL_FALSE),
        Snapshot::Bool(true) => out.push(tag::BOOL_TRUE),
        Snapshot::UInt(v) => {
            out.push(tag::UINT);
            write_varint(out, *v);
        }
        Snapshot::Int(v) => {
            out.push(tag::INT);
            write_varint_signed(out, *v);
        }
        Snapshot::Float(v) => {
            out.push(tag::FLOAT);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Snapshot::Char(c) => {
            out.push(tag::CHAR);
            write_varint(out, u64::from(u32::from(*c)));
        }
        Snapshot::Str(s) => {
            out.push(tag::STR);
            write_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Snapshot::Bytes(b) => {
            out.push(tag::BYTES);
            write_varint(out, b.len() as u64);
            out.extend_from_slice(b);
        }
        Snapshot::Seq(items) => {
            out.push(tag::SEQ);
            write_varint(out, items.len() as u64);
            for item in items {
                encode_snapshot(out, item);
            }
        }
        Snapshot::Map(pairs) => {
            out.push(tag::MAP);
            write_varint(out, pairs.len() as u64);
            for (k, v) in pairs {
                encode_snapshot(out, k);
                encode_snapshot(out, v);
            }
        }
        Snapshot::Opt(None) => out.push(tag::OPT_NONE),
        Snapshot::Opt(Some(inner)) => {
            out.push(tag::OPT_SOME);
            encode_snapshot(out, inner);
        }
        Snapshot::Shared(id) => {
            out.push(tag::SHARED);
            write_varint(out, *id as u64);
        }
    }
}

fn decode_snapshot(r: &mut Reader<'_>, depth: usize) -> Result<Snapshot, CodecError> {
    if depth >= MAX_DECODE_DEPTH {
        return Err(CodecError::TooDeep);
    }
    let t = r.byte()?;
    Ok(match t {
        tag::UNIT => Snapshot::Unit,
        tag::BOOL_FALSE => Snapshot::Bool(false),
        tag::BOOL_TRUE => Snapshot::Bool(true),
        tag::UINT => Snapshot::UInt(r.varint()?),
        tag::INT => Snapshot::Int(r.varint_signed()?),
        tag::FLOAT => {
            let bytes: [u8; 8] = r.take(8)?.try_into().expect("take returned 8 bytes");
            Snapshot::Float(f64::from_bits(u64::from_le_bytes(bytes)))
        }
        tag::CHAR => {
            let raw = u32::try_from(r.varint()?).map_err(|_| CodecError::VarintOverflow)?;
            Snapshot::Char(char::from_u32(raw).ok_or(CodecError::BadChar(raw))?)
        }
        tag::STR => {
            let len = r.varint()? as usize;
            let bytes = r.take(len)?;
            Snapshot::Str(
                std::str::from_utf8(bytes)
                    .map_err(|_| CodecError::BadUtf8)?
                    .to_string(),
            )
        }
        tag::BYTES => {
            let len = r.varint()? as usize;
            Snapshot::Bytes(r.take(len)?.to_vec())
        }
        tag::SEQ => {
            let len = r.varint()? as usize;
            // Guard against absurd preallocation from corrupt input.
            let mut items = Vec::with_capacity(len.min(4096));
            for _ in 0..len {
                items.push(decode_snapshot(r, depth + 1)?);
            }
            Snapshot::Seq(items)
        }
        tag::MAP => {
            let len = r.varint()? as usize;
            let mut pairs = Vec::with_capacity(len.min(4096));
            for _ in 0..len {
                let k = decode_snapshot(r, depth + 1)?;
                let v = decode_snapshot(r, depth + 1)?;
                pairs.push((k, v));
            }
            Snapshot::Map(pairs)
        }
        tag::OPT_NONE => Snapshot::Opt(None),
        tag::OPT_SOME => Snapshot::Opt(Some(Box::new(decode_snapshot(r, depth + 1)?))),
        tag::SHARED => {
            let id = usize::try_from(r.varint()?).map_err(|_| CodecError::VarintOverflow)?;
            Snapshot::Shared(id)
        }
        other => return Err(CodecError::BadTag(other)),
    })
}

/// Serializes a checkpoint (header, root, shared table). Traversal
/// statistics are measurement artifacts and are not encoded.
///
/// This is a chaos injection site: when an ambient
/// [`rbs_core::fault::FaultPlan`] schedules a fault at
/// [`CheckpointEncode`](rbs_core::fault::FaultSite::CheckpointEncode),
/// the encoder panics (or sleeps) here, exactly as if serialization had
/// hit a bug mid-snapshot. Without an ambient plan the check is one
/// thread-local read.
pub fn encode(cp: &Checkpoint) -> Vec<u8> {
    chaos_checkpoint_encode();
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    encode_snapshot(&mut out, &cp.root);
    write_varint(&mut out, cp.shared.len() as u64);
    for s in &cp.shared {
        encode_snapshot(&mut out, s);
    }
    out
}

/// Deserializes a checkpoint produced by [`encode`]; rejects trailing
/// garbage.
pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CodecError> {
    let mut r = Reader {
        data: bytes,
        pos: 0,
    };
    if r.take(4)? != MAGIC || r.byte()? != VERSION {
        return Err(CodecError::BadHeader);
    }
    let root = decode_snapshot(&mut r, 0)?;
    let count = r.varint()? as usize;
    let mut shared = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        shared.push(decode_snapshot(&mut r, 0)?);
    }
    if r.pos != bytes.len() {
        return Err(CodecError::TrailingBytes(bytes.len() - r.pos));
    }
    Ok(Checkpoint {
        root,
        shared,
        stats: CheckpointStats::default(),
    })
}

/// The same fault hook for every serialization entry point: both full
/// encodes and delta encodes count as one `CheckpointEncode` occurrence,
/// so a chaos schedule's rates apply uniformly regardless of the
/// snapshot kind the store chose.
fn chaos_checkpoint_encode() {
    use rbs_core::fault::{self, FaultKind, FaultSite};
    let site = FaultSite::CheckpointEncode;
    if let Some(kind) = fault::ambient_decide(site) {
        match kind {
            FaultKind::Panic | FaultKind::PoisonTable | FaultKind::CloseChannel => {
                fault::fire_panic(site)
            }
            sleep => fault::fire_sleep(sleep),
        }
    }
}

mod delta_tag {
    pub const TARGET_ROOT: u8 = 0x00;
    pub const TARGET_SHARED: u8 = 0x01;
    pub const SEG_INDEX: u8 = 0x00;
    pub const SEG_MAP_KEY: u8 = 0x01;
    pub const SEG_MAP_VALUE: u8 = 0x02;
    pub const SEG_OPT_INNER: u8 = 0x03;
}

fn encode_path(out: &mut Vec<u8>, path: &[PathSeg]) {
    write_varint(out, path.len() as u64);
    for seg in path {
        match seg {
            PathSeg::Index(i) => {
                out.push(delta_tag::SEG_INDEX);
                write_varint(out, *i as u64);
            }
            PathSeg::MapEntry(i, Side::Key) => {
                out.push(delta_tag::SEG_MAP_KEY);
                write_varint(out, *i as u64);
            }
            PathSeg::MapEntry(i, Side::Value) => {
                out.push(delta_tag::SEG_MAP_VALUE);
                write_varint(out, *i as u64);
            }
            PathSeg::OptInner => out.push(delta_tag::SEG_OPT_INNER),
        }
    }
}

fn decode_path(r: &mut Reader<'_>) -> Result<Vec<PathSeg>, CodecError> {
    let len = r.varint()? as usize;
    let mut path = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        let seg = match r.byte()? {
            delta_tag::SEG_INDEX => PathSeg::Index(decode_usize(r)?),
            delta_tag::SEG_MAP_KEY => PathSeg::MapEntry(decode_usize(r)?, Side::Key),
            delta_tag::SEG_MAP_VALUE => PathSeg::MapEntry(decode_usize(r)?, Side::Value),
            delta_tag::SEG_OPT_INNER => PathSeg::OptInner,
            other => return Err(CodecError::BadTag(other)),
        };
        path.push(seg);
    }
    Ok(path)
}

fn decode_usize(r: &mut Reader<'_>) -> Result<usize, CodecError> {
    usize::try_from(r.varint()?).map_err(|_| CodecError::VarintOverflow)
}

/// Serializes a [`Delta`] (incremental snapshot payload). Fires the same
/// [`CheckpointEncode`](rbs_core::fault::FaultSite::CheckpointEncode)
/// chaos site as [`encode`].
pub fn encode_delta(delta: &Delta) -> Vec<u8> {
    chaos_checkpoint_encode();
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(DELTA_MAGIC);
    out.push(VERSION);
    write_varint(&mut out, delta.replacements.len() as u64);
    for rep in &delta.replacements {
        match &rep.target {
            Target::Root(path) => {
                out.push(delta_tag::TARGET_ROOT);
                encode_path(&mut out, path);
            }
            Target::Shared(id, path) => {
                out.push(delta_tag::TARGET_SHARED);
                write_varint(&mut out, *id as u64);
                encode_path(&mut out, path);
            }
        }
        encode_snapshot(&mut out, &rep.subtree);
    }
    write_varint(&mut out, delta.appended_shared.len() as u64);
    for s in &delta.appended_shared {
        encode_snapshot(&mut out, s);
    }
    match delta.truncate_shared_to {
        None => out.push(0),
        Some(n) => {
            out.push(1);
            write_varint(&mut out, n as u64);
        }
    }
    out
}

/// Deserializes a delta produced by [`encode_delta`]; rejects trailing
/// garbage.
pub fn decode_delta(bytes: &[u8]) -> Result<Delta, CodecError> {
    let mut r = Reader {
        data: bytes,
        pos: 0,
    };
    if r.take(4)? != DELTA_MAGIC || r.byte()? != VERSION {
        return Err(CodecError::BadHeader);
    }
    let n_reps = r.varint()? as usize;
    let mut replacements = Vec::with_capacity(n_reps.min(4096));
    for _ in 0..n_reps {
        let target = match r.byte()? {
            delta_tag::TARGET_ROOT => Target::Root(decode_path(&mut r)?),
            delta_tag::TARGET_SHARED => {
                let id = decode_usize(&mut r)?;
                Target::Shared(id, decode_path(&mut r)?)
            }
            other => return Err(CodecError::BadTag(other)),
        };
        let subtree = decode_snapshot(&mut r, 0)?;
        replacements.push(Replacement { target, subtree });
    }
    let n_appended = r.varint()? as usize;
    let mut appended_shared = Vec::with_capacity(n_appended.min(4096));
    for _ in 0..n_appended {
        appended_shared.push(decode_snapshot(&mut r, 0)?);
    }
    let truncate_shared_to = match r.byte()? {
        0 => None,
        1 => Some(decode_usize(&mut r)?),
        other => return Err(CodecError::BadTag(other)),
    };
    if r.pos != bytes.len() {
        return Err(CodecError::TrailingBytes(bytes.len() - r.pos));
    }
    Ok(Delta {
        replacements,
        appended_shared,
        truncate_shared_to,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::checkpoint;
    use crate::CkRc;
    use proptest::prelude::*;

    fn roundtrip_snapshot(s: &Snapshot) -> Snapshot {
        let cp = Checkpoint {
            root: s.clone(),
            shared: vec![],
            stats: CheckpointStats::default(),
        };
        decode(&encode(&cp)).expect("roundtrip").root
    }

    #[test]
    fn encode_is_a_chaos_site() {
        use rbs_core::fault::{self, FaultKind, FaultPlan, FaultSite, InjectedFault};
        use std::sync::Arc;
        let cp = Checkpoint {
            root: Snapshot::UInt(7),
            shared: vec![],
            stats: CheckpointStats::default(),
        };
        // Encode occurrence 1 (the second encode in the scope) panics.
        let plan = Arc::new(FaultPlan::new(0).inject_window(
            FaultSite::CheckpointEncode,
            FaultKind::Panic,
            0,
            1,
            2,
        ));
        fault::scoped(plan, || {
            let bytes = encode(&cp);
            assert_eq!(decode(&bytes).unwrap().root, Snapshot::UInt(7));
            let err =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| encode(&cp))).unwrap_err();
            let payload = err.downcast_ref::<InjectedFault>().expect("typed payload");
            assert_eq!(payload.site, FaultSite::CheckpointEncode);
            // The schedule has passed; encoding works again.
            assert!(!encode(&cp).is_empty());
        });
    }

    #[test]
    fn scalar_roundtrips() {
        for s in [
            Snapshot::Unit,
            Snapshot::Bool(true),
            Snapshot::Bool(false),
            Snapshot::UInt(0),
            Snapshot::UInt(u64::MAX),
            Snapshot::Int(i64::MIN),
            Snapshot::Int(-1),
            Snapshot::Float(1.5),
            Snapshot::Float(f64::NEG_INFINITY),
            Snapshot::Char('λ'),
            Snapshot::Str("firewall".into()),
            Snapshot::Str(String::new()),
            Snapshot::Bytes(vec![0, 255, 127]),
            Snapshot::Opt(None),
            Snapshot::Opt(Some(Box::new(Snapshot::UInt(7)))),
            Snapshot::Shared(12345),
        ] {
            assert_eq!(roundtrip_snapshot(&s), s);
        }
    }

    #[test]
    fn nan_float_roundtrips_bitwise() {
        let s = Snapshot::Float(f64::NAN);
        let back = roundtrip_snapshot(&s);
        let Snapshot::Float(f) = back else { panic!() };
        assert!(f.is_nan());
    }

    #[test]
    fn full_checkpoint_roundtrip_with_sharing() {
        let shared = CkRc::new(String::from("rule"));
        let table = vec![shared.clone(), shared];
        let cp = checkpoint(&table);
        let decoded = decode(&encode(&cp)).unwrap();
        assert_eq!(decoded.root, cp.root);
        assert_eq!(decoded.shared, cp.shared);
        // And the decoded checkpoint restores with sharing intact.
        let back: Vec<CkRc<String>> = crate::ctx::restore(&decoded).unwrap();
        assert!(CkRc::ptr_eq(&back[0], &back[1]));
    }

    #[test]
    fn header_is_checked() {
        let cp = checkpoint(&1u32);
        let mut bytes = encode(&cp);
        bytes[0] = b'X';
        assert_eq!(decode(&bytes).unwrap_err(), CodecError::BadHeader);
        let mut bytes = encode(&cp);
        bytes[4] = 99; // bad version
        assert_eq!(decode(&bytes).unwrap_err(), CodecError::BadHeader);
    }

    #[test]
    fn truncation_detected() {
        let cp = checkpoint(&vec![String::from("abcdef")]);
        let bytes = encode(&cp);
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let cp = checkpoint(&1u32);
        let mut bytes = encode(&cp);
        bytes.push(0);
        assert_eq!(decode(&bytes).unwrap_err(), CodecError::TrailingBytes(1));
    }

    #[test]
    fn bad_tag_detected() {
        let cp = checkpoint(&1u32);
        let mut bytes = encode(&cp);
        bytes[5] = 0xEE; // the root tag
        assert_eq!(decode(&bytes).unwrap_err(), CodecError::BadTag(0xEE));
    }

    #[test]
    fn bad_utf8_detected() {
        let cp = checkpoint(&String::from("ab"));
        let mut bytes = encode(&cp);
        // Root is STR tag, len 2, then the two content bytes.
        let n = bytes.len();
        bytes[n - 3] = 0xFF;
        bytes[n - 2] = 0xFE;
        assert_eq!(decode(&bytes).unwrap_err(), CodecError::BadUtf8);
    }

    #[test]
    fn adversarial_nesting_rejected_not_overflowed() {
        // A hand-built bomb: OPT_SOME repeated far past any real
        // structure's depth. Without the depth guard this recurses the
        // decoder off its stack; with it, a clean typed error.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(VERSION);
        bytes.extend(std::iter::repeat_n(tag::OPT_SOME, MAX_DECODE_DEPTH + 10));
        bytes.push(tag::UNIT);
        write_varint(&mut bytes, 0); // empty shared table
        assert_eq!(decode(&bytes).unwrap_err(), CodecError::TooDeep);
    }

    #[test]
    fn legitimate_deep_nesting_roundtrips() {
        let mut s = Snapshot::UInt(1);
        for _ in 0..(MAX_DECODE_DEPTH - 2) {
            s = Snapshot::Opt(Some(Box::new(s)));
        }
        assert_eq!(roundtrip_snapshot(&s), s);
    }

    #[test]
    fn delta_roundtrips() {
        use crate::diff::diff;
        let a = checkpoint(&vec![1u32, 2, 3]);
        let b = checkpoint(&vec![1u32, 9, 3]);
        let d = diff(&a, &b);
        let back = decode_delta(&encode_delta(&d)).unwrap();
        assert_eq!(back, d);
        assert_eq!(crate::diff::apply(&a, &back).unwrap().root, b.root);
    }

    #[test]
    fn delta_decoder_rejects_garbage() {
        assert_eq!(decode_delta(b"RBS"), Err(CodecError::UnexpectedEof));
        assert_eq!(decode_delta(b"RBSC\x01"), Err(CodecError::BadHeader));
        assert_eq!(decode_delta(b"XXXXX"), Err(CodecError::BadHeader));
        let d = Delta::default();
        let mut bytes = encode_delta(&d);
        bytes.push(7);
        assert_eq!(decode_delta(&bytes), Err(CodecError::TrailingBytes(1)));
        let bytes = encode_delta(&d);
        for cut in 0..bytes.len() {
            assert!(decode_delta(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn delta_encode_is_a_chaos_site() {
        use rbs_core::fault::{self, FaultKind, FaultPlan, FaultSite, InjectedFault};
        use std::sync::Arc;
        let plan = Arc::new(FaultPlan::new(0).inject_window(
            FaultSite::CheckpointEncode,
            FaultKind::Panic,
            0,
            0,
            1,
        ));
        fault::scoped(plan, || {
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                encode_delta(&Delta::default())
            }))
            .unwrap_err();
            let payload = err.downcast_ref::<InjectedFault>().expect("typed payload");
            assert_eq!(payload.site, FaultSite::CheckpointEncode);
        });
    }

    #[test]
    fn varint_encoding_is_compact() {
        let mut small = Vec::new();
        write_varint(&mut small, 5);
        assert_eq!(small.len(), 1);
        let mut big = Vec::new();
        write_varint(&mut big, u64::MAX);
        assert_eq!(big.len(), 10);
    }

    fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
        let leaf = prop_oneof![
            Just(Snapshot::Unit),
            any::<bool>().prop_map(Snapshot::Bool),
            any::<u64>().prop_map(Snapshot::UInt),
            any::<i64>().prop_map(Snapshot::Int),
            any::<f64>()
                .prop_filter("nan compares oddly", |f| !f.is_nan())
                .prop_map(Snapshot::Float),
            any::<char>().prop_map(Snapshot::Char),
            ".*".prop_map(Snapshot::Str),
            proptest::collection::vec(any::<u8>(), 0..32).prop_map(Snapshot::Bytes),
            (0usize..1000).prop_map(Snapshot::Shared),
        ];
        leaf.prop_recursive(4, 64, 8, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..6).prop_map(Snapshot::Seq),
                proptest::collection::vec((inner.clone(), inner.clone()), 0..4)
                    .prop_map(Snapshot::Map),
                inner.clone().prop_map(|s| Snapshot::Opt(Some(Box::new(s)))),
                Just(Snapshot::Opt(None)),
            ]
        })
    }

    proptest! {
        /// Any snapshot tree survives encode → decode byte-exactly.
        #[test]
        fn arbitrary_snapshots_roundtrip(root in arb_snapshot(), shared in proptest::collection::vec(arb_snapshot(), 0..4)) {
            let cp = Checkpoint { root, shared, stats: CheckpointStats::default() };
            let back = decode(&encode(&cp)).unwrap();
            prop_assert_eq!(back.root, cp.root);
            prop_assert_eq!(back.shared, cp.shared);
        }

        /// Decoding arbitrary bytes never panics — it fails cleanly.
        #[test]
        fn decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode(&bytes);
        }

        /// The delta wire format roundtrips any diff exactly.
        #[test]
        fn arbitrary_deltas_roundtrip(root_a in arb_snapshot(), root_b in arb_snapshot()) {
            let a = Checkpoint { root: root_a, shared: vec![], stats: CheckpointStats::default() };
            let b = Checkpoint { root: root_b, shared: vec![], stats: CheckpointStats::default() };
            let d = crate::diff::diff(&a, &b);
            prop_assert_eq!(decode_delta(&encode_delta(&d)).unwrap(), d);
        }

        /// The delta decoder is total over arbitrary bytes too.
        #[test]
        fn delta_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_delta(&bytes);
        }

        /// Varints roundtrip for all values.
        #[test]
        fn varint_roundtrip(v in any::<u64>(), s in any::<i64>()) {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut r = Reader { data: &buf, pos: 0 };
            prop_assert_eq!(r.varint().unwrap(), v);

            let mut buf = Vec::new();
            write_varint_signed(&mut buf, s);
            let mut r = Reader { data: &buf, pos: 0 };
            prop_assert_eq!(r.varint_signed().unwrap(), s);
        }
    }
}
