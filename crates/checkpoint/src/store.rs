//! Double-buffered snapshot storage with full/delta cadence.
//!
//! A [`SnapshotStore`] is what a supervised worker records its periodic
//! state snapshots into, and what the supervisor restores from after a
//! crash. Every `full_every`-th record seals a complete checkpoint; the
//! records between seal an incremental [`Delta`](crate::diff::Delta)
//! against the last full one, so steady-state snapshot cost scales with
//! what *changed* since the base, not with total state size (§5's
//! replication argument applied to recovery).
//!
//! The store keeps the two most recent records — `latest` and
//! `previous` — so a snapshot corrupted in place still leaves one
//! restore candidate. Restoring verifies the envelope checksums before
//! decoding anything; all failures are typed [`RestoreError`]s.
//!
//! Crash safety of `record` itself: serialization (where the
//! `CheckpointEncode` chaos site can panic) happens *before* any store
//! mutation, so a fault mid-record unwinds with the buffers untouched —
//! the last good snapshot survives the very fault being injected into
//! the snapshot path.

use crate::ctx::Checkpoint;
use crate::diff;
use crate::envelope::{self, Payload, RestoreError, SnapshotMeta};
use std::sync::Arc;

/// Which of the two buffered records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Buffered {
    /// The most recent record.
    Latest,
    /// The record before it.
    Previous,
}

impl Buffered {
    /// Stable short name (used in reports and JSON).
    pub fn name(&self) -> &'static str {
        match self {
            Buffered::Latest => "latest",
            Buffered::Previous => "previous",
        }
    }
}

/// One restorable unit: a sealed full envelope, plus — for incremental
/// records — a sealed delta envelope applied on top of it.
#[derive(Debug, Clone)]
pub struct SealedSnapshot {
    meta: SnapshotMeta,
    /// The full envelope this record restores from. Delta records share
    /// it (by `Arc`) with their base record.
    base: Arc<Vec<u8>>,
    delta: Option<Vec<u8>>,
}

impl SealedSnapshot {
    /// The record's metadata (epoch, tick, item count).
    pub fn meta(&self) -> SnapshotMeta {
        self.meta
    }

    /// Bytes this record added to the store: the delta envelope for
    /// incremental records, the full envelope otherwise.
    pub fn payload_bytes(&self) -> usize {
        self.delta.as_ref().map_or(self.base.len(), Vec::len)
    }

    /// Verifies and decodes the record into the checkpoint it captured:
    /// checksum-check the full envelope, then (for incremental records)
    /// checksum-check the delta and apply it. Any corruption anywhere in
    /// the chain is a typed error, never a wrong checkpoint.
    pub fn open(&self) -> Result<Checkpoint, RestoreError> {
        let (base_meta, base_payload) = envelope::open(&self.base)?;
        let Payload::Full(base_cp) = base_payload else {
            return Err(RestoreError::BadHeader);
        };
        match &self.delta {
            None => Ok(base_cp),
            Some(bytes) => {
                let (delta_meta, delta_payload) = envelope::open(bytes)?;
                let Payload::Delta(delta) = delta_payload else {
                    return Err(RestoreError::BadHeader);
                };
                if delta_meta.base_epoch != base_meta.epoch {
                    return Err(RestoreError::EpochMismatch {
                        required: delta_meta.base_epoch,
                        found: base_meta.epoch,
                    });
                }
                Ok(diff::apply(&base_cp, &delta)?)
            }
        }
    }
}

/// Cumulative cost counters for one store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Full snapshots sealed.
    pub full_snapshots: u64,
    /// Incremental (delta) snapshots sealed.
    pub delta_snapshots: u64,
    /// Bytes across all full envelopes sealed.
    pub full_bytes: u64,
    /// Bytes across all delta envelopes sealed.
    pub delta_bytes: u64,
}

impl StoreStats {
    /// Total records sealed.
    pub fn snapshots_taken(&self) -> u64 {
        self.full_snapshots + self.delta_snapshots
    }
}

/// Double-buffered snapshot storage for one worker's state.
#[derive(Debug)]
pub struct SnapshotStore {
    /// Every Nth record is a full snapshot (min 1).
    full_every: u32,
    /// Records sealed since the last full one.
    since_full: u32,
    next_epoch: u64,
    /// The last full record's metadata, sealed bytes, and plaintext
    /// checkpoint (the diff base for incremental records).
    base: Option<(SnapshotMeta, Arc<Vec<u8>>, Checkpoint)>,
    latest: Option<SealedSnapshot>,
    previous: Option<SealedSnapshot>,
    stats: StoreStats,
}

impl SnapshotStore {
    /// Creates an empty store sealing a full snapshot every
    /// `full_every` records (clamped to at least 1; 1 means every
    /// record is full and no deltas are ever produced).
    pub fn new(full_every: u32) -> Self {
        Self {
            full_every: full_every.max(1),
            since_full: 0,
            next_epoch: 1,
            base: None,
            latest: None,
            previous: None,
            stats: StoreStats::default(),
        }
    }

    /// Seals `cp` into the store as the new latest record, rotating the
    /// old latest into `previous`. `tick` and `items` are recorded in
    /// the envelope for state-loss accounting at restore time; `schema`
    /// is the owner's state-schema version, which restore paths compare
    /// against the target pipeline's schema to decide between a direct
    /// restore and a [`StateMigrator`](crate::migrate::StateMigrator)
    /// pass.
    ///
    /// Serialization happens before any mutation: a panic injected into
    /// the encoder (the `CheckpointEncode` chaos site) leaves the store
    /// exactly as it was.
    pub fn record(&mut self, cp: &Checkpoint, tick: u64, items: u64, schema: u32) -> SnapshotMeta {
        let epoch = self.next_epoch;
        let full = match &self.base {
            None => true,
            Some(_) => self.since_full + 1 >= self.full_every,
        };
        if full {
            let meta = SnapshotMeta {
                epoch,
                base_epoch: epoch,
                tick,
                items,
                schema,
            };
            let bytes = Arc::new(envelope::seal_full(meta, cp));
            self.next_epoch += 1;
            self.since_full = 0;
            self.stats.full_snapshots += 1;
            self.stats.full_bytes += bytes.len() as u64;
            self.base = Some((meta, Arc::clone(&bytes), cp.clone()));
            self.rotate(SealedSnapshot {
                meta,
                base: bytes,
                delta: None,
            });
            meta
        } else {
            let (base_meta, base_bytes, base_cp) =
                self.base.as_ref().expect("delta records have a base");
            let delta = diff::diff(base_cp, cp);
            let meta = SnapshotMeta {
                epoch,
                base_epoch: base_meta.epoch,
                tick,
                items,
                schema,
            };
            let delta_bytes = envelope::seal_delta(meta, &delta);
            let base_bytes = Arc::clone(base_bytes);
            self.next_epoch += 1;
            self.since_full += 1;
            self.stats.delta_snapshots += 1;
            self.stats.delta_bytes += delta_bytes.len() as u64;
            self.rotate(SealedSnapshot {
                meta,
                base: base_bytes,
                delta: Some(delta_bytes),
            });
            meta
        }
    }

    fn rotate(&mut self, record: SealedSnapshot) {
        self.previous = self.latest.take();
        self.latest = Some(record);
    }

    /// The most recent record, if any.
    pub fn latest(&self) -> Option<&SealedSnapshot> {
        self.latest.as_ref()
    }

    /// The record before the latest, if any.
    pub fn previous(&self) -> Option<&SealedSnapshot> {
        self.previous.as_ref()
    }

    /// The selected buffered record.
    pub fn buffered(&self, which: Buffered) -> Option<&SealedSnapshot> {
        match which {
            Buffered::Latest => self.latest(),
            Buffered::Previous => self.previous(),
        }
    }

    /// Verifies and decodes the selected record; `None` when that buffer
    /// is empty.
    pub fn open_buffered(&self, which: Buffered) -> Option<Result<Checkpoint, RestoreError>> {
        self.buffered(which).map(SealedSnapshot::open)
    }

    /// Cumulative cost counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Flips one bit in the selected record's envelope — chaos tooling
    /// for corrupted-snapshot tests. Returns `false` when the buffer is
    /// empty. Delta records are corrupted in their delta envelope; the
    /// shared base is copied-on-write first so a sibling record sharing
    /// it stays intact.
    pub fn corrupt(&mut self, which: Buffered) -> bool {
        let record = match which {
            Buffered::Latest => self.latest.as_mut(),
            Buffered::Previous => self.previous.as_mut(),
        };
        let Some(record) = record else {
            return false;
        };
        match &mut record.delta {
            Some(bytes) => {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x01;
            }
            None => {
                let bytes = Arc::make_mut(&mut record.base);
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x01;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::checkpoint;

    fn cp_of(v: &[u64]) -> Checkpoint {
        checkpoint(&v.to_vec())
    }

    #[test]
    fn full_delta_cadence() {
        let mut store = SnapshotStore::new(3);
        for i in 0..7u64 {
            store.record(&cp_of(&[i]), i, 1, 0);
        }
        // Records 1, 4, 7 are full (every 3rd), the rest deltas.
        let s = store.stats();
        assert_eq!(s.full_snapshots, 3);
        assert_eq!(s.delta_snapshots, 4);
        assert_eq!(s.snapshots_taken(), 7);
    }

    #[test]
    fn epochs_are_monotonic_and_buffers_rotate() {
        let mut store = SnapshotStore::new(2);
        assert!(store.latest().is_none());
        store.record(&cp_of(&[1]), 10, 1, 0);
        store.record(&cp_of(&[2]), 20, 1, 0);
        store.record(&cp_of(&[3]), 30, 1, 0);
        let latest = store.latest().unwrap().meta();
        let previous = store.previous().unwrap().meta();
        assert_eq!(latest.epoch, 3);
        assert_eq!(previous.epoch, 2);
        assert_eq!(latest.tick, 30);
        assert!(latest.epoch > previous.epoch);
    }

    #[test]
    fn delta_records_restore_exactly() {
        let mut base: Vec<u64> = (0..64).collect();
        let mut store = SnapshotStore::new(10);
        store.record(&cp_of(&base), 1, 64, 0);
        base[40] = 999;
        store.record(&cp_of(&base), 2, 64, 0); // delta
        let latest = store.open_buffered(Buffered::Latest).unwrap().unwrap();
        assert_eq!(latest.root, cp_of(&base).root);
        let previous = store.open_buffered(Buffered::Previous).unwrap().unwrap();
        base[40] = 40;
        assert_eq!(previous.root, cp_of(&base).root);
        assert!(store.latest().unwrap().meta().is_delta());
        // The delta carried one scalar, not the whole structure.
        assert!(
            store.latest().unwrap().payload_bytes() < store.previous().unwrap().payload_bytes()
        );
    }

    #[test]
    fn corruption_is_detected_per_buffer() {
        let mut store = SnapshotStore::new(1);
        store.record(&cp_of(&[1, 2, 3]), 1, 3, 0);
        store.record(&cp_of(&[4, 5, 6]), 2, 3, 0);
        assert!(store.corrupt(Buffered::Latest));
        assert!(store.open_buffered(Buffered::Latest).unwrap().is_err());
        // Previous is a separate full envelope: still intact.
        let prev = store.open_buffered(Buffered::Previous).unwrap().unwrap();
        assert_eq!(prev.root, cp_of(&[1, 2, 3]).root);
    }

    #[test]
    fn corrupting_a_delta_spares_its_shared_base() {
        let mut store = SnapshotStore::new(10);
        store.record(&cp_of(&[1]), 1, 1, 0); // full — becomes the shared base
        store.record(&cp_of(&[2]), 2, 1, 0); // delta on it
        store.record(&cp_of(&[3]), 3, 1, 0); // delta on it
        assert!(store.corrupt(Buffered::Latest));
        assert!(store.open_buffered(Buffered::Latest).unwrap().is_err());
        // Previous shares the same base envelope and must survive.
        let prev = store.open_buffered(Buffered::Previous).unwrap().unwrap();
        assert_eq!(prev.root, cp_of(&[2]).root);
    }

    #[test]
    fn corrupt_empty_buffer_reports_nothing_to_corrupt() {
        let mut store = SnapshotStore::new(1);
        assert!(!store.corrupt(Buffered::Latest));
        store.record(&cp_of(&[1]), 1, 1, 0);
        assert!(!store.corrupt(Buffered::Previous));
    }

    #[test]
    fn encode_fault_leaves_store_unchanged() {
        use rbs_core::fault::{self, FaultKind, FaultPlan, FaultSite};
        use std::sync::Arc;
        let mut store = SnapshotStore::new(1);
        store.record(&cp_of(&[1]), 1, 1, 0);
        let plan = Arc::new(FaultPlan::new(0).inject_window(
            FaultSite::CheckpointEncode,
            FaultKind::Panic,
            0,
            0,
            1,
        ));
        fault::scoped(plan, || {
            let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                store.record(&cp_of(&[2]), 2, 1, 0)
            }));
            assert!(panicked.is_err(), "the injected fault must fire");
        });
        // The failed record committed nothing: latest is still epoch 1,
        // previous still empty, and the next record gets epoch 2.
        assert_eq!(store.latest().unwrap().meta().epoch, 1);
        assert!(store.previous().is_none());
        let meta = store.record(&cp_of(&[3]), 3, 1, 0);
        assert_eq!(meta.epoch, 2);
        assert_eq!(
            store.open_buffered(Buffered::Latest).unwrap().unwrap().root,
            cp_of(&[3]).root
        );
    }
}
