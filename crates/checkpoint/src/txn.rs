//! Transactions on checkpointable state.
//!
//! §5 lists transactions first among the techniques that "involve
//! snapshotting parts of program state". With [`crate::Checkpointable`]
//! in hand, a transaction is small: snapshot on begin, mutate freely,
//! commit by dropping the snapshot or abort by restoring it. Ownership
//! makes the API airtight — the value *moves into* the transaction, so
//! no alias can observe intermediate state or race the rollback:
//!
//! ```compile_fail
//! use rbs_checkpoint::txn::Transaction;
//!
//! let value = vec![1u32, 2, 3];
//! let txn = Transaction::begin(value);
//! // ERROR: `value` moved into the transaction; only the transaction's
//! // accessors can reach it until commit or abort.
//! let _ = value.len();
//! ```

use crate::ctx::{checkpoint, restore, Checkpoint};
use crate::snapshot::SnapshotError;
use crate::traits::Checkpointable;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// An in-flight transaction over a checkpointable value.
#[derive(Debug)]
pub struct Transaction<T: Checkpointable> {
    value: T,
    begin_snapshot: Checkpoint,
    /// Nested savepoints (named, LIFO).
    savepoints: Vec<(String, Checkpoint)>,
}

impl<T: Checkpointable> Transaction<T> {
    /// Starts a transaction, taking ownership of the value and
    /// snapshotting its state.
    pub fn begin(value: T) -> Self {
        let begin_snapshot = checkpoint(&value);
        Self {
            value,
            begin_snapshot,
            savepoints: Vec::new(),
        }
    }

    /// Read access to the working value.
    pub fn get(&self) -> &T {
        &self.value
    }

    /// Write access to the working value.
    pub fn get_mut(&mut self) -> &mut T {
        &mut self.value
    }

    /// Creates a named savepoint at the current state.
    pub fn savepoint(&mut self, name: impl Into<String>) {
        self.savepoints.push((name.into(), checkpoint(&self.value)));
    }

    /// Rolls back to (and discards) the most recent savepoint named
    /// `name`, along with any savepoints stacked above it. Returns
    /// `false` if no such savepoint exists (state untouched).
    pub fn rollback_to(&mut self, name: &str) -> Result<bool, SnapshotError> {
        let Some(idx) = self.savepoints.iter().rposition(|(n, _)| n == name) else {
            return Ok(false);
        };
        let (_, snap) = self.savepoints.swap_remove(idx);
        self.savepoints.truncate(idx);
        self.value = restore(&snap)?;
        Ok(true)
    }

    /// Number of live savepoints.
    pub fn savepoint_count(&self) -> usize {
        self.savepoints.len()
    }

    /// Commits: the mutations stand, the snapshots are dropped, and the
    /// value moves back to the caller.
    pub fn commit(self) -> T {
        self.value
    }

    /// Aborts: the begin-time snapshot is restored and returned.
    pub fn abort(self) -> Result<T, SnapshotError> {
        restore(&self.begin_snapshot)
    }

    /// The begin-time snapshot (e.g. to persist via [`crate::codec`]).
    pub fn begin_snapshot(&self) -> &Checkpoint {
        &self.begin_snapshot
    }
}

/// Runs `f` transactionally over `value`: if `f` returns `Ok`, its
/// mutations commit; on `Err` *or panic*, the value rolls back to its
/// state before the call. The error (or a [`TxnAborted::Panicked`]
/// marker) is reported alongside the restored value.
pub fn with_transaction<T, R, E>(
    value: T,
    f: impl FnOnce(&mut T) -> Result<R, E>,
) -> (T, Result<R, TxnAborted<E>>)
where
    T: Checkpointable,
{
    let mut txn = Transaction::begin(value);
    let outcome = catch_unwind(AssertUnwindSafe(|| f(txn.get_mut())));
    match outcome {
        Ok(Ok(r)) => (txn.commit(), Ok(r)),
        Ok(Err(e)) => {
            let restored = txn.abort().expect("begin snapshot restores its own type");
            (restored, Err(TxnAborted::Rolled(e)))
        }
        Err(_) => {
            let restored = txn.abort().expect("begin snapshot restores its own type");
            (restored, Err(TxnAborted::Panicked))
        }
    }
}

/// Why a [`with_transaction`] closure's changes were rolled back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnAborted<E> {
    /// The closure returned this error.
    Rolled(E),
    /// The closure panicked; the panic was caught at the transaction
    /// boundary (mirroring the domain-boundary unwinding of §3).
    Panicked,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CkRc;

    #[test]
    fn commit_keeps_mutations() {
        let mut txn = Transaction::begin(vec![1u32, 2]);
        txn.get_mut().push(3);
        assert_eq!(txn.get().len(), 3);
        assert_eq!(txn.commit(), vec![1, 2, 3]);
    }

    #[test]
    fn abort_restores_begin_state() {
        let mut txn = Transaction::begin(vec![1u32, 2]);
        txn.get_mut().clear();
        assert!(txn.get().is_empty());
        assert_eq!(txn.abort().unwrap(), vec![1, 2]);
    }

    #[test]
    fn savepoints_nest_lifo() {
        let mut txn = Transaction::begin(vec![1u32]);
        txn.get_mut().push(2);
        txn.savepoint("after-2");
        txn.get_mut().push(3);
        txn.savepoint("after-3");
        txn.get_mut().push(4);
        assert_eq!(txn.savepoint_count(), 2);

        assert!(txn.rollback_to("after-3").unwrap());
        assert_eq!(txn.get(), &vec![1, 2, 3]);
        assert_eq!(txn.savepoint_count(), 1);

        assert!(txn.rollback_to("after-2").unwrap());
        assert_eq!(txn.get(), &vec![1, 2]);
        assert_eq!(txn.savepoint_count(), 0);

        assert!(!txn.rollback_to("gone").unwrap());
        assert_eq!(txn.commit(), vec![1, 2]);
    }

    #[test]
    fn rollback_to_earlier_discards_later_savepoints() {
        let mut txn = Transaction::begin(0u64);
        txn.savepoint("a");
        *txn.get_mut() = 1;
        txn.savepoint("b");
        *txn.get_mut() = 2;
        assert!(txn.rollback_to("a").unwrap());
        assert_eq!(*txn.get(), 0);
        assert_eq!(txn.savepoint_count(), 0, "b was above a and is gone");
    }

    #[test]
    fn with_transaction_commits_on_ok() {
        let (value, result) = with_transaction(vec![1u32], |v| {
            v.push(2);
            Ok::<_, ()>(v.len())
        });
        assert_eq!(value, vec![1, 2]);
        assert_eq!(result, Ok(2));
    }

    #[test]
    fn with_transaction_rolls_back_on_err() {
        let (value, result) = with_transaction(vec![1u32], |v| {
            v.push(2);
            v.push(3);
            Err::<(), _>("validation failed")
        });
        assert_eq!(value, vec![1], "mutations rolled back");
        assert_eq!(result, Err(TxnAborted::Rolled("validation failed")));
    }

    #[test]
    fn with_transaction_rolls_back_on_panic() {
        std::panic::set_hook(Box::new(|_| {}));
        let (value, result) = with_transaction(vec![1u32], |v| {
            v.clear();
            panic!("bug in the middle of the transaction");
            #[allow(unreachable_code)]
            Ok::<(), ()>(())
        });
        let _ = std::panic::take_hook();
        assert_eq!(value, vec![1]);
        assert_eq!(result, Err(TxnAborted::Panicked));
    }

    #[test]
    fn shared_structure_transacts_correctly() {
        // Aliased nodes: the rollback must restore sharing, not flatten it.
        let shared = CkRc::new(std::cell::RefCell::new(10u32));
        let pair = vec![shared.clone(), shared];
        let (restored, result) = with_transaction(pair, |v| {
            *v[0].borrow_mut() = 99;
            Err::<(), _>("abort")
        });
        assert!(matches!(result, Err(TxnAborted::Rolled("abort"))));
        assert_eq!(*restored[0].borrow(), 10, "value rolled back");
        assert!(CkRc::ptr_eq(&restored[0], &restored[1]), "sharing survived");
    }

    #[test]
    fn begin_snapshot_is_exposed_for_persistence() {
        let txn = Transaction::begin(7u32);
        let bytes = crate::codec::encode(txn.begin_snapshot());
        let decoded = crate::codec::decode(&bytes).unwrap();
        let v: u32 = crate::ctx::restore(&decoded).unwrap();
        assert_eq!(v, 7);
    }
}
