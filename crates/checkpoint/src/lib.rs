//! Automatic checkpointing for arbitrary data structures (§5).
//!
//! Checkpointing, transactions, and replication all need to snapshot
//! pointer-linked structures in memory. In a conventional language a
//! naïve traversal duplicates every object reachable through more than
//! one pointer (the paper's Figure 3b), and the standard fix — a global
//! set of visited addresses — taxes every node with a hash lookup.
//!
//! Rust collapses the problem: by default every reference is the unique
//! owner of its pointee, so traversal without any bookkeeping is already
//! correct. Aliasing exists only where the type says so (`Rc`/`Arc`), and
//! that is the one place dedup logic is needed. [`CkRc`]/[`CkArc`] carry
//! an internal *epoch mark*: "sets an internal flag the first time
//! checkpoint() is called on the object and checks this flag to avoid
//! creating additional copies when graph traversal hits the object again
//! via a different alias" — O(1) per alias hit, no global table.
//!
//! Crate layout:
//!
//! - [`snapshot`]: the serialized value representation and its metrics;
//! - [`traits`]: the [`Checkpointable`] trait and impls for scalars and
//!   standard containers (the paper's "compiler plugin" induction);
//! - [`ckrc`] / [`ckarc`]: the alias-aware shared pointers (single- and
//!   multi-threaded), plus `Mutex`/`RefCell` support for shared mutable
//!   state;
//! - [`ctx`]: checkpoint/restore drivers. [`DedupMode`] selects between
//!   the epoch flag, a conventional address set, and no dedup at all, so
//!   experiment E6 can compare all three on identical data;
//! - [`checkpointable!`](crate::checkpointable): a `macro_rules!` stand-in
//!   for the paper's compiler plugin, generating the inductive impl for
//!   user structs;
//! - [`envelope`] / [`store`]: sealed snapshots with integrity metadata
//!   (checksum footer, monotonic epochs, typed [`RestoreError`]) and the
//!   double-buffered full/delta [`SnapshotStore`] the runtime's warm
//!   recovery restores from;
//! - [`migrate`]: the [`StateMigrator`] hook live upgrades use to carry
//!   snapshots across a state-schema change instead of restarting cold.
//!
//! # Quickstart
//!
//! ```
//! use rbs_checkpoint::{checkpoint, restore, CkRc};
//!
//! // A rule shared by two table entries (aliasing, visible in the type).
//! let shared = CkRc::new(String::from("drop tcp:22"));
//! let table = vec![shared.clone(), shared.clone()];
//!
//! let cp = checkpoint(&table);
//! assert_eq!(cp.stats.shared_hits, 1, "second alias reused the first copy");
//!
//! let restored: Vec<CkRc<String>> = restore(&cp).unwrap();
//! assert!(CkRc::ptr_eq(&restored[0], &restored[1]), "sharing is rebuilt");
//! ```

pub mod ckarc;
pub mod ckrc;
pub mod codec;
pub mod ctx;
pub mod derive;
pub mod diff;
pub mod envelope;
pub mod migrate;
pub mod snapshot;
pub mod store;
pub mod traits;
pub mod txn;

pub use ckarc::CkArc;
pub use ckrc::CkRc;
pub use codec::{decode, decode_delta, encode, encode_delta, CodecError};
pub use ctx::{
    checkpoint, checkpoint_scope, checkpoint_with_mode, restore, restore_scope, Checkpoint,
    CheckpointCtx, CheckpointStats, DedupMode, RestoreCtx,
};
pub use diff::{apply, diff, Delta};
pub use envelope::{RestoreError, SnapshotMeta};
pub use migrate::{MigrateError, MigratorSet, StateMigrator};
pub use snapshot::{Snapshot, SnapshotError};
pub use store::{Buffered, SealedSnapshot, SnapshotStore, StoreStats};
pub use traits::Checkpointable;
pub use txn::{with_transaction, Transaction, TxnAborted};
