//! The snapshot value representation.
//!
//! A [`Snapshot`] is an owned, self-contained tree; sharing in the source
//! structure is encoded as [`Snapshot::Shared`] indices into the
//! checkpoint's shared-node table, so a checkpoint of a DAG stays a DAG
//! (no duplicated subtrees) and restore can rebuild the exact sharing.

use std::fmt;

/// A checkpointed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Snapshot {
    /// `()` and other zero-sized values.
    Unit,
    /// Booleans.
    Bool(bool),
    /// All unsigned integers (widened).
    UInt(u64),
    /// All signed integers (widened).
    Int(i64),
    /// Both float widths (widened).
    Float(f64),
    /// A single character.
    Char(char),
    /// Strings.
    Str(String),
    /// Raw bytes (`Vec<u8>` takes this compact form, not `Seq`).
    Bytes(Vec<u8>),
    /// Sequences: vectors, deques, arrays, tuples, struct fields.
    Seq(Vec<Snapshot>),
    /// Key-value collections.
    Map(Vec<(Snapshot, Snapshot)>),
    /// `Option`.
    Opt(Option<Box<Snapshot>>),
    /// A reference to entry `usize` of the checkpoint's shared-node
    /// table (an aliased `CkRc`/`CkArc` target).
    Shared(usize),
}

impl Snapshot {
    /// Number of nodes in this snapshot tree (shared references count as
    /// one node; the referenced content is counted once, in the shared
    /// table). This is the metric Figure 3 is about: naïve traversal
    /// inflates it, dedup keeps it equal to the object graph's size.
    pub fn node_count(&self) -> usize {
        match self {
            Snapshot::Seq(items) => 1 + items.iter().map(Snapshot::node_count).sum::<usize>(),
            Snapshot::Map(pairs) => {
                1 + pairs
                    .iter()
                    .map(|(k, v)| k.node_count() + v.node_count())
                    .sum::<usize>()
            }
            Snapshot::Opt(Some(inner)) => 1 + inner.node_count(),
            _ => 1,
        }
    }

    /// A static name for this snapshot's variant, used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Snapshot::Unit => "unit",
            Snapshot::Bool(_) => "bool",
            Snapshot::UInt(_) => "uint",
            Snapshot::Int(_) => "int",
            Snapshot::Float(_) => "float",
            Snapshot::Char(_) => "char",
            Snapshot::Str(_) => "string",
            Snapshot::Bytes(_) => "bytes",
            Snapshot::Seq(_) => "seq",
            Snapshot::Map(_) => "map",
            Snapshot::Opt(_) => "option",
            Snapshot::Shared(_) => "shared",
        }
    }

    /// Approximate heap bytes held by this snapshot.
    pub fn approx_bytes(&self) -> usize {
        let own = std::mem::size_of::<Snapshot>();
        match self {
            Snapshot::Str(s) => own + s.len(),
            Snapshot::Bytes(b) => own + b.len(),
            Snapshot::Seq(items) => own + items.iter().map(Snapshot::approx_bytes).sum::<usize>(),
            Snapshot::Map(pairs) => {
                own + pairs
                    .iter()
                    .map(|(k, v)| k.approx_bytes() + v.approx_bytes())
                    .sum::<usize>()
            }
            Snapshot::Opt(Some(inner)) => own + inner.approx_bytes(),
            _ => own,
        }
    }
}

/// Failures during restore (and cycle detection during checkpoint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot's shape does not match the requested type.
    TypeMismatch {
        /// What the restoring type expected.
        expected: &'static str,
        /// A description of what the snapshot held.
        found: &'static str,
    },
    /// A `Shared` index points outside the shared table.
    DanglingShared {
        /// The out-of-range index.
        index: usize,
    },
    /// Two aliases restored the same shared node at different types, or
    /// the node was visited while still being rebuilt (a cycle).
    SharedTypeConflict {
        /// The shared-table index.
        index: usize,
    },
    /// A sequence had the wrong number of elements for a fixed-size
    /// target (array, tuple, struct).
    WrongLength {
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        got: usize,
    },
    /// A checkpoint traversal re-entered a node it is still copying —
    /// the structure contains a reference cycle, which checkpointing
    /// does not support (the paper's workloads are DAGs).
    CyclicSharing,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::TypeMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot type mismatch: expected {expected}, found {found}"
                )
            }
            SnapshotError::DanglingShared { index } => {
                write!(
                    f,
                    "shared reference {index} points outside the shared table"
                )
            }
            SnapshotError::SharedTypeConflict { index } => {
                write!(f, "shared node {index} restored at conflicting types")
            }
            SnapshotError::WrongLength { expected, got } => {
                write!(f, "expected {expected} elements, got {got}")
            }
            SnapshotError::CyclicSharing => {
                write!(f, "cyclic sharing detected during checkpoint")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Shorthand used by trait impls to build mismatch errors.
pub(crate) fn mismatch(expected: &'static str, found: &Snapshot) -> SnapshotError {
    SnapshotError::TypeMismatch {
        expected,
        found: found.kind_name(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_counts_tree_nodes() {
        assert_eq!(Snapshot::Unit.node_count(), 1);
        let seq = Snapshot::Seq(vec![Snapshot::UInt(1), Snapshot::UInt(2)]);
        assert_eq!(seq.node_count(), 3);
        let nested = Snapshot::Seq(vec![seq.clone(), Snapshot::Opt(Some(Box::new(seq)))]);
        assert_eq!(nested.node_count(), 1 + 3 + (1 + 3));
    }

    #[test]
    fn shared_counts_as_one_node() {
        let s = Snapshot::Seq(vec![Snapshot::Shared(0), Snapshot::Shared(0)]);
        assert_eq!(s.node_count(), 3);
    }

    #[test]
    fn map_node_count() {
        let m = Snapshot::Map(vec![(Snapshot::UInt(1), Snapshot::Str("x".into()))]);
        assert_eq!(m.node_count(), 3);
    }

    #[test]
    fn approx_bytes_scales_with_content() {
        let small = Snapshot::Bytes(vec![0; 8]);
        let big = Snapshot::Bytes(vec![0; 800]);
        assert!(big.approx_bytes() > small.approx_bytes() + 700);
        let s = Snapshot::Str("hello".into());
        assert!(s.approx_bytes() >= 5);
    }

    #[test]
    fn error_display() {
        let e = SnapshotError::TypeMismatch {
            expected: "u64",
            found: "string",
        };
        assert_eq!(
            e.to_string(),
            "snapshot type mismatch: expected u64, found string"
        );
        assert!(SnapshotError::DanglingShared { index: 7 }
            .to_string()
            .contains('7'));
        assert!(SnapshotError::CyclicSharing.to_string().contains("cyclic"));
        assert!(SnapshotError::WrongLength {
            expected: 2,
            got: 3
        }
        .to_string()
        .contains("2"));
        assert!(SnapshotError::SharedTypeConflict { index: 1 }
            .to_string()
            .contains("conflicting"));
    }

    #[test]
    fn mismatch_names_variants() {
        let e = mismatch("vec", &Snapshot::Map(vec![]));
        assert_eq!(
            e,
            SnapshotError::TypeMismatch {
                expected: "vec",
                found: "map"
            }
        );
    }
}
