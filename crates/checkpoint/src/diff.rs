//! Structural deltas between checkpoints.
//!
//! §5 motivates snapshotting with checkpointing, transactions *and
//! replication*; replication wants increments, not full copies. A
//! [`Delta`] records the minimal set of subtree replacements that turns
//! one checkpoint into another; shipping the delta (see
//! [`crate::codec`] for bytes) costs space proportional to what
//! *changed*, not to the structure's size.
//!
//! The diff is exact and total: `apply(base, &diff(base, next)) == next`
//! for any two checkpoints (property-tested below).

use crate::ctx::{Checkpoint, CheckpointStats};
use crate::snapshot::{Snapshot, SnapshotError};
use std::fmt;

/// One step into a snapshot tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PathSeg {
    /// Index into a `Seq`.
    Index(usize),
    /// Index into a `Map`'s pair list (0 = key, 1 = value via `Side`).
    MapEntry(usize, Side),
    /// Into the `Some` of an `Opt`.
    OptInner,
}

/// Which half of a map entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The key.
    Key,
    /// The value.
    Value,
}

/// Where a replacement applies.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// Within the root snapshot.
    Root(Vec<PathSeg>),
    /// Within shared-table entry `id`.
    Shared(usize, Vec<PathSeg>),
}

/// One subtree replacement.
#[derive(Debug, Clone, PartialEq)]
pub struct Replacement {
    /// Where the new subtree goes.
    pub target: Target,
    /// The new subtree.
    pub subtree: Snapshot,
}

/// The delta between two checkpoints.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Delta {
    /// Subtree replacements, in application order.
    pub replacements: Vec<Replacement>,
    /// New shared-table entries appended beyond the base's length.
    pub appended_shared: Vec<Snapshot>,
    /// New shared-table length when the table *shrank* (rare: only a
    /// structurally different re-checkpoint does this).
    pub truncate_shared_to: Option<usize>,
}

impl Delta {
    /// True when the checkpoints were identical.
    pub fn is_empty(&self) -> bool {
        self.replacements.is_empty()
            && self.appended_shared.is_empty()
            && self.truncate_shared_to.is_none()
    }

    /// Total snapshot nodes carried by the delta — the replication
    /// payload size metric.
    pub fn payload_nodes(&self) -> usize {
        self.replacements
            .iter()
            .map(|r| r.subtree.node_count())
            .sum::<usize>()
            + self
                .appended_shared
                .iter()
                .map(Snapshot::node_count)
                .sum::<usize>()
    }
}

/// Errors from applying a delta to an incompatible base.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffError {
    /// A path segment did not match the base's structure.
    PathMismatch,
    /// A shared-table index was out of range.
    BadSharedIndex(usize),
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffError::PathMismatch => write!(f, "delta path does not fit the base snapshot"),
            DiffError::BadSharedIndex(i) => write!(f, "shared index {i} out of range"),
        }
    }
}

impl std::error::Error for DiffError {}

impl From<DiffError> for SnapshotError {
    fn from(_: DiffError) -> Self {
        SnapshotError::TypeMismatch {
            expected: "compatible base",
            found: "mismatched delta",
        }
    }
}

/// Computes the delta from `base` to `next`.
pub fn diff(base: &Checkpoint, next: &Checkpoint) -> Delta {
    let mut delta = Delta::default();
    diff_snapshot(
        &base.root,
        &next.root,
        &mut Vec::new(),
        &mut |path, subtree| {
            delta.replacements.push(Replacement {
                target: Target::Root(path),
                subtree,
            });
        },
    );
    let common = base.shared.len().min(next.shared.len());
    for id in 0..common {
        diff_snapshot(
            &base.shared[id],
            &next.shared[id],
            &mut Vec::new(),
            &mut |path, subtree| {
                delta.replacements.push(Replacement {
                    target: Target::Shared(id, path),
                    subtree,
                });
            },
        );
    }
    if next.shared.len() > base.shared.len() {
        delta.appended_shared = next.shared[base.shared.len()..].to_vec();
    } else if next.shared.len() < base.shared.len() {
        delta.truncate_shared_to = Some(next.shared.len());
    }
    delta
}

fn diff_snapshot(
    a: &Snapshot,
    b: &Snapshot,
    path: &mut Vec<PathSeg>,
    emit: &mut impl FnMut(Vec<PathSeg>, Snapshot),
) {
    if a == b {
        return;
    }
    match (a, b) {
        (Snapshot::Seq(xs), Snapshot::Seq(ys)) if xs.len() == ys.len() => {
            for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
                path.push(PathSeg::Index(i));
                diff_snapshot(x, y, path, emit);
                path.pop();
            }
        }
        (Snapshot::Map(xs), Snapshot::Map(ys)) if xs.len() == ys.len() => {
            for (i, ((xk, xv), (yk, yv))) in xs.iter().zip(ys).enumerate() {
                path.push(PathSeg::MapEntry(i, Side::Key));
                diff_snapshot(xk, yk, path, emit);
                path.pop();
                path.push(PathSeg::MapEntry(i, Side::Value));
                diff_snapshot(xv, yv, path, emit);
                path.pop();
            }
        }
        (Snapshot::Opt(Some(x)), Snapshot::Opt(Some(y))) => {
            path.push(PathSeg::OptInner);
            diff_snapshot(x, y, path, emit);
            path.pop();
        }
        // Shape change (or scalar change): replace the whole subtree.
        _ => emit(path.clone(), b.clone()),
    }
}

/// Applies a delta, producing the `next` checkpoint it was computed for.
pub fn apply(base: &Checkpoint, delta: &Delta) -> Result<Checkpoint, DiffError> {
    let mut root = base.root.clone();
    let mut shared = base.shared.clone();
    for r in &delta.replacements {
        match &r.target {
            Target::Root(path) => {
                let slot = navigate(&mut root, path)?;
                *slot = r.subtree.clone();
            }
            Target::Shared(id, path) => {
                let entry = shared.get_mut(*id).ok_or(DiffError::BadSharedIndex(*id))?;
                let slot = navigate(entry, path)?;
                *slot = r.subtree.clone();
            }
        }
    }
    if let Some(n) = delta.truncate_shared_to {
        shared.truncate(n);
    }
    shared.extend(delta.appended_shared.iter().cloned());
    Ok(Checkpoint {
        root,
        shared,
        stats: CheckpointStats::default(),
    })
}

fn navigate<'a>(snap: &'a mut Snapshot, path: &[PathSeg]) -> Result<&'a mut Snapshot, DiffError> {
    let mut cur = snap;
    for seg in path {
        cur = match (seg, cur) {
            (PathSeg::Index(i), Snapshot::Seq(items)) => {
                items.get_mut(*i).ok_or(DiffError::PathMismatch)?
            }
            (PathSeg::MapEntry(i, side), Snapshot::Map(pairs)) => {
                let pair = pairs.get_mut(*i).ok_or(DiffError::PathMismatch)?;
                match side {
                    Side::Key => &mut pair.0,
                    Side::Value => &mut pair.1,
                }
            }
            (PathSeg::OptInner, Snapshot::Opt(Some(inner))) => inner.as_mut(),
            _ => return Err(DiffError::PathMismatch),
        };
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::checkpoint;
    use proptest::prelude::*;

    fn cp(root: Snapshot, shared: Vec<Snapshot>) -> Checkpoint {
        Checkpoint {
            root,
            shared,
            stats: CheckpointStats::default(),
        }
    }

    #[test]
    fn identical_checkpoints_empty_delta() {
        let a = checkpoint(&vec![1u32, 2, 3]);
        let d = diff(&a, &a);
        assert!(d.is_empty());
        assert_eq!(apply(&a, &d).unwrap().root, a.root);
    }

    #[test]
    fn scalar_change_is_one_replacement() {
        let a = checkpoint(&vec![1u32, 2, 3]);
        let b = checkpoint(&vec![1u32, 9, 3]);
        let d = diff(&a, &b);
        assert_eq!(d.replacements.len(), 1);
        assert_eq!(
            d.replacements[0].target,
            Target::Root(vec![PathSeg::Index(1)])
        );
        assert_eq!(apply(&a, &d).unwrap(), strip_stats(&b));
    }

    #[test]
    fn length_change_replaces_the_seq() {
        let a = checkpoint(&vec![1u32, 2]);
        let b = checkpoint(&vec![1u32, 2, 3]);
        let d = diff(&a, &b);
        assert_eq!(d.replacements.len(), 1);
        assert_eq!(d.replacements[0].target, Target::Root(vec![]));
        assert_eq!(apply(&a, &d).unwrap(), strip_stats(&b));
    }

    #[test]
    fn shared_table_changes_tracked() {
        use crate::CkRc;
        let x = CkRc::new(1u32);
        let a = checkpoint(&vec![x.clone(), x.clone()]);
        // Same shape, different shared content.
        let y = CkRc::new(2u32);
        let b = checkpoint(&vec![y.clone(), y]);
        let d = diff(&a, &b);
        assert_eq!(d.replacements.len(), 1);
        assert!(matches!(d.replacements[0].target, Target::Shared(0, _)));
        assert_eq!(apply(&a, &d).unwrap(), strip_stats(&b));
    }

    #[test]
    fn shared_table_growth_appends() {
        let a = cp(Snapshot::Shared(0), vec![Snapshot::UInt(1)]);
        let b = cp(
            Snapshot::Seq(vec![Snapshot::Shared(0), Snapshot::Shared(1)]),
            vec![Snapshot::UInt(1), Snapshot::UInt(2)],
        );
        let d = diff(&a, &b);
        assert_eq!(d.appended_shared.len(), 1);
        assert_eq!(apply(&a, &d).unwrap(), b);
    }

    #[test]
    fn shared_table_shrink_truncates() {
        let a = cp(
            Snapshot::Shared(0),
            vec![Snapshot::UInt(1), Snapshot::UInt(2)],
        );
        let b = cp(Snapshot::Shared(0), vec![Snapshot::UInt(1)]);
        let d = diff(&a, &b);
        assert_eq!(d.truncate_shared_to, Some(1));
        assert_eq!(apply(&a, &d).unwrap(), b);
    }

    #[test]
    fn small_change_in_big_structure_has_small_payload() {
        let mut big: Vec<Vec<u8>> = (0..200).map(|i| vec![i as u8; 64]).collect();
        let a = checkpoint(&crate::traits::VecOf(big.clone()));
        big[42][0] ^= 0xFF;
        let b = checkpoint(&crate::traits::VecOf(big));
        let d = diff(&a, &b);
        assert_eq!(d.replacements.len(), 1);
        assert!(
            d.payload_nodes() * 20 < a.total_nodes(),
            "delta ({}) must be tiny vs. full ({})",
            d.payload_nodes(),
            a.total_nodes()
        );
    }

    #[test]
    fn apply_to_wrong_base_fails_cleanly() {
        let a = checkpoint(&vec![1u32, 2, 3]);
        let b = checkpoint(&vec![1u32, 9, 3]);
        let d = diff(&a, &b);
        let unrelated = checkpoint(&42u32);
        assert_eq!(apply(&unrelated, &d).unwrap_err(), DiffError::PathMismatch);
    }

    fn strip_stats(c: &Checkpoint) -> Checkpoint {
        Checkpoint {
            root: c.root.clone(),
            shared: c.shared.clone(),
            stats: CheckpointStats::default(),
        }
    }

    fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
        let leaf = prop_oneof![
            any::<u64>().prop_map(Snapshot::UInt),
            any::<i64>().prop_map(Snapshot::Int),
            any::<bool>().prop_map(Snapshot::Bool),
            "[a-z]{0,6}".prop_map(Snapshot::Str),
            (0usize..4).prop_map(Snapshot::Shared),
            Just(Snapshot::Opt(None)),
        ];
        leaf.prop_recursive(3, 48, 6, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..5).prop_map(Snapshot::Seq),
                proptest::collection::vec((inner.clone(), inner.clone()), 0..3)
                    .prop_map(Snapshot::Map),
                inner.prop_map(|s| Snapshot::Opt(Some(Box::new(s)))),
            ]
        })
    }

    proptest! {
        /// The delta law: apply(base, diff(base, next)) == next.
        #[test]
        fn diff_apply_roundtrip(
            root_a in arb_snapshot(),
            root_b in arb_snapshot(),
            shared_a in proptest::collection::vec(arb_snapshot(), 0..4),
            shared_b in proptest::collection::vec(arb_snapshot(), 0..4),
        ) {
            let a = cp(root_a, shared_a);
            let b = cp(root_b, shared_b);
            let d = diff(&a, &b);
            prop_assert_eq!(apply(&a, &d).unwrap(), b);
        }

        /// Deltas of identical checkpoints are empty, and empty deltas
        /// are identity transformations.
        #[test]
        fn empty_delta_laws(root in arb_snapshot(), shared in proptest::collection::vec(arb_snapshot(), 0..3)) {
            let a = cp(root, shared);
            let d = diff(&a, &a);
            prop_assert!(d.is_empty());
            prop_assert_eq!(apply(&a, &d).unwrap(), a);
        }
    }
}
