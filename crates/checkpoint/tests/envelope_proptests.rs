//! Property tests for the sealed-envelope boundary: randomly aliased
//! `CkRc`/`CkArc` graphs survive seal → open → restore with their
//! sharing structure rebuilt exactly; any single bit flip anywhere in a
//! sealed envelope is detected (an error, never a wrong value); and
//! `open` is total over arbitrary bytes.

use proptest::prelude::*;
use rbs_checkpoint::envelope::{open, seal_delta, seal_full, Payload, VERSION};
use rbs_checkpoint::{
    checkpoint, checkpointable, diff, restore, CkArc, CkRc, RestoreError, SnapshotMeta,
};

/// Leaf payload held behind the shared pointers.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Node {
    label: u64,
    tags: Vec<u8>,
}

checkpointable!(struct Node { label, tags });

/// A value whose aliasing structure is the thing under test: `arcs` and
/// `rcs` index into two pools, so distinct slots may point at the same
/// allocation.
#[derive(Debug, Clone, PartialEq)]
struct Doc {
    arcs: Vec<CkArc<Node>>,
    rcs: Vec<CkRc<Vec<u64>>>,
}

checkpointable!(struct Doc { arcs, rcs });

/// Builds a randomly aliased document from raw draws. Pools are small
/// and the pick lists longer, so aliasing (including repeated aliasing)
/// is the common case, not the corner. Returns the document plus the
/// alias maps that define its expected sharing: `arc_refs[i]` is the
/// pool slot `doc.arcs[i]` points at (ditto `rc_refs`).
fn build_doc(
    arc_labels: &[u64],
    arc_picks: &[u64],
    rc_pool: &[Vec<u64>],
    rc_picks: &[u64],
) -> (Doc, Vec<usize>, Vec<usize>) {
    let arc_pool: Vec<CkArc<Node>> = arc_labels
        .iter()
        .map(|&label| {
            CkArc::new(Node {
                label,
                tags: label.to_le_bytes()[..(label % 5) as usize].to_vec(),
            })
        })
        .collect();
    let rc_pool: Vec<CkRc<Vec<u64>>> = rc_pool.iter().cloned().map(CkRc::new).collect();
    let arc_refs: Vec<usize> = arc_picks
        .iter()
        .map(|&p| (p % arc_pool.len() as u64) as usize)
        .collect();
    let rc_refs: Vec<usize> = rc_picks
        .iter()
        .map(|&p| (p % rc_pool.len() as u64) as usize)
        .collect();
    let doc = Doc {
        arcs: arc_refs.iter().map(|&i| arc_pool[i].clone()).collect(),
        rcs: rc_refs.iter().map(|&i| rc_pool[i].clone()).collect(),
    };
    (doc, arc_refs, rc_refs)
}

fn meta(epoch: u64) -> SnapshotMeta {
    SnapshotMeta {
        epoch,
        base_epoch: epoch,
        tick: epoch,
        items: 0,
        schema: 0,
    }
}

/// The envelope's checksum, recomputed independently (64-bit FNV-1a over
/// everything before the 8-byte footer) so tests can reseal envelopes
/// they deliberately malform.
fn reseal_checksum(bytes: &mut [u8]) {
    let content_len = bytes.len() - 8;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &bytes[..content_len] {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    bytes[content_len..].copy_from_slice(&h.to_le_bytes());
}

proptest! {
    /// Seal → open → restore over a randomly aliased graph: values come
    /// back equal, and two slots share an allocation after restore
    /// exactly when they shared one before.
    #[test]
    fn aliased_graphs_roundtrip_with_sharing_rebuilt(
        arc_labels in proptest::collection::vec(any::<u64>(), 1..5),
        rc_pool in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..4), 1..4),
        arc_picks in proptest::collection::vec(any::<u64>(), 0..10),
        rc_picks in proptest::collection::vec(any::<u64>(), 0..8),
    ) {
        let (doc, arc_refs, rc_refs) = build_doc(&arc_labels, &arc_picks, &rc_pool, &rc_picks);
        let cp = checkpoint(&doc);
        let sealed = seal_full(meta(1), &cp);
        let (m, payload) = open(&sealed).expect("own seal verifies");
        prop_assert_eq!(m, meta(1));
        let Payload::Full(reopened) = payload else {
            panic!("sealed full, opened a delta");
        };
        prop_assert_eq!(&reopened.root, &cp.root);
        prop_assert_eq!(&reopened.shared, &cp.shared);

        let back: Doc = restore(&reopened).expect("restore");
        prop_assert_eq!(&back, &doc);
        for i in 0..arc_refs.len() {
            for j in 0..arc_refs.len() {
                prop_assert_eq!(
                    CkArc::ptr_eq(&back.arcs[i], &back.arcs[j]),
                    arc_refs[i] == arc_refs[j],
                    "arc aliasing between slots {} and {}", i, j
                );
            }
        }
        for i in 0..rc_refs.len() {
            for j in 0..rc_refs.len() {
                prop_assert_eq!(
                    CkRc::ptr_eq(&back.rcs[i], &back.rcs[j]),
                    rc_refs[i] == rc_refs[j],
                    "rc aliasing between slots {} and {}", i, j
                );
            }
        }
    }

    /// Flipping any single bit of a sealed envelope — header, payload,
    /// or the checksum footer itself — must surface as an error.
    #[test]
    fn any_single_bit_flip_is_detected(
        arc_labels in proptest::collection::vec(any::<u64>(), 1..5),
        rc_pool in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..4), 1..4),
        arc_picks in proptest::collection::vec(any::<u64>(), 0..10),
        rc_picks in proptest::collection::vec(any::<u64>(), 0..8),
        raw_bit in any::<u64>(),
    ) {
        let (doc, _, _) = build_doc(&arc_labels, &arc_picks, &rc_pool, &rc_picks);
        let sealed = seal_full(meta(3), &checkpoint(&doc));
        let bit = (raw_bit % (sealed.len() as u64 * 8)) as usize;
        let mut flipped = sealed;
        flipped[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(open(&flipped).is_err(), "bit {} flipped undetected", bit);
    }

    /// Incremental envelopes get the same guarantees: a sealed delta
    /// reopens equal (and applies back to the exact next checkpoint),
    /// and any single bit flip in it is detected.
    #[test]
    fn delta_envelopes_roundtrip_and_detect_bit_flips(
        arc_labels in proptest::collection::vec(any::<u64>(), 1..5),
        rc_pool in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..4), 1..4),
        arc_picks in proptest::collection::vec(any::<u64>(), 0..10),
        rc_picks in proptest::collection::vec(any::<u64>(), 0..8),
        extra in any::<u64>(),
        raw_bit in any::<u64>(),
    ) {
        let (doc, arc_refs, rc_refs) = build_doc(&arc_labels, &arc_picks, &rc_pool, &rc_picks);
        let base = checkpoint(&doc);
        let mut grown = doc.clone();
        grown.rcs.push(CkRc::new(vec![extra]));
        let next = checkpoint(&grown);
        let delta = diff(&base, &next);

        let sealed = seal_delta(
            SnapshotMeta { epoch: 2, base_epoch: 1, tick: 5, items: 0, schema: 0 },
            &delta,
        );
        let (m, payload) = open(&sealed).expect("own seal verifies");
        prop_assert!(m.is_delta());
        let Payload::Delta(reopened) = payload else {
            panic!("sealed delta, opened a full");
        };
        prop_assert_eq!(&reopened, &delta);
        let rebuilt = rbs_checkpoint::apply(&base, &reopened).expect("apply");
        prop_assert_eq!(&rebuilt.root, &next.root);
        prop_assert_eq!(&rebuilt.shared, &next.shared);
        let back: Doc = restore(&rebuilt).expect("restore");
        prop_assert_eq!(back.arcs.len(), arc_refs.len());
        prop_assert_eq!(back.rcs.len(), rc_refs.len() + 1);

        let bit = (raw_bit % (sealed.len() as u64 * 8)) as usize;
        let mut flipped = sealed;
        flipped[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(open(&flipped).is_err(), "bit {} flipped undetected", bit);
    }

    /// `open` is total: arbitrary bytes produce `Ok` or `Err`, never a
    /// panic — and without a valid checksum they cannot produce `Ok`.
    #[test]
    fn open_is_total_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        prop_assert!(open(&bytes).is_err(), "random bytes passed verification");
    }

    /// An envelope sealed by *any* other format version — a future
    /// build's snapshot landing on this one, the live-upgrade hazard —
    /// must fail with the typed `VersionMismatch` carrying the found and
    /// expected versions: never a checksum error (the envelope is
    /// intact), never a panic, and never a successful open.
    #[test]
    fn future_versions_fail_typed(
        arc_labels in proptest::collection::vec(any::<u64>(), 1..5),
        rc_pool in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..4), 1..4),
        arc_picks in proptest::collection::vec(any::<u64>(), 0..10),
        rc_picks in proptest::collection::vec(any::<u64>(), 0..8),
        epoch in any::<u64>(),
        foreign_version in any::<u8>().prop_filter("must differ", |v| *v != VERSION),
    ) {
        let (doc, _, _) = build_doc(&arc_labels, &arc_picks, &rc_pool, &rc_picks);
        let mut sealed = seal_full(meta(epoch), &checkpoint(&doc));
        // Byte 4 is the format version; reseal so the checksum stays
        // valid and the *only* anomaly is the foreign version.
        sealed[4] = foreign_version;
        reseal_checksum(&mut sealed);
        prop_assert_eq!(
            open(&sealed).unwrap_err(),
            RestoreError::VersionMismatch { found: foreign_version, expected: VERSION }
        );
    }

    /// Truncating a valid envelope anywhere must be detected too (torn
    /// writes are the main non-flip corruption).
    #[test]
    fn truncation_is_detected(
        arc_labels in proptest::collection::vec(any::<u64>(), 1..5),
        rc_pool in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..4), 1..4),
        arc_picks in proptest::collection::vec(any::<u64>(), 0..10),
        rc_picks in proptest::collection::vec(any::<u64>(), 0..8),
        raw_cut in any::<u64>(),
    ) {
        let (doc, _, _) = build_doc(&arc_labels, &arc_picks, &rc_pool, &rc_picks);
        let sealed = seal_full(meta(9), &checkpoint(&doc));
        // Strictly shorter than the sealed envelope.
        let cut = (raw_cut % sealed.len() as u64) as usize;
        prop_assert!(open(&sealed[..cut]).is_err(), "truncation at {} undetected", cut);
    }
}
